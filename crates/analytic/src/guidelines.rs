//! Self-consistent performance guidelines (Hunold-style) evaluated
//! over the analytical model, and the pruning pass built on them.
//!
//! A *guideline* is an inequality any sane algorithm selection must
//! satisfy — "an allreduce should not cost more than a reduce followed
//! by a broadcast", "no algorithm should cost several times its
//! collective's best at the same point". Candidates whose **analytical**
//! cost violates a guideline by more than a configurable margin are
//! retired from the selection pool before any benchmark time is spent
//! on them; they keep their prior rows, so the forest still carries
//! evidence about them and a guideline can never silence a candidate's
//! influence on interpolation.
//!
//! Pruning is deliberately conservative:
//!
//! * the margin multiplies the guideline's reference cost, so a
//!   candidate must look `margin`× worse than the reference before it
//!   is touched — the analytical model must be off by more than the
//!   margin *in the wrong direction* before a competitive candidate
//!   could be at risk;
//! * the analytically best algorithm of each (collective, point) is
//!   never pruned, whatever the cross-collective guidelines claim, so
//!   every point always keeps at least one live candidate per
//!   collective;
//! * a uniformly mis-scaled model (every prediction multiplied by the
//!   same factor) produces identical intra-collective ratios and
//!   scaled-but-ordered cross-collective ratios, which is what keeps
//!   the "100x-wrong model" robustness tests passing.

use crate::model::CostModel;
use acclaim_collectives::Collective;
use acclaim_core::Candidate;
use acclaim_dataset::{FeatureSpace, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One self-consistency constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Guideline {
    /// An algorithm should not cost more than `margin`× the best
    /// algorithm of the *same* collective at the same point
    /// (intra-collective dominance).
    IntraCollectiveDominance,
    /// An allreduce algorithm should not cost more than `margin`× the
    /// best reduce plus the best broadcast at the same point
    /// (allreduce ≤ reduce + bcast).
    AllreduceVsReduceBcast,
    /// A reduce algorithm should not cost more than `margin`× the best
    /// allreduce at the same point (reduce ≤ allreduce: an allreduce
    /// does strictly more work).
    ReduceVsAllreduce,
    /// A broadcast algorithm should not cost more than `margin`× the
    /// best allreduce at the same point (bcast ≤ allreduce).
    BcastVsAllreduce,
}

impl Guideline {
    /// Every guideline, in evaluation order.
    pub const ALL: [Guideline; 4] = [
        Guideline::IntraCollectiveDominance,
        Guideline::AllreduceVsReduceBcast,
        Guideline::ReduceVsAllreduce,
        Guideline::BcastVsAllreduce,
    ];

    /// Short stable name (used in reports and violation listings).
    pub fn name(&self) -> &'static str {
        match self {
            Guideline::IntraCollectiveDominance => "intra_collective_dominance",
            Guideline::AllreduceVsReduceBcast => "allreduce_vs_reduce_bcast",
            Guideline::ReduceVsAllreduce => "reduce_vs_allreduce",
            Guideline::BcastVsAllreduce => "bcast_vs_allreduce",
        }
    }
}

impl fmt::Display for Guideline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One candidate's failure of one guideline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The offending candidate.
    pub candidate: Candidate,
    /// The guideline it violates.
    pub guideline: Guideline,
    /// `candidate cost / reference cost` — always above the margin.
    pub ratio: f64,
}

/// A margin plus the set of guidelines to enforce.
///
/// ```
/// use acclaim_analytic::{CostModel, GuidelineSet};
/// use acclaim_collectives::Collective;
/// use acclaim_dataset::FeatureSpace;
/// use acclaim_netsim::Cluster;
///
/// let model = CostModel::new(Cluster::bebop_like());
/// let set = GuidelineSet::standard(3.0);
/// let space = FeatureSpace::tiny();
/// let (pruned, violations) = set.prune(&model, Collective::Bcast, &space);
/// // Violations are attributed per guideline; pruned is deduplicated.
/// assert!(violations.len() >= pruned.len());
/// for v in &violations {
///     assert!(v.ratio > 3.0);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuidelineSet {
    /// Violation threshold: a candidate fails a guideline only when
    /// its cost exceeds `margin`× the guideline's reference cost.
    /// Must be ≥ 1.
    pub margin: f64,
    /// The guidelines to evaluate.
    pub guidelines: Vec<Guideline>,
}

impl GuidelineSet {
    /// All guidelines at the given margin.
    pub fn standard(margin: f64) -> Self {
        assert!(margin >= 1.0, "a margin below 1 would prune the best");
        GuidelineSet {
            margin,
            guidelines: Guideline::ALL.to_vec(),
        }
    }

    /// Violations among `collective`'s algorithms at one point.
    pub fn violations_at(
        &self,
        model: &CostModel,
        collective: Collective,
        point: Point,
    ) -> Vec<Violation> {
        let mut out = Vec::new();
        let costs = model.predictions(collective, point);
        let best = costs
            .iter()
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min);
        let best_of = |c: Collective| model.best(c, point).1;
        for &(algorithm, cost) in &costs {
            // The analytically best algorithm is exempt from every
            // guideline: each (collective, point) keeps a live
            // candidate no matter what the cross-collective references
            // say.
            if cost <= best {
                continue;
            }
            for &g in &self.guidelines {
                let reference = match g {
                    Guideline::IntraCollectiveDominance => best,
                    Guideline::AllreduceVsReduceBcast if collective == Collective::Allreduce => {
                        best_of(Collective::Reduce) + best_of(Collective::Bcast)
                    }
                    Guideline::ReduceVsAllreduce if collective == Collective::Reduce => {
                        best_of(Collective::Allreduce)
                    }
                    Guideline::BcastVsAllreduce if collective == Collective::Bcast => {
                        best_of(Collective::Allreduce)
                    }
                    _ => continue,
                };
                if reference <= 0.0 {
                    continue;
                }
                let ratio = cost / reference;
                if ratio > self.margin {
                    out.push(Violation {
                        candidate: Candidate { point, algorithm },
                        guideline: g,
                        ratio,
                    });
                }
            }
        }
        out
    }

    /// Every violation across `collective`'s candidate grid.
    pub fn violations(
        &self,
        model: &CostModel,
        collective: Collective,
        space: &FeatureSpace,
    ) -> Vec<Violation> {
        space
            .points()
            .into_iter()
            .flat_map(|pt| self.violations_at(model, collective, pt))
            .collect()
    }

    /// The pruning pass: candidates of `collective` retired by at
    /// least one guideline (deduplicated, in grid order), plus the
    /// full violation list for reporting.
    pub fn prune(
        &self,
        model: &CostModel,
        collective: Collective,
        space: &FeatureSpace,
    ) -> (Vec<Candidate>, Vec<Violation>) {
        let violations = self.violations(model, collective, space);
        let mut pruned: Vec<Candidate> = Vec::new();
        for v in &violations {
            if !pruned.contains(&v.candidate) {
                pruned.push(v.candidate);
            }
        }
        (pruned, violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acclaim_netsim::Cluster;

    #[test]
    fn margin_is_monotone() {
        let model = CostModel::new(Cluster::bebop_like());
        let space = FeatureSpace::tiny();
        for &c in &Collective::ALL {
            let loose = GuidelineSet::standard(8.0).prune(&model, c, &space).0;
            let tight = GuidelineSet::standard(1.5).prune(&model, c, &space).0;
            assert!(loose.len() <= tight.len());
            assert!(loose.iter().all(|p| tight.contains(p)));
        }
    }

    #[test]
    fn best_candidate_is_never_pruned() {
        let model = CostModel::new(Cluster::bebop_like());
        let space = FeatureSpace::tiny();
        for &c in &Collective::ALL {
            let (pruned, _) = GuidelineSet::standard(1.0).prune(&model, c, &space);
            for pt in space.points() {
                let (best, _) = model.best(c, pt);
                assert!(!pruned.contains(&Candidate {
                    point: pt,
                    algorithm: best
                }));
            }
        }
    }

    #[test]
    fn uniform_mis_scaling_keeps_intra_collective_pruning() {
        // A 100x-wrong model has identical intra-collective ratios;
        // dominance pruning must not change.
        let model = CostModel::new(Cluster::bebop_like());
        let wrong = CostModel::new(Cluster::bebop_like()).scaled(100.0);
        let space = FeatureSpace::tiny();
        let set = GuidelineSet {
            margin: 3.0,
            guidelines: vec![Guideline::IntraCollectiveDominance],
        };
        for &c in &Collective::ALL {
            assert_eq!(
                set.prune(&model, c, &space).0,
                set.prune(&wrong, c, &space).0
            );
        }
    }
}
