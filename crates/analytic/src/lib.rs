//! Analytical cost-model priors and guideline pruning for the ACCLAiM
//! autotuner.
//!
//! ACCLAiM's dominant cost is benchmark time: every candidate the
//! forest cannot rule out must be measured before it can be retired.
//! This crate attacks that cost *before the first benchmark runs*,
//! with two classical tools:
//!
//! 1. **Analytical cost models** ([`CostModel`]) — Hockney/LogGP-style
//!    per-algorithm formulas for the ten tuned MPICH algorithms,
//!    parameterized from the same netsim [`NetworkParams`] the
//!    simulator prices schedules with (Nuriyev & Lastovetsky show such
//!    models select collective algorithms well enough for runtime
//!    use). Predictions are deterministic and unit-consistent
//!    (microseconds) with simulated costs. The full formula catalog,
//!    with an executable example per algorithm, lives in the
//!    [`model`] module docs.
//! 2. **Self-consistency guidelines** ([`GuidelineSet`]) — Hunold-style
//!    performance guidelines ("allreduce ≤ reduce + bcast", dominance
//!    within a collective) that retire candidates whose analytical
//!    cost violates a constraint by a configurable margin, spending
//!    zero benchmark time on them.
//!
//! The [`AnalyticPrior`] adapter converts both into the learner's
//! existing warm-start currency: prediction rows ride in
//! [`WarmStart::priors`] (deweighted evidence that never retires a
//! candidate and is never written back to the store), pruned
//! candidates in [`WarmStart::pruned`]. A cold tune therefore starts
//! from a full analytical sketch of the candidate space instead of
//! nothing — fewer iterations to the variance plateau, and strictly
//! less simulated benchmark cost (`tests/analytic_priors.rs` pins
//! both, per seed).
//!
//! Everything is gated on
//! [`AnalyticPriorsConfig`](acclaim_core::AnalyticPriorsConfig)
//! (default **disabled**): with the config off no warm start is built
//! and every run is bit-identical to pre-analytic behavior.
//!
//! [`WarmStart::priors`]: acclaim_core::WarmStart
//! [`WarmStart::pruned`]: acclaim_core::WarmStart
//! [`NetworkParams`]: acclaim_netsim::NetworkParams

#![warn(missing_docs)]

pub mod guidelines;
pub mod model;
pub mod prior;

pub use guidelines::{Guideline, GuidelineSet, Violation};
pub use model::{CostModel, ModelParams};
pub use prior::{analytic_warms, tune_with_analytic, AnalyticPrior};
