//! The analytical cost-model catalog: Hockney/LogGP formulas for the
//! ten tuned MPICH algorithms, parameterized from the same
//! [`NetworkParams`] the simulator prices schedules with.
//!
//! [`NetworkParams`]: acclaim_netsim::NetworkParams
//!
//! # Parameterization
//!
//! Every formula is built from three primitives, all derived from the
//! cluster description so predictions are deterministic and
//! unit-consistent (microseconds) with simulated costs:
//!
//! * **α(point)** — per-message latency: `2·cpu_overhead_us` (LogGP's
//!   send + receive overhead `o`) plus the wire latency of the layer
//!   spanning the job (`L`, scaled by the placement factor). The
//!   spanning layer is the network layer between rank 0 and the last
//!   rank — a collective is gated by its slowest hop.
//! * **X(b)** — per-message transfer time of `b` bytes: packetized
//!   wire bytes over the NIC bandwidth (memory bandwidth for
//!   single-node jobs), divided by the alignment/non-P2 de-rating
//!   factor, plus the ragged-transfer setup latency. This is Hockney's
//!   `β·m` with the simulator's size-dependent corrections, i.e. LogGP's
//!   `G·(m-1)` gap term.
//! * **R(b)** — local reduction time of `b` bytes
//!   (`bytes / reduce_bandwidth`), Rabenseifner's `γ·m` term.
//!
//! With `p` ranks, `lg = ⌈log₂ p⌉`, and `m` the point's message size,
//! each algorithm's cost is the standard Thakur et al. round
//! decomposition, spelled out per algorithm below. Halving/doubling
//! byte series are evaluated round-by-round (not in closed form) so
//! the packetization and alignment corrections apply to the bytes each
//! round actually moves.
//!
//! # Model catalog
//!
//! One entry per tuned algorithm. Every example predicts a small (1 KiB)
//! and a large (1 MiB) message on an 8-node × 4-ppn slice of the
//! Bebop-flavored machine and checks the scaling direction the formula
//! implies. For allgather, `m` is the **per-rank contribution** (the
//! convention the schedules in `acclaim-collectives` use); rooted and
//! reduction collectives take the total payload.
//!
//! ### `allgather.ring` — `(p-1)·(α + X(m))`
//!
//! `p-1` neighbor exchanges of the fixed per-rank block: latency-bound
//! at small sizes (`(p-1)·α`), bandwidth-optimal at large sizes (every
//! byte crosses each link once).
//!
//! ```
//! use acclaim_analytic::CostModel;
//! use acclaim_collectives::Algorithm;
//! use acclaim_dataset::Point;
//! use acclaim_netsim::Cluster;
//! let m = CostModel::new(Cluster::bebop_like());
//! let small = m.predict_us(Algorithm::AllgatherRing, Point::new(8, 4, 1024));
//! let large = m.predict_us(Algorithm::AllgatherRing, Point::new(8, 4, 1 << 20));
//! assert!(small > 0.0 && large > small);
//! // 31 rounds of latency dominate a recursive-doubling start at 1 KiB.
//! let rd = m.predict_us(Algorithm::AllgatherRecursiveDoubling, Point::new(8, 4, 1024));
//! assert!(small > rd);
//! ```
//!
//! ### `allgather.recursive_doubling` — `lg·α + Σₖ X(min(2ᵏ·m, rest))`
//!
//! Exchanged blocks double every round until all `(p-1)·m` foreign
//! bytes have arrived: `lg` latencies instead of `p-1`, same total
//! bytes.
//!
//! ```
//! use acclaim_analytic::CostModel;
//! use acclaim_collectives::Algorithm;
//! use acclaim_dataset::Point;
//! use acclaim_netsim::Cluster;
//! let m = CostModel::new(Cluster::bebop_like());
//! let small = m.predict_us(Algorithm::AllgatherRecursiveDoubling, Point::new(8, 4, 1024));
//! let large = m.predict_us(Algorithm::AllgatherRecursiveDoubling, Point::new(8, 4, 1 << 20));
//! assert!(small > 0.0 && large > small);
//! ```
//!
//! ### `allgather.brucks` — `lg·α + Σₖ X(min(2ᵏ·m, rest)) + local(p·m)`
//!
//! Bruck's rotation: the recursive-doubling exchange pattern for any
//! `p` (not just powers of two) plus a final local rotation of the
//! full `p·m` buffer, priced at memory bandwidth.
//!
//! ```
//! use acclaim_analytic::CostModel;
//! use acclaim_collectives::Algorithm;
//! use acclaim_dataset::Point;
//! use acclaim_netsim::Cluster;
//! let m = CostModel::new(Cluster::bebop_like());
//! let small = m.predict_us(Algorithm::AllgatherBrucks, Point::new(8, 4, 1024));
//! let large = m.predict_us(Algorithm::AllgatherBrucks, Point::new(8, 4, 1 << 20));
//! assert!(small > 0.0 && large > small);
//! // The rotation epilogue makes Brucks dominate plain recursive doubling.
//! let rd = m.predict_us(Algorithm::AllgatherRecursiveDoubling, Point::new(8, 4, 1024));
//! assert!(small >= rd);
//! ```
//!
//! ### `allreduce.recursive_doubling` — `lg·(α + X(m) + R(m))`
//!
//! Every round exchanges and reduces the full vector: the small-message
//! winner (`lg` latencies) that wastes bandwidth at large `m`.
//!
//! ```
//! use acclaim_analytic::CostModel;
//! use acclaim_collectives::Algorithm;
//! use acclaim_dataset::Point;
//! use acclaim_netsim::Cluster;
//! let m = CostModel::new(Cluster::bebop_like());
//! let small = m.predict_us(Algorithm::AllreduceRecursiveDoubling, Point::new(8, 4, 1024));
//! let large = m.predict_us(Algorithm::AllreduceRecursiveDoubling, Point::new(8, 4, 1 << 20));
//! assert!(small > 0.0 && large > small);
//! ```
//!
//! ### `allreduce.reduce_scatter_allgather` — `2·lg·α + 2·Σₖ X(m/2ᵏ⁺¹) + Σₖ R(m/2ᵏ⁺¹)`
//!
//! Rabenseifner: recursive-halving reduce-scatter (each round moves and
//! reduces half the remaining vector, `≈ m·(p-1)/p` bytes total) then
//! the mirror-image recursive-doubling allgather. Twice the latencies
//! of recursive doubling, but each byte is sent only `≈2(p-1)/p` times —
//! the large-message winner.
//!
//! ```
//! use acclaim_analytic::CostModel;
//! use acclaim_collectives::Algorithm;
//! use acclaim_dataset::Point;
//! use acclaim_netsim::Cluster;
//! let m = CostModel::new(Cluster::bebop_like());
//! let small = m.predict_us(Algorithm::AllreduceReduceScatterAllgather, Point::new(8, 4, 1024));
//! let large = m.predict_us(Algorithm::AllreduceReduceScatterAllgather, Point::new(8, 4, 1 << 20));
//! assert!(small > 0.0 && large > small);
//! // Crossover: recursive doubling wins small, Rabenseifner wins large.
//! let rd_small = m.predict_us(Algorithm::AllreduceRecursiveDoubling, Point::new(8, 4, 1024));
//! let rd_large = m.predict_us(Algorithm::AllreduceRecursiveDoubling, Point::new(8, 4, 1 << 20));
//! assert!(rd_small < small && rd_large > large);
//! ```
//!
//! ### `bcast.binomial` — `lg·(α + X(m))`
//!
//! The binomial tree forwards the full payload down `lg` levels; its
//! critical path pays `lg` full-size transfers, so it loses at large
//! `m` where scatter-based broadcasts pipeline.
//!
//! ```
//! use acclaim_analytic::CostModel;
//! use acclaim_collectives::Algorithm;
//! use acclaim_dataset::Point;
//! use acclaim_netsim::Cluster;
//! let m = CostModel::new(Cluster::bebop_like());
//! let small = m.predict_us(Algorithm::BcastBinomial, Point::new(8, 4, 1024));
//! let large = m.predict_us(Algorithm::BcastBinomial, Point::new(8, 4, 1 << 20));
//! assert!(small > 0.0 && large > small);
//! ```
//!
//! ### `bcast.scatter_recursive_doubling_allgather` — `lg·α + Σₖ X(m/2ᵏ⁺¹) + lg·α + Σₖ X(min(2ᵏ·m/p, rest))`
//!
//! Binomial scatter of recursively-halved segments (`≈ m·(p-1)/p` bytes
//! down the critical path) then a recursive-doubling allgather of the
//! `m/p` blocks: `2·lg` latencies, `≈ 2m` bytes — the van de Geijn
//! large-message broadcast for power-of-two ranks.
//!
//! ```
//! use acclaim_analytic::CostModel;
//! use acclaim_collectives::Algorithm;
//! use acclaim_dataset::Point;
//! use acclaim_netsim::Cluster;
//! let m = CostModel::new(Cluster::bebop_like());
//! let small = m.predict_us(
//!     Algorithm::BcastScatterRecursiveDoublingAllgather, Point::new(8, 4, 1024));
//! let large = m.predict_us(
//!     Algorithm::BcastScatterRecursiveDoublingAllgather, Point::new(8, 4, 1 << 20));
//! assert!(small > 0.0 && large > small);
//! // Crossover against the binomial tree.
//! let bin_small = m.predict_us(Algorithm::BcastBinomial, Point::new(8, 4, 1024));
//! let bin_large = m.predict_us(Algorithm::BcastBinomial, Point::new(8, 4, 1 << 20));
//! assert!(bin_small < small && bin_large > large);
//! ```
//!
//! ### `bcast.scatter_ring_allgather` — `lg·α + Σₖ X(m/2ᵏ⁺¹) + (p-1)·(α + X(m/p))`
//!
//! The same scatter followed by a ring allgather: `p-1` extra
//! latencies buy near-perfect bandwidth at the largest sizes (each
//! link carries every byte exactly once).
//!
//! ```
//! use acclaim_analytic::CostModel;
//! use acclaim_collectives::Algorithm;
//! use acclaim_dataset::Point;
//! use acclaim_netsim::Cluster;
//! let m = CostModel::new(Cluster::bebop_like());
//! let small = m.predict_us(Algorithm::BcastScatterRingAllgather, Point::new(8, 4, 1024));
//! let large = m.predict_us(Algorithm::BcastScatterRingAllgather, Point::new(8, 4, 1 << 20));
//! assert!(small > 0.0 && large > small);
//! ```
//!
//! ### `reduce.binomial` — `lg·(α + X(m) + R(m))`
//!
//! The mirror image of the binomial broadcast with a reduction at
//! every merge.
//!
//! ```
//! use acclaim_analytic::CostModel;
//! use acclaim_collectives::Algorithm;
//! use acclaim_dataset::Point;
//! use acclaim_netsim::Cluster;
//! let m = CostModel::new(Cluster::bebop_like());
//! let small = m.predict_us(Algorithm::ReduceBinomial, Point::new(8, 4, 1024));
//! let large = m.predict_us(Algorithm::ReduceBinomial, Point::new(8, 4, 1 << 20));
//! assert!(small > 0.0 && large > small);
//! ```
//!
//! ### `reduce.scatter_gather` — `2·lg·α + Σₖ X(m/2ᵏ⁺¹) + Σₖ R(m/2ᵏ⁺¹) + Σₖ X(min(2ᵏ·m/p, rest))`
//!
//! Recursive-halving reduce-scatter then a binomial gather of the
//! reduced `m/p` blocks to the root — Rabenseifner's reduce, the
//! large-message winner for the rooted reduction.
//!
//! ```
//! use acclaim_analytic::CostModel;
//! use acclaim_collectives::Algorithm;
//! use acclaim_dataset::Point;
//! use acclaim_netsim::Cluster;
//! let m = CostModel::new(Cluster::bebop_like());
//! let small = m.predict_us(Algorithm::ReduceScatterGather, Point::new(8, 4, 1024));
//! let large = m.predict_us(Algorithm::ReduceScatterGather, Point::new(8, 4, 1 << 20));
//! assert!(small > 0.0 && large > small);
//! // Crossover against the binomial reduction.
//! let bin_small = m.predict_us(Algorithm::ReduceBinomial, Point::new(8, 4, 1024));
//! let bin_large = m.predict_us(Algorithm::ReduceBinomial, Point::new(8, 4, 1 << 20));
//! assert!(bin_small < small && bin_large > large);
//! ```

use acclaim_collectives::{Algorithm, Collective};
use acclaim_dataset::{DatasetConfig, Point};
use acclaim_netsim::{Cluster, Layer};
use serde::{Deserialize, Serialize};

/// The Hockney/LogGP primitives of one point, as derived from the
/// cluster description — reported by [`CostModel::params_at`] so the
/// CLI (`acclaim analytic predict`) and docs can show the numbers the
/// formulas run on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Per-message latency α (µs): send + receive CPU overhead plus
    /// the placement-scaled wire latency of the job's spanning layer.
    pub alpha_us: f64,
    /// Nominal per-byte transfer time β (µs/byte): the inverse of the
    /// NIC bandwidth (memory bandwidth on one node), before the
    /// per-message packetization and alignment corrections.
    pub beta_us_per_byte: f64,
    /// Per-byte local reduction time γ (µs/byte).
    pub gamma_us_per_byte: f64,
}

/// Analytical predictor for the ten tuned algorithms.
///
/// Deterministic, allocation-free per call, and unit-consistent with
/// the simulator: all parameters come from the [`Cluster`] the
/// benchmark database prices schedules on, so a prediction and a
/// simulated measurement can be compared directly in microseconds.
/// See the [module docs](self) for the catalog of formulas.
#[derive(Debug, Clone)]
pub struct CostModel {
    cluster: Cluster,
    scale: f64,
}

impl CostModel {
    /// Model the given cluster.
    pub fn new(cluster: Cluster) -> Self {
        CostModel {
            cluster,
            scale: 1.0,
        }
    }

    /// Model the cluster a benchmark database simulates.
    pub fn from_dataset(config: &DatasetConfig) -> Self {
        CostModel::new(config.cluster.clone())
    }

    /// Uniformly mis-scale every prediction by `factor` — a diagnostic
    /// hook for robustness tests ("a 100x-wrong model must not change
    /// the converged selection"). Relative orderings, and therefore
    /// guideline ratios, are unchanged.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale must be positive");
        self.scale *= factor;
        self
    }

    /// The cluster the model was derived from.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The α/β/γ primitives at `point` (before the per-message
    /// packetization/alignment corrections the formulas apply).
    pub fn params_at(&self, point: Point) -> ModelParams {
        let p = &self.cluster.params;
        let bw = if point.nodes <= 1 {
            p.mem_bandwidth
        } else {
            p.nic_bandwidth
        };
        ModelParams {
            alpha_us: self.alpha(point),
            beta_us_per_byte: 1.0 / bw,
            gamma_us_per_byte: 1.0 / p.reduce_bandwidth,
        }
    }

    /// Predicted cost (µs) of running `algorithm` at `point`.
    ///
    /// For allgather algorithms `point.msg_bytes` is the per-rank
    /// contribution; for bcast/reduce/allreduce it is the total
    /// payload — the same conventions the schedules use. Single-rank
    /// points cost nothing.
    pub fn predict_us(&self, algorithm: Algorithm, point: Point) -> f64 {
        let ranks = point.ranks();
        if ranks <= 1 {
            return 0.0;
        }
        let lg = (u32::BITS - (ranks - 1).leading_zeros()) as usize; // ceil(log2 ranks)
        let a = self.alpha(point);
        let m = point.msg_bytes as f64;
        let p = ranks as f64;

        let cost = match algorithm {
            Algorithm::AllgatherRing => (p - 1.0) * (a + self.xfer(m, point)),
            Algorithm::AllgatherRecursiveDoubling => {
                lg as f64 * a + self.doubling_xfer(m, (p - 1.0) * m, point)
            }
            Algorithm::AllgatherBrucks => {
                lg as f64 * a
                    + self.doubling_xfer(m, (p - 1.0) * m, point)
                    + self.local(p * m)
            }
            Algorithm::AllreduceRecursiveDoubling => {
                lg as f64 * (a + self.xfer(m, point) + self.reduce(m))
            }
            Algorithm::AllreduceReduceScatterAllgather => {
                let (halving, reduced) = self.halving_xfer_reduce(m, lg, point);
                // Reduce-scatter down, allgather back up the same series.
                2.0 * lg as f64 * a + 2.0 * halving + reduced
            }
            Algorithm::BcastBinomial => lg as f64 * (a + self.xfer(m, point)),
            Algorithm::BcastScatterRecursiveDoublingAllgather => {
                let (scatter, _) = self.halving_xfer_reduce(m, lg, point);
                let block = m / p;
                2.0 * lg as f64 * a
                    + scatter
                    + self.doubling_xfer(block, (p - 1.0) * block, point)
            }
            Algorithm::BcastScatterRingAllgather => {
                let (scatter, _) = self.halving_xfer_reduce(m, lg, point);
                lg as f64 * a + scatter + (p - 1.0) * (a + self.xfer(m / p, point))
            }
            Algorithm::ReduceBinomial => {
                lg as f64 * (a + self.xfer(m, point) + self.reduce(m))
            }
            Algorithm::ReduceScatterGather => {
                let (halving, reduced) = self.halving_xfer_reduce(m, lg, point);
                let block = m / p;
                2.0 * lg as f64 * a
                    + halving
                    + reduced
                    + self.doubling_xfer(block, (p - 1.0) * block, point)
            }
        };
        cost * self.scale
    }

    /// Predictions for every algorithm of `collective` at `point`, in
    /// registry order.
    pub fn predictions(&self, collective: Collective, point: Point) -> Vec<(Algorithm, f64)> {
        collective
            .algorithms()
            .iter()
            .map(|&a| (a, self.predict_us(a, point)))
            .collect()
    }

    /// The analytically cheapest algorithm of `collective` at `point`
    /// (ties break toward registry order).
    pub fn best(&self, collective: Collective, point: Point) -> (Algorithm, f64) {
        self.predictions(collective, point)
            .into_iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("every collective has at least one algorithm")
    }

    /// α: send+receive overhead plus the spanning layer's latency.
    fn alpha(&self, point: Point) -> f64 {
        let p = &self.cluster.params;
        let layer = if point.nodes <= 1 {
            Layer::IntraNode
        } else {
            self.cluster
                .layer_between_ranks(0, (point.nodes - 1) * point.ppn, point.ppn)
        };
        2.0 * p.cpu_overhead_us + p.latency(layer, self.cluster.job_latency_factor)
    }

    /// X(b): transfer time of one `bytes`-byte message (bandwidth and
    /// alignment terms only; α is charged per round by the caller).
    fn xfer(&self, bytes: f64, point: Point) -> f64 {
        if bytes < 1.0 {
            return 0.0;
        }
        let b = bytes.ceil() as u64;
        let p = &self.cluster.params;
        let bw = if point.nodes <= 1 {
            p.mem_bandwidth
        } else {
            p.nic_bandwidth
        };
        p.wire_bytes(b) as f64 / (bw * p.bandwidth_derating(b)) + p.alignment_latency(b)
    }

    /// R(b): local reduction of `bytes`.
    fn reduce(&self, bytes: f64) -> f64 {
        if bytes < 1.0 {
            return 0.0;
        }
        self.cluster.params.reduce_time(bytes.ceil() as u64)
    }

    /// Local memory traffic (Bruck's rotation epilogue).
    fn local(&self, bytes: f64) -> f64 {
        if bytes < 1.0 {
            return 0.0;
        }
        bytes / self.cluster.params.mem_bandwidth
    }

    /// Σₖ X over a doubling series: rounds move `start, 2·start, …`
    /// bytes until `total` has been transferred (recursive-doubling and
    /// Bruck-style allgathers; also binomial gathers of scattered
    /// blocks).
    fn doubling_xfer(&self, start: f64, total: f64, point: Point) -> f64 {
        let mut cost = 0.0;
        let mut chunk = start;
        let mut remaining = total;
        while remaining > 0.0 && chunk > 0.0 {
            let send = chunk.min(remaining);
            cost += self.xfer(send, point);
            remaining -= send;
            chunk *= 2.0;
        }
        cost
    }

    /// (Σₖ X(m/2ᵏ⁺¹), Σₖ R(m/2ᵏ⁺¹)) over `lg` halving rounds — the
    /// recursive-halving reduce-scatter / binomial-scatter series. The
    /// caller adds the reduction sum only when rounds actually reduce.
    fn halving_xfer_reduce(&self, m: f64, lg: usize, point: Point) -> (f64, f64) {
        let mut xfer = 0.0;
        let mut red = 0.0;
        let mut half = m / 2.0;
        for _ in 0..lg {
            xfer += self.xfer(half, point);
            red += self.reduce(half);
            half /= 2.0;
        }
        (xfer, red)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(Cluster::bebop_like())
    }

    #[test]
    fn every_algorithm_predicts_positive_finite_costs() {
        let m = model();
        for &a in &Algorithm::ALL {
            for &msg in &[16u64, 1 << 10, 1 << 17, 1 << 20] {
                for &(n, ppn) in &[(2u32, 1u32), (8, 4), (32, 16)] {
                    let t = m.predict_us(a, Point::new(n, ppn, msg));
                    assert!(t.is_finite() && t > 0.0, "{a} at {n}x{ppn}x{msg}: {t}");
                }
            }
        }
    }

    #[test]
    fn costs_grow_with_message_size() {
        // Not strictly monotone at tiny sizes (ragged sub-packet rounds
        // pay alignment latencies that aligned larger rounds dodge),
        // but across decades the bandwidth term must dominate.
        let m = model();
        for &a in &Algorithm::ALL {
            let p = |msg| m.predict_us(a, Point::new(8, 4, msg));
            assert!(p(1 << 20) > p(1 << 14), "{a}");
            assert!(p(1 << 20) > 4.0 * p(1 << 10), "{a}");
        }
    }

    #[test]
    fn single_rank_is_free() {
        let m = model();
        for &a in &Algorithm::ALL {
            assert_eq!(m.predict_us(a, Point::new(1, 1, 1 << 20)), 0.0);
        }
    }

    #[test]
    fn scaling_preserves_relative_order() {
        let m = model();
        let s = model().scaled(100.0);
        for &c in &Collective::ALL {
            for &msg in &[1u64 << 10, 1 << 20] {
                let pt = Point::new(16, 8, msg);
                assert_eq!(m.best(c, pt).0, s.best(c, pt).0);
                let t = m.predict_us(c.algorithms()[0], pt);
                let st = s.predict_us(c.algorithms()[0], pt);
                assert!((st / t - 100.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn predictions_correlate_with_simulated_best() {
        // The model only has to *rank* usefully: its per-collective
        // winner must be within a small factor of the simulated best
        // at every grid point of the tiny dataset.
        let cfg = DatasetConfig::tiny();
        let db = acclaim_dataset::BenchmarkDatabase::new(cfg.clone());
        let m = CostModel::from_dataset(&cfg);
        let space = acclaim_dataset::FeatureSpace::tiny();
        for &c in &Collective::ALL {
            for pt in space.points() {
                let (pick, _) = m.best(c, pt);
                let slowdown = db.slowdown(pt, pick);
                assert!(
                    slowdown < 4.0,
                    "{c:?} at {pt:?}: model pick {pick} is {slowdown:.2}x the best"
                );
            }
        }
    }
}
