//! From predictions to warm starts: the adapter that turns the model
//! catalog into the deweighted-prior rows the learner already consumes.
//!
//! [`AnalyticPrior::warm_start`] sketches a collective's entire
//! candidate grid analytically — one prior row per candidate, thinned
//! deterministically to the configured weight — and, when pruning is
//! on, retires guideline violators from the selection pool. The rows
//! ride in [`WarmStart::priors`], the same slot store-provided near-hit
//! rows use, so everything the learner guarantees about priors applies
//! unchanged: they never retire a candidate, a fresh measurement
//! outvotes them inside the forest, and persistence layers slice them
//! off `collected` before write-back (an analytical guess is never
//! stored as a measurement).
//!
//! Counters (on the run's [`Obs`]): `analytic.priors_injected` (rows
//! emitted after thinning), `analytic.candidates_pruned` (grid
//! candidates retired), and `analytic.guideline_violations` (one per
//! (candidate, guideline) failure — a candidate can violate several).

use crate::guidelines::GuidelineSet;
use crate::model::CostModel;
use acclaim_collectives::Collective;
use acclaim_core::{
    Acclaim, AcclaimConfig, AnalyticPriorsConfig, JobTuning, TrainingSample, WarmStart,
};
use acclaim_dataset::{BenchmarkDatabase, DatasetConfig, FeatureSpace};
use acclaim_netsim::Fingerprint;
use acclaim_obs::Obs;
use std::collections::{HashMap, HashSet};

/// Predictions below this floor are clamped: the learner regresses
/// `ln(time)`, so a prior row must stay strictly positive.
const MIN_PRIOR_US: f64 = 1e-3;

/// Builds [`WarmStart`]s from a [`CostModel`] under an
/// [`AnalyticPriorsConfig`].
///
/// ```
/// use acclaim_analytic::AnalyticPrior;
/// use acclaim_collectives::Collective;
/// use acclaim_core::AnalyticPriorsConfig;
/// use acclaim_dataset::{DatasetConfig, FeatureSpace};
/// use acclaim_obs::Obs;
///
/// let config = AnalyticPriorsConfig { enabled: true, ..Default::default() };
/// let prior = AnalyticPrior::from_dataset(&DatasetConfig::tiny(), config);
/// let warm = prior.warm_start(Collective::Bcast, &FeatureSpace::tiny(), &Obs::disabled());
/// // A full analytical sketch: one prior row per grid candidate,
/// // nothing trusted as exact. Pruned candidates keep their rows.
/// assert!(warm.exact.is_empty());
/// assert_eq!(
///     warm.priors.len(),
///     FeatureSpace::tiny().len() * Collective::Bcast.algorithms().len()
/// );
/// ```
#[derive(Debug, Clone)]
pub struct AnalyticPrior {
    model: CostModel,
    config: AnalyticPriorsConfig,
}

impl AnalyticPrior {
    /// Adapter over an explicit model.
    pub fn new(model: CostModel, config: AnalyticPriorsConfig) -> Self {
        AnalyticPrior { model, config }
    }

    /// Adapter modeling the cluster a benchmark database simulates.
    pub fn from_dataset(dataset: &DatasetConfig, config: AnalyticPriorsConfig) -> Self {
        AnalyticPrior::new(CostModel::from_dataset(dataset), config)
    }

    /// The underlying model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The configuration in force.
    pub fn config(&self) -> &AnalyticPriorsConfig {
        &self.config
    }

    /// The analytical warm start for one collective: a prior row per
    /// grid candidate (thinned to `config.weight`) and, with pruning
    /// on, the guideline violators to retire. Pruned candidates keep
    /// their prior rows — the forest keeps evidence about them.
    /// Returns an empty warm start (a guaranteed learner no-op) when
    /// the config is disabled.
    pub fn warm_start(&self, collective: Collective, space: &FeatureSpace, obs: &Obs) -> WarmStart {
        if !self.config.enabled {
            return WarmStart::default();
        }
        let mut rows: Vec<TrainingSample> = Vec::new();
        for point in space.points() {
            for &algorithm in collective.algorithms() {
                let time_us = self.model.predict_us(algorithm, point).max(MIN_PRIOR_US);
                let row = TrainingSample {
                    point,
                    algorithm,
                    time_us,
                };
                if survives(&row, self.config.weight) {
                    rows.push(row);
                }
            }
        }
        obs.incr_counter("analytic.priors_injected", rows.len() as u64);

        let pruned = if self.config.prune {
            let set = GuidelineSet::standard(self.config.prune_margin);
            let (pruned, violations) = set.prune(&self.model, collective, space);
            obs.incr_counter("analytic.guideline_violations", violations.len() as u64);
            obs.incr_counter("analytic.candidates_pruned", pruned.len() as u64);
            pruned
        } else {
            Vec::new()
        };

        WarmStart {
            exact: Vec::new(),
            priors: rows,
            pruned,
        }
    }

    /// Compose the analytical warm start with a store-provided one.
    /// Exact store rows win: candidates already covered by a trusted
    /// measurement receive no analytical prior (the measurement would
    /// only be diluted) and are never listed as pruned (they are
    /// retired by the exact row itself, with real evidence). Store
    /// priors keep their position ahead of the analytical rows, so the
    /// persistence layers' `prior_points` slicing is unaffected.
    pub fn augment(
        &self,
        base: Option<WarmStart>,
        collective: Collective,
        space: &FeatureSpace,
        obs: &Obs,
    ) -> WarmStart {
        let analytic = self.warm_start(collective, space, obs);
        let Some(mut base) = base else {
            return analytic;
        };
        let covered: HashSet<(u32, u32, u64, &str)> = base
            .exact
            .iter()
            .map(|s| {
                (
                    s.point.nodes,
                    s.point.ppn,
                    s.point.msg_bytes,
                    s.algorithm.name(),
                )
            })
            .collect();
        let key = |p: &acclaim_dataset::Point, a: &acclaim_collectives::Algorithm| {
            (p.nodes, p.ppn, p.msg_bytes, a.name())
        };
        base.priors.extend(
            analytic
                .priors
                .into_iter()
                .filter(|s| !covered.contains(&key(&s.point, &s.algorithm))),
        );
        base.pruned.extend(
            analytic
                .pruned
                .into_iter()
                .filter(|c| !covered.contains(&key(&c.point, &c.algorithm))),
        );
        base
    }
}

/// Deterministic per-row thinning, mirroring the store's `thin_priors`:
/// a row survives iff its fingerprint falls under the weight. Depends
/// only on the row, so the same sketch is selected on every machine
/// and under every learner seed.
fn survives(s: &TrainingSample, w: f64) -> bool {
    let threshold = (w.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
    let mut f = Fingerprint::new();
    f.write_u32(s.point.nodes);
    f.write_u32(s.point.ppn);
    f.write_u64(s.point.msg_bytes);
    f.write_str(s.algorithm.name());
    f.write_f64(s.time_us);
    f.finish() <= threshold
}

/// The analytical warm starts for a whole job, one per collective —
/// the map orchestration layers hand to [`Acclaim::tune_with_warm`].
/// Empty (tune cold) when `config.learner.analytic_priors` is
/// disabled.
pub fn analytic_warms(
    config: &AcclaimConfig,
    dataset: &DatasetConfig,
    collectives: &[Collective],
    obs: &Obs,
) -> HashMap<Collective, WarmStart> {
    let mut warms = HashMap::new();
    if !config.learner.analytic_priors.enabled {
        return warms;
    }
    let prior = AnalyticPrior::from_dataset(dataset, config.learner.analytic_priors.clone());
    for &c in collectives {
        let warm = prior.warm_start(c, &config.space, obs);
        if !warm.is_empty() {
            warms.insert(c, warm);
        }
    }
    warms
}

/// [`Acclaim::tune_with_obs`] plus analytical priors: the store-less
/// tuning entry point honoring `config.learner.analytic_priors`. With
/// the config disabled no warm start exists and the run is
/// bit-identical to [`Acclaim::tune_with_obs`].
pub fn tune_with_analytic(
    config: &AcclaimConfig,
    db: &BenchmarkDatabase,
    collectives: &[Collective],
    obs: &Obs,
) -> JobTuning {
    let warms = analytic_warms(config, db.config(), collectives, obs);
    Acclaim::new(config.clone()).tune_with_warm(db, collectives, obs, |c| warms.get(&c).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use acclaim_core::Candidate;

    fn enabled() -> AnalyticPriorsConfig {
        AnalyticPriorsConfig {
            enabled: true,
            ..Default::default()
        }
    }

    #[test]
    fn disabled_config_builds_nothing() {
        let prior = AnalyticPrior::from_dataset(&DatasetConfig::tiny(), Default::default());
        let warm = prior.warm_start(Collective::Bcast, &FeatureSpace::tiny(), &Obs::disabled());
        assert!(warm.is_empty());
        let cfg = AcclaimConfig::new(FeatureSpace::tiny());
        assert!(analytic_warms(
            &cfg,
            &DatasetConfig::tiny(),
            &Collective::ALL,
            &Obs::disabled()
        )
        .is_empty());
    }

    #[test]
    fn counters_account_for_every_row_and_prune() {
        let obs = Obs::enabled();
        let prior = AnalyticPrior::from_dataset(&DatasetConfig::tiny(), enabled());
        let space = FeatureSpace::tiny();
        let warm = prior.warm_start(Collective::Allreduce, &space, &obs);
        let snap = obs.metrics_snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        assert_eq!(counter("analytic.priors_injected"), warm.priors.len() as u64);
        assert_eq!(counter("analytic.candidates_pruned"), warm.pruned.len() as u64);
        assert!(counter("analytic.guideline_violations") >= counter("analytic.candidates_pruned"));
    }

    #[test]
    fn weight_thins_deterministically() {
        let mut cfg = enabled();
        cfg.weight = 0.5;
        let prior = AnalyticPrior::from_dataset(&DatasetConfig::tiny(), cfg);
        let space = FeatureSpace::tiny();
        let a = prior.warm_start(Collective::Bcast, &space, &Obs::disabled());
        let b = prior.warm_start(Collective::Bcast, &space, &Obs::disabled());
        assert_eq!(a.priors, b.priors);
        let full = AnalyticPrior::from_dataset(&DatasetConfig::tiny(), enabled())
            .warm_start(Collective::Bcast, &space, &Obs::disabled());
        assert!(!a.priors.is_empty() && a.priors.len() < full.priors.len());
    }

    #[test]
    fn augment_lets_exact_rows_win() {
        let prior = AnalyticPrior::from_dataset(&DatasetConfig::tiny(), enabled());
        let space = FeatureSpace::tiny();
        let pt = space.points()[0];
        let alg = Collective::Bcast.algorithms()[0];
        let exact = WarmStart::from_exact(vec![TrainingSample {
            point: pt,
            algorithm: alg,
            time_us: 42.0,
        }]);
        let warm = prior.augment(Some(exact), Collective::Bcast, &space, &Obs::disabled());
        assert_eq!(warm.exact.len(), 1);
        assert!(
            !warm
                .priors
                .iter()
                .any(|s| s.point == pt && s.algorithm == alg),
            "a trusted measurement must not be diluted by its own prior"
        );
        assert!(!warm.pruned.contains(&Candidate {
            point: pt,
            algorithm: alg
        }));
    }
}
