//! Criterion benchmarks of the autotuner's per-iteration costs,
//! including the `jackknife_vs_random` and
//! `parallel_vs_sequential_collection` ablations from DESIGN.md.

use acclaim_collectives::Collective;
use acclaim_core::collector::schedule_wave;
use acclaim_core::{
    all_candidates, generate_rules, rank_by_variance, ActiveLearner, LearnerConfig, PerfModel,
    SelectionPolicy, TrainingSample,
};
use acclaim_dataset::{BenchmarkDatabase, DatasetConfig, FeatureSpace};
use acclaim_ml::ForestConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn fixture() -> (BenchmarkDatabase, FeatureSpace, PerfModel) {
    let db = BenchmarkDatabase::new(DatasetConfig::tiny());
    let space = FeatureSpace::tiny();
    let collective = Collective::Bcast;
    let samples: Vec<TrainingSample> = space
        .points()
        .into_iter()
        .flat_map(|p| {
            collective.algorithms().iter().map(move |&a| (p, a))
        })
        .map(|(p, a)| TrainingSample {
            point: p,
            algorithm: a,
            time_us: db.time(a, p),
        })
        .collect();
    let model = PerfModel::fit(collective, &samples, &ForestConfig::for_n_features(5));
    (db, space, model)
}

fn variance_ranking(c: &mut Criterion) {
    let (_, _, model) = fixture();
    // A production-sized candidate pool.
    let space = FeatureSpace::p2_simulation();
    let candidates = all_candidates(Collective::Bcast, &space);
    c.bench_function("rank_by_variance_1944_candidates", |b| {
        b.iter(|| black_box(rank_by_variance(&model, black_box(&candidates))))
    });
}

fn wave_scheduling(c: &mut Criterion) {
    let (_, _, model) = fixture();
    let _ = model;
    let space = FeatureSpace::p2_simulation();
    let candidates = all_candidates(Collective::Bcast, &space);
    let cluster = acclaim_netsim::Cluster::bebop_like();
    c.bench_function("schedule_wave_1944_candidates", |b| {
        b.iter(|| {
            black_box(schedule_wave(
                &cluster.topology,
                &cluster.allocation,
                black_box(&candidates),
            ))
        })
    });
}

fn rule_generation(c: &mut Criterion) {
    let (_, space, model) = fixture();
    c.bench_function("generate_rules_tiny_grid", |b| {
        b.iter(|| black_box(generate_rules(&model, black_box(&space))))
    });
}

/// Ablation: wall-clock of a full (small) training run under each
/// selection policy and collection strategy.
fn policy_ablation(c: &mut Criterion) {
    let db = BenchmarkDatabase::new(DatasetConfig::tiny());
    let space = FeatureSpace::tiny();
    let mut group = c.benchmark_group("train_30_points");
    group.sample_size(10);
    let configs: Vec<(&str, LearnerConfig)> = vec![
        (
            "jackknife_sequential",
            LearnerConfig::acclaim_sequential().with_budget(30),
        ),
        (
            "jackknife_parallel",
            LearnerConfig::acclaim().with_budget(30),
        ),
        (
            "random_sequential",
            LearnerConfig {
                policy: SelectionPolicy::Random,
                ..LearnerConfig::acclaim_sequential().with_budget(30)
            },
        ),
    ];
    for (name, cfg) in configs {
        let cfg = LearnerConfig {
            forest: ForestConfig {
                n_trees: 16,
                ..ForestConfig::for_n_features(5)
            },
            ..cfg
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(
                    ActiveLearner::new(cfg.clone())
                        .train(&db, Collective::Reduce, &space, None),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    variance_ranking,
    wave_scheduling,
    rule_generation,
    policy_ablation
);
criterion_main!(benches);
