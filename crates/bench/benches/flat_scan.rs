//! Ablation: flat SoA forest inference vs pointer-chasing traversal,
//! and the DES calendar queue vs the reference binary heap.
//!
//! The flat engine flattens every tree into contiguous
//! feature/threshold/child arrays, evaluates candidate blocks tree-major
//! (the whole tree stays hot in cache across a 256-row block), and fuses
//! the jackknife variance into the same pass so per-candidate prediction
//! vectors are never materialized. Both paths are bit-identical — see
//! `flat_engine_matches_pointer_engine_bit_for_bit` in acclaim-core and
//! the `flat_equivalence` workspace test — so the ratio is pure
//! overhead removed. Shape matches the PR's BENCH_pr6.json trajectory:
//! n≈800 samples, 64 trees, 1944 candidates.

use acclaim_bench::simulation_env;
use acclaim_collectives::{Algorithm, Collective};
use acclaim_core::{
    all_candidates, rank_by_variance, rank_by_variance_flat, PerfModel, TrainingSample,
};
use acclaim_ml::ForestConfig;
use acclaim_netsim::{Allocation, Cluster, FlowSim, QueueEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Samples for the first `n` candidates of the space, in the same
/// interleaved order as `jackknife_incremental_vs_scratch`.
fn collect_samples(n: usize) -> Vec<TrainingSample> {
    let (db, space) = simulation_env();
    let mut cands = all_candidates(Collective::Bcast, &space);
    cands.sort_by_key(|c| {
        (
            c.point.msg_bytes % 7,
            c.point.nodes,
            c.algorithm.index_within_collective(),
            c.point.msg_bytes,
        )
    });
    cands
        .into_iter()
        .take(n)
        .map(|c| TrainingSample {
            point: c.point,
            algorithm: c.algorithm,
            time_us: db.time(c.algorithm, c.point),
        })
        .collect()
}

fn flat_vs_pointer_scan(c: &mut Criterion) {
    let (_, space) = simulation_env();
    let candidates = all_candidates(Collective::Bcast, &space);
    let samples = collect_samples(800);
    let model = PerfModel::fit(Collective::Bcast, &samples, &ForestConfig::default());

    let mut group = c.benchmark_group("variance_scan");
    group.sample_size(10);
    group.bench_function("pointer", |b| {
        b.iter(|| black_box(rank_by_variance(&model, &candidates)))
    });
    group.bench_function("flat", |b| {
        b.iter(|| black_box(rank_by_variance_flat(&model, &candidates)))
    });
    group.finish();
}

fn des_queue_engines(c: &mut Criterion) {
    let base = Cluster::bebop_like();
    let alloc = Allocation::contiguous(&base.topology, 8);
    let cl = base.with_allocation(alloc);
    let sched = Algorithm::BcastScatterRingAllgather
        .schedule(16, 65_536)
        .materialize();
    let mut group = c.benchmark_group("des_queue");
    for (name, engine) in [
        ("calendar", QueueEngine::Calendar),
        ("binary_heap", QueueEngine::BinaryHeap),
    ] {
        group.bench_with_input(BenchmarkId::new(name, "bcast_sra_8x2"), &sched, |b, s| {
            let mut sim = FlowSim::new().with_queue(engine);
            b.iter(|| black_box(sim.simulate(&cl, 2, s)))
        });
    }
    group.finish();
}

criterion_group!(benches, flat_vs_pointer_scan, des_queue_engines);
criterion_main!(benches);
