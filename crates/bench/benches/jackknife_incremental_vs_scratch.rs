//! Ablation: per-iteration model-update cost, incremental vs scratch.
//!
//! One active-learning iteration must (a) refit the forest on the
//! collection grown by one sample and (b) rescan the candidate space's
//! jackknife variances. The scratch path rebuilds every tree and every
//! per-tree prediction; the incremental path warm-starts the forest
//! (only trees whose hashed bootstrap drew the new sample refit — a
//! ~`1 − e⁻¹` fraction, each along a single presorted path) and
//! recomputes only the cells of the cached variance scan inside the
//! refitted trees' dirty regions. Both produce bit-identical rankings,
//! so the ratio of these benchmarks is pure overhead removed.
//!
//! Measured at the default `ForestConfig` on the 64-node Bebop-like
//! simulation space the paper's Sec. VI-B experiments use, at a
//! mid-to-late-training collection size (the regime the paper's Fig. 13
//! model-update blow-up argument is about — scratch refit cost grows
//! superlinearly with the collection while the incremental path tracks
//! only the new sample's paths).

use acclaim_bench::simulation_env;
use acclaim_collectives::Collective;
use acclaim_core::{all_candidates, rank_by_variance, PerfModel, TrainingSample, VarianceScanCache};
use acclaim_ml::{ForestConfig, TreeUpdate};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Samples for the first `n` candidates of the space, in a fixed
/// interleaved order approximating a training trajectory.
fn collect_samples(n: usize) -> Vec<TrainingSample> {
    let (db, space) = simulation_env();
    let collective = Collective::Bcast;
    let mut cands = all_candidates(collective, &space);
    // Interleave algorithms across the grid the way variance-driven
    // selection does, rather than sweeping one algorithm at a time.
    cands.sort_by_key(|c| {
        (
            c.point.msg_bytes % 7,
            c.point.nodes,
            c.algorithm.index_within_collective(),
            c.point.msg_bytes,
        )
    });
    cands
        .into_iter()
        .take(n)
        .map(|c| TrainingSample {
            point: c.point,
            algorithm: c.algorithm,
            time_us: db.time(c.algorithm, c.point),
        })
        .collect()
}

fn bench_model_update(c: &mut Criterion) {
    let collective = Collective::Bcast;
    let (_, space) = simulation_env();
    let candidates = all_candidates(collective, &space);
    let config = ForestConfig::default();

    // A training run mid-flight: N0 samples collected, the next APPENDS
    // arrive one at a time (one model update each).
    const N0: usize = 800;
    const APPENDS: usize = 8;
    let samples = collect_samples(N0 + APPENDS);

    let base_model = PerfModel::fit(collective, &samples[..N0], &config);
    let mut base_cache = VarianceScanCache::new(candidates.clone());
    base_cache.refresh(&base_model, &TreeUpdate::full_refit(config.n_trees));

    let mut group = c.benchmark_group("model_update");
    group.sample_size(10);

    // Scratch: what every prior iteration did — full forest fit plus a
    // cold variance scan, once per appended sample.
    group.bench_function("scratch", |b| {
        b.iter(|| {
            for n in N0 + 1..=N0 + APPENDS {
                let model = PerfModel::fit(collective, &samples[..n], &config);
                black_box(rank_by_variance(&model, &candidates));
            }
        })
    });

    // Incremental: warm-start the forest and patch only the refitted
    // trees' columns of the cached scan. The clone puts the run back at
    // N0; its cost is amortized over the APPENDS updates.
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let mut model = base_model.clone();
            let mut cache = base_cache.clone();
            for n in N0 + 1..=N0 + APPENDS {
                let changed = model.fit_incremental(&samples[..n], &config);
                cache.refresh(&model, &changed);
                black_box(cache.ranking());
            }
        })
    });

    group.finish();
}

criterion_group!(benches, bench_model_update);
criterion_main!(benches);
