//! Criterion benchmarks of the ML substrate, including the
//! `forest_size` ablation from DESIGN.md: ensemble size trades jackknife
//! stability against per-iteration retraining cost.

use acclaim_ml::{jackknife_variance, FeatureMatrix, ForestConfig, RandomForest};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn training_data(n: usize) -> (FeatureMatrix, Vec<f64>) {
    let mut x = FeatureMatrix::new(5);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let msg = (i % 18 + 3) as f64;
        let nodes = (i % 6 + 1) as f64;
        let ppn = (i % 5) as f64;
        let alg = (i % 3) as f64;
        x.push_row(&[msg, nodes, ppn, nodes + ppn, alg]);
        y.push(msg * 0.8 + nodes * 1.7 + ppn + alg * 0.3 + (i % 7) as f64 * 0.01);
    }
    (x, y)
}

fn forest_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_fit");
    let (x, y) = training_data(300);
    for trees in [16usize, 64, 128] {
        let cfg = ForestConfig {
            n_trees: trees,
            ..ForestConfig::for_n_features(5)
        };
        group.bench_with_input(BenchmarkId::from_parameter(trees), &trees, |b, _| {
            b.iter(|| black_box(RandomForest::fit(&cfg, &x, &y)))
        });
    }
    group.finish();
}

fn forest_predict(c: &mut Criterion) {
    let (x, y) = training_data(300);
    let forest = RandomForest::fit(&ForestConfig::for_n_features(5), &x, &y);
    let row = [10.0, 4.0, 2.0, 6.0, 1.0];
    c.bench_function("forest_predict", |b| {
        b.iter(|| black_box(forest.predict(black_box(&row))))
    });
    let mut scratch = Vec::new();
    c.bench_function("forest_jackknife_variance", |b| {
        b.iter(|| {
            forest.predict_per_tree(black_box(&row), &mut scratch);
            black_box(jackknife_variance(&scratch))
        })
    });
}

fn jackknife(c: &mut Criterion) {
    let preds: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
    c.bench_function("jackknife_variance_64", |b| {
        b.iter(|| black_box(jackknife_variance(black_box(&preds))))
    });
}

criterion_group!(benches, forest_fit, forest_predict, jackknife);
criterion_main!(benches);
