//! Bounds the cost of the observability layer.
//!
//! Two questions, two groups:
//!
//! * `obs_primitives` — what does a single disabled span / counter /
//!   histogram operation cost? Disabled handles must be a null check,
//!   not a lock; this group makes a regression there visible.
//! * `obs_training` — what does instrumentation cost end to end?
//!   `train` (tracing off) vs `train_with_obs(Obs::enabled())` on the
//!   same tiny environment. The disabled run is the production default,
//!   so its time *is* the overhead bound the design promises: identical
//!   to an uninstrumented build up to a pointer test per call site.

use acclaim_collectives::Collective;
use acclaim_core::{ActiveLearner, CriterionConfig, LearnerConfig};
use acclaim_dataset::{BenchmarkDatabase, DatasetConfig, FeatureSpace};
use acclaim_obs::Obs;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");
    let disabled = Obs::disabled();
    let enabled = Obs::enabled();

    group.bench_function("span_disabled", |b| {
        b.iter(|| black_box(disabled.span("bench", "noop")))
    });
    group.bench_function("span_enabled", |b| {
        b.iter(|| black_box(enabled.span("bench", "noop")))
    });

    // Handles resolved once, hammered in the hot path — the shape the
    // learner loop uses.
    let ctr_off = disabled.counter("bench.count");
    let ctr_on = enabled.counter("bench.count");
    group.bench_function("counter_incr_disabled", |b| b.iter(|| ctr_off.incr()));
    group.bench_function("counter_incr_enabled", |b| b.iter(|| ctr_on.incr()));

    let hist_off = disabled.histogram("bench.us");
    let hist_on = enabled.histogram("bench.us");
    group.bench_function("histogram_record_disabled", |b| {
        b.iter(|| hist_off.record(black_box(37.5)))
    });
    group.bench_function("histogram_record_enabled", |b| {
        b.iter(|| hist_on.record(black_box(37.5)))
    });

    // One-shot lookups pay a name hash when enabled; show that too so
    // nobody puts them in a tight loop by accident.
    group.bench_function("incr_counter_by_name_enabled", |b| {
        b.iter(|| enabled.incr_counter(black_box("bench.count"), 1))
    });
    group.finish();
}

fn training(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_training");
    group.sample_size(10);

    let cfg = LearnerConfig {
        criterion: CriterionConfig::MaxPoints(16),
        ..LearnerConfig::acclaim()
    };
    let learner = ActiveLearner::new(cfg);
    let space = FeatureSpace::tiny();

    // Tracing off: the production default. `train` routes through the
    // same code as the traced run with every obs call short-circuited.
    let db = BenchmarkDatabase::new(DatasetConfig::tiny());
    group.bench_function("train_disabled", |b| {
        b.iter(|| black_box(learner.train(&db, Collective::Bcast, &space, None)))
    });

    // Tracing on: a fresh recorder per run so span accumulation from
    // one iteration can't distort the next.
    let traced_db = BenchmarkDatabase::new(DatasetConfig::tiny());
    group.bench_function("train_enabled", |b| {
        b.iter(|| {
            let obs = Obs::enabled();
            let out = learner.train_with_obs(&traced_db, Collective::Bcast, &space, None, &obs);
            black_box((out, obs.snapshot().spans.len()))
        })
    });
    group.finish();
}

criterion_group!(benches, primitives, training);
criterion_main!(benches);
