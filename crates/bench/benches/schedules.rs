//! Criterion benchmarks of collective-schedule generation: the per-round
//! streaming generators must stay allocation-light so dataset generation
//! is simulator-bound, not schedule-bound.

use acclaim_collectives::Algorithm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn schedule_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_generation");
    let cases = [
        ("bcast_binomial_2048", Algorithm::BcastBinomial, 2048u32),
        ("bcast_scatter_rd_2048", Algorithm::BcastScatterRecursiveDoublingAllgather, 2048),
        ("allgather_ring_512", Algorithm::AllgatherRing, 512),
        ("allgather_brucks_2048", Algorithm::AllgatherBrucks, 2048),
        ("allreduce_rsag_2048", Algorithm::AllreduceReduceScatterAllgather, 2048),
        ("reduce_scatter_gather_2048", Algorithm::ReduceScatterGather, 2048),
    ];
    for (name, alg, ranks) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &ranks, |b, &ranks| {
            let sched = alg.schedule(ranks, 1 << 20);
            b.iter(|| {
                // Walk every round, counting messages (the simulator's
                // access pattern without pricing).
                let mut msgs = 0u64;
                sched.visit_rounds(&mut |round| msgs += round.len() as u64);
                black_box(msgs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, schedule_generation);
criterion_main!(benches);
