//! Criterion benchmarks of the two simulation engines, including the
//! `roundsim_vs_des` ablation from DESIGN.md: the round-synchronous
//! engine must be orders of magnitude faster than the flow-level DES to
//! make exhaustive dataset generation viable.

use acclaim_collectives::Algorithm;
use acclaim_netsim::{Allocation, Cluster, FlowSim, RoundSim};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn cluster(nodes: u32) -> Cluster {
    let base = Cluster::bebop_like();
    let alloc = Allocation::contiguous(&base.topology, nodes);
    base.with_allocation(alloc)
}

fn roundsim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("roundsim");
    let cases = [
        ("bcast_binomial_64x16_1MB", Algorithm::BcastBinomial, 64u32, 16u32, 1u64 << 20),
        ("allgather_ring_64x4_64KB", Algorithm::AllgatherRing, 64, 4, 65_536),
        (
            "allreduce_rsag_32x8_256KB",
            Algorithm::AllreduceReduceScatterAllgather,
            32,
            8,
            262_144,
        ),
    ];
    for (name, alg, nodes, ppn, bytes) in cases {
        let cl = cluster(nodes);
        let sched = alg.schedule(nodes * ppn, bytes);
        let mut sim = RoundSim::new();
        group.bench_function(name, |b| {
            b.iter(|| black_box(sim.simulate(&cl, ppn, sched.as_ref())))
        });
    }
    group.finish();
}

fn roundsim_vs_des(c: &mut Criterion) {
    // Ablation: identical workload through both engines.
    let mut group = c.benchmark_group("roundsim_vs_des");
    let cl = cluster(8);
    let sched = Algorithm::BcastScatterRingAllgather
        .schedule(16, 65_536)
        .materialize();
    group.bench_with_input(BenchmarkId::new("roundsim", "bcast_sra_8x2"), &sched, |b, s| {
        let mut sim = RoundSim::new();
        b.iter(|| black_box(sim.simulate(&cl, 2, s)))
    });
    group.bench_with_input(BenchmarkId::new("des", "bcast_sra_8x2"), &sched, |b, s| {
        let mut sim = FlowSim::new();
        b.iter(|| black_box(sim.simulate(&cl, 2, s)))
    });
    group.finish();
}

criterion_group!(benches, roundsim_throughput, roundsim_vs_des);
criterion_main!(benches);
