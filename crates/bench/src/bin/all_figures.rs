//! Regenerates every paper figure in sequence, writing each report to
//! `results/<name>.txt`.
fn main() {
    for (name, run) in acclaim_bench::figs::ALL {
        eprintln!("=== regenerating {name} ===");
        acclaim_bench::emit(name, &run());
    }
}
