//! `bench_trajectory` — the PR's machine-readable perf trajectory.
//!
//! Times the workloads recent PRs optimized and emits `BENCH_pr10.json`
//! at the repository root (override with `--out PATH`):
//!
//! * the candidate variance scan, pointer-chasing vs flat SoA engine,
//!   at the ablation shape (n≈800 samples, 64 trees, 1944 candidates);
//! * the flow-level DES on a collective trace, binary-heap vs calendar
//!   event queue;
//! * one end-to-end tune on the tiny grid (wall time, flat engine),
//!   paired telemetry-off vs telemetry-on — the `telemetry_overhead`
//!   ratio is the cost of the observability contract and should stay
//!   near 1.0;
//! * one warm rule query through the `acclaim-serve` service (cache
//!   hit against a pre-warmed serving model — the daemon's steady-state
//!   lookup path, expected well under a millisecond);
//! * the analytic-priors cold-start comparison (`acclaim-analytic`):
//!   iterations-to-convergence and simulated benchmark cost of a cold
//!   tune with and without Hockney/LogGP priors, medians over seeds
//!   0–4 — deterministic simulator quantities, not host timings, so
//!   they reproduce exactly on any machine.
//!
//! `--compare BASELINE.json` re-reads a committed trajectory and prints
//! soft warnings for medians that regressed beyond a 25% band — it
//! never fails the process, so CI surfaces drift without flaking on
//! noisy runners.
//!
//! Timing is a hand-rolled warmup + median loop (the vendored criterion
//! subset has no machine-readable export): medians over a small odd
//! sample count are robust to scheduler noise, and every workload is
//! deterministic so spread comes only from the host.

use acclaim_bench::simulation_env;
use acclaim_collectives::{Algorithm, Collective};
use acclaim_core::{
    all_candidates, rank_by_variance, rank_by_variance_flat, Acclaim, AcclaimConfig,
    CriterionConfig, PerfModel, TrainingSample, VarianceConvergence,
};
use acclaim_dataset::{BenchmarkDatabase, DatasetConfig, FeatureSpace};
use acclaim_ml::ForestConfig;
use acclaim_netsim::{Allocation, Cluster, FlowSim, QueueEngine};
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Schema version of the emitted file; bump on layout changes.
/// v2 added the `analytic` block (PR 10).
const BENCH_SCHEMA_VERSION: u32 = 2;

#[derive(Serialize)]
struct Shape {
    n_samples: usize,
    n_trees: usize,
    candidates: usize,
}

#[derive(Serialize)]
struct MediansUs {
    variance_scan_pointer: f64,
    variance_scan_flat: f64,
    des_binary_heap: f64,
    des_calendar: f64,
    tune_e2e: f64,
    tune_e2e_obs: f64,
    serve_query_warm: f64,
}

#[derive(Serialize)]
struct Speedups {
    variance_scan: f64,
    des: f64,
    /// Telemetry-on over telemetry-off e2e tune wall time (≈1.0 when
    /// the instrumentation keeps its behaviorally-inert promise cheap).
    telemetry_overhead: f64,
}

/// Cold-start cost with vs without analytical priors: medians over
/// seeds 0–4 of one bcast tune on the tiny grid. All four numbers are
/// simulated (deterministic) quantities.
#[derive(Serialize)]
struct AnalyticPriors {
    cold_iterations: f64,
    priors_iterations: f64,
    cold_bench_cost_us: f64,
    priors_bench_cost_us: f64,
    /// cold / priors — >1.0 means priors converge in fewer iterations.
    iterations_speedup: f64,
    /// cold / priors — >1.0 means priors collect cheaper.
    bench_cost_speedup: f64,
}

#[derive(Serialize)]
struct Trajectory {
    pr: u32,
    schema_version: u32,
    shape: Shape,
    medians_us: MediansUs,
    speedups: Speedups,
    analytic: AnalyticPriors,
}

/// Median wall time of `f` in µs after `warmup` discarded runs.
fn median_us(warmup: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Paired medians of two workloads, alternating `a` and `b` within
/// each rep so slow drift in host load (thermal, neighbors) hits both
/// sides equally instead of skewing their ratio.
fn paired_median_us(
    warmup: usize,
    reps: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
) -> (f64, f64) {
    for _ in 0..warmup {
        a();
        b();
    }
    let (mut ta, mut tb) = (Vec::with_capacity(reps), Vec::with_capacity(reps));
    for _ in 0..reps {
        let start = Instant::now();
        a();
        ta.push(start.elapsed().as_secs_f64() * 1e6);
        let start = Instant::now();
        b();
        tb.push(start.elapsed().as_secs_f64() * 1e6);
    }
    ta.sort_by(f64::total_cmp);
    tb.sort_by(f64::total_cmp);
    (ta[reps / 2], tb[reps / 2])
}

/// Samples for the first `n` candidates of the space, interleaved the
/// same way as the `jackknife_incremental_vs_scratch` ablation.
fn collect_samples(n: usize) -> Vec<TrainingSample> {
    let (db, space) = simulation_env();
    let mut cands = all_candidates(Collective::Bcast, &space);
    cands.sort_by_key(|c| {
        (
            c.point.msg_bytes % 7,
            c.point.nodes,
            c.algorithm.index_within_collective(),
            c.point.msg_bytes,
        )
    });
    cands
        .into_iter()
        .take(n)
        .map(|c| TrainingSample {
            point: c.point,
            algorithm: c.algorithm,
            time_us: db.time(c.algorithm, c.point),
        })
        .collect()
}

fn main() {
    let mut out: Option<PathBuf> = None;
    let mut compare: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().map(PathBuf::from),
            "--compare" => compare = args.next().map(PathBuf::from),
            other => {
                eprintln!("usage: bench_trajectory [--out PATH] [--compare BASELINE]");
                panic!("unknown argument {other}");
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr10.json")
    });

    // -- Variance scan, pointer vs flat, at the ablation shape. --------
    const N_SAMPLES: usize = 800;
    let (_, space) = simulation_env();
    let candidates = all_candidates(Collective::Bcast, &space);
    let config = ForestConfig::default();
    let samples = collect_samples(N_SAMPLES);
    let model = PerfModel::fit(Collective::Bcast, &samples, &config);
    eprintln!(
        "shape: {} samples, {} trees, {} candidates",
        N_SAMPLES,
        config.n_trees,
        candidates.len()
    );

    let (pointer, flat) = paired_median_us(
        2,
        15,
        || {
            black_box(rank_by_variance(&model, &candidates));
        },
        || {
            black_box(rank_by_variance_flat(&model, &candidates));
        },
    );
    eprintln!("variance_scan_pointer: {pointer:.1} µs");
    eprintln!("variance_scan_flat:    {flat:.1} µs");

    // -- DES event queue, binary heap vs calendar. ---------------------
    let base = Cluster::bebop_like();
    let alloc = Allocation::contiguous(&base.topology, 8);
    let cl = base.with_allocation(alloc);
    let sched = Algorithm::BcastScatterRingAllgather
        .schedule(16, 65_536)
        .materialize();
    let mut heap_sim = FlowSim::new().with_queue(QueueEngine::BinaryHeap);
    let mut cal_sim = FlowSim::new().with_queue(QueueEngine::Calendar);
    let (des_heap, des_cal) = paired_median_us(
        3,
        15,
        || {
            black_box(heap_sim.simulate(&cl, 2, &sched));
        },
        || {
            black_box(cal_sim.simulate(&cl, 2, &sched));
        },
    );
    eprintln!("des_binary_heap: {des_heap:.1} µs");
    eprintln!("des_calendar:    {des_cal:.1} µs");

    // -- End-to-end tune on the tiny grid (flat engine), telemetry
    // off vs fully instrumented. Both sides keep their memoized
    // database across reps so the pairing isolates the recorder cost;
    // the shared recorder's span log grows across the handful of reps,
    // which is negligible next to a tune. -------------------------------
    let db = BenchmarkDatabase::new(DatasetConfig::tiny());
    let obs = acclaim_obs::Obs::enabled();
    let db_obs = BenchmarkDatabase::new(DatasetConfig::tiny()).with_obs(&obs);
    let mut tune_cfg = AcclaimConfig::new(FeatureSpace::tiny());
    tune_cfg.learner.criterion =
        CriterionConfig::CumulativeVariance(VarianceConvergence::relative(4, 0.2));
    let (tune, tune_obs) = paired_median_us(
        1,
        3,
        || {
            black_box(Acclaim::new(tune_cfg.clone()).tune(&db, &[Collective::Bcast]));
        },
        || {
            black_box(Acclaim::new(tune_cfg.clone()).tune_with_obs(
                &db_obs,
                &[Collective::Bcast],
                &obs,
            ));
        },
    );
    eprintln!("tune_e2e:     {tune:.1} µs");
    eprintln!("tune_e2e_obs: {tune_obs:.1} µs");

    // -- Warm rule query through the serving layer. --------------------
    let serve_query = {
        use acclaim_serve::{JobStatus, QueryRequest, ServeConfig, TuneService};
        let dir = std::env::temp_dir().join("acclaim-bench-serve-latency");
        std::fs::remove_dir_all(&dir).ok();
        let service = TuneService::open(
            &dir,
            ServeConfig::default(),
            acclaim_obs::Obs::disabled(),
        )
        .expect("open serve store");
        let request = acclaim_serve::loadgen::request_pool(1, 7)[0].clone();
        let JobStatus::Done(_) = service.submit(request.clone()).wait() else {
            panic!("serve warmup tune failed");
        };
        let query = QueryRequest {
            dataset: request.dataset.clone(),
            config: request.config.clone(),
            collective: request.collectives[0],
            point: acclaim_dataset::Point::new(4, 2, 1024),
        };
        let median = median_us(200, 1001, || {
            black_box(service.query(&query));
        });
        drop(service);
        std::fs::remove_dir_all(&dir).ok();
        median
    };
    eprintln!("serve_query_warm: {serve_query:.1} µs");

    // -- Analytic-priors cold-start comparison (deterministic). --------
    let median_f64 = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let (mut cold_iters, mut warm_iters) = (Vec::new(), Vec::new());
    let (mut cold_cost, mut warm_cost) = (Vec::new(), Vec::new());
    for seed in 0..5u64 {
        let mut cfg = tune_cfg.clone();
        cfg.learner.seed = seed;
        let cold = Acclaim::new(cfg.clone()).tune(&db, &[Collective::Bcast]);
        cfg.learner.analytic_priors.enabled = true;
        let warm = acclaim_analytic::tune_with_analytic(
            &cfg,
            &db,
            &[Collective::Bcast],
            &acclaim_obs::Obs::disabled(),
        );
        let (cold, warm) = (&cold.reports[0].1, &warm.reports[0].1);
        cold_iters.push(cold.log.len() as f64);
        warm_iters.push(warm.log.len() as f64);
        cold_cost.push(cold.stats.wall_us);
        warm_cost.push(warm.stats.wall_us);
    }
    let analytic = AnalyticPriors {
        cold_iterations: median_f64(cold_iters),
        priors_iterations: median_f64(warm_iters),
        cold_bench_cost_us: median_f64(cold_cost),
        priors_bench_cost_us: median_f64(warm_cost),
        iterations_speedup: 0.0,
        bench_cost_speedup: 0.0,
    };
    let analytic = AnalyticPriors {
        iterations_speedup: analytic.cold_iterations / analytic.priors_iterations,
        bench_cost_speedup: analytic.cold_bench_cost_us / analytic.priors_bench_cost_us,
        ..analytic
    };
    eprintln!(
        "analytic_priors: {} -> {} iterations, {:.0} -> {:.0} µs bench cost",
        analytic.cold_iterations,
        analytic.priors_iterations,
        analytic.cold_bench_cost_us,
        analytic.priors_bench_cost_us
    );

    let trajectory = Trajectory {
        pr: 10,
        schema_version: BENCH_SCHEMA_VERSION,
        shape: Shape {
            n_samples: N_SAMPLES,
            n_trees: config.n_trees,
            candidates: candidates.len(),
        },
        medians_us: MediansUs {
            variance_scan_pointer: pointer,
            variance_scan_flat: flat,
            des_binary_heap: des_heap,
            des_calendar: des_cal,
            tune_e2e: tune,
            tune_e2e_obs: tune_obs,
            serve_query_warm: serve_query,
        },
        speedups: Speedups {
            variance_scan: pointer / flat,
            des: des_heap / des_cal,
            telemetry_overhead: tune_obs / tune,
        },
        analytic,
    };
    let text =
        serde_json::to_string_pretty(&trajectory).expect("trajectory serializes");
    std::fs::write(&out, format!("{text}\n")).expect("write trajectory");
    println!("{text}");
    eprintln!("[saved {}]", out.display());

    // -- Soft regression check against a committed baseline. -----------
    if let Some(baseline) = compare {
        compare_against(&baseline, &trajectory);
    }
}

/// Print soft warnings for medians that regressed >25% vs `baseline`.
/// Never exits nonzero: bench runners are noisy, and the trajectory is
/// a trend signal, not a gate.
fn compare_against(baseline: &PathBuf, current: &Trajectory) {
    let text = match std::fs::read_to_string(baseline) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("warning: cannot read baseline {}: {e}", baseline.display());
            return;
        }
    };
    let old: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("warning: cannot parse baseline {}: {e}", baseline.display());
            return;
        }
    };
    let pairs = [
        ("variance_scan_pointer", current.medians_us.variance_scan_pointer),
        ("variance_scan_flat", current.medians_us.variance_scan_flat),
        ("des_binary_heap", current.medians_us.des_binary_heap),
        ("des_calendar", current.medians_us.des_calendar),
        ("tune_e2e", current.medians_us.tune_e2e),
        ("tune_e2e_obs", current.medians_us.tune_e2e_obs),
        ("serve_query_warm", current.medians_us.serve_query_warm),
    ];
    let mut regressed = 0;
    for (name, now) in pairs {
        let Some(was) = old
            .get("medians_us")
            .and_then(|m| m.get(name))
            .and_then(|v| v.as_f64())
        else {
            eprintln!("warning: baseline is missing medians_us.{name}");
            continue;
        };
        if now > was * 1.25 {
            regressed += 1;
            eprintln!(
                "warning: {name} regressed {:.0}% ({was:.1} -> {now:.1} µs)",
                (now / was - 1.0) * 100.0
            );
        }
    }
    if regressed == 0 {
        eprintln!("baseline comparison: no median regressed beyond the 25% band");
    }
}
