//! Calibration probe (not a paper figure): trace cumulative variance
//! and oracle slowdown across a long budget run to pick the default
//! variance-convergence threshold.

use acclaim_bench::simulation_env;
use acclaim_collectives::Collective;
use acclaim_core::{ActiveLearner, LearnerConfig};

fn main() {
    let (db, space) = simulation_env();
    let eval = space.points();
    for collective in Collective::ALL {
        let cfg = LearnerConfig::acclaim_sequential().with_budget(220);
        let out = ActiveLearner::new(cfg).train(&db, collective, &space, Some(&eval));
        println!("\n=== {} ===", collective.name());
        println!("iter  samples      wall(s)      cumvar   rel_delta   slowdown");
        let mut last = f64::NAN;
        for r in out.log.iter() {
            if r.iteration % 5 == 0 || r.iteration < 15 {
                let delta = ((r.cumulative_variance - last) / last).abs();
                println!(
                    "{:>4}  {:>7}  {:>10.1}  {:>10.4}  {:>9.4}  {:>9.4}",
                    r.iteration,
                    r.samples,
                    r.wall_us / 1e6,
                    r.cumulative_variance,
                    if delta.is_finite() { delta } else { 0.0 },
                    r.oracle_slowdown.unwrap_or(f64::NAN),
                );
            }
            last = r.cumulative_variance;
        }
    }
}
