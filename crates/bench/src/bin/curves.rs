//! Calibration probe: learning curves of random vs variance-driven
//! sampling per collective (slowdown vs number of samples).

use acclaim_bench::simulation_env;
use acclaim_collectives::Collective;
use acclaim_core::{ActiveLearner, LearnerConfig, SelectionPolicy};

fn main() {
    let (db, space) = simulation_env();
    let pts = space.points();
    let trees: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(64);
    let only: Option<String> = std::env::args().nth(2);
    for collective in Collective::ALL {
        if only.as_deref().is_some_and(|o| o != collective.name()) { continue; }
        db.prefill(collective, &space);
        println!("=== {} ===", collective.name());
        for (name, policy) in [
            ("own-variance", SelectionPolicy::OwnVariance),
            ("random", SelectionPolicy::Random),
        ] {
            let mut cfg = LearnerConfig {
                policy: policy.clone(),
                nonp2_every: None,
                ..LearnerConfig::acclaim_sequential().with_budget(500)
            };
            cfg.forest.n_trees = trees;
            cfg.explore_every = std::env::args().nth(3).and_then(|a| a.parse().ok()).or(Some(4));
            let out = ActiveLearner::new(cfg).train(&db, collective, &space, Some(&pts));
            let mut line = format!("{name:<14}");
            for target in [25usize, 50, 100, 200, 300, 400, 500] {
                if let Some(r) = out.log.iter().find(|r| r.samples >= target) {
                    line.push_str(&format!(
                        " {}:{:.3}",
                        target,
                        r.oracle_slowdown.unwrap()
                    ));
                }
            }
            println!("{line}");
        }
    }
}
