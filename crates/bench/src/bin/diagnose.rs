//! Calibration probe: where does the variance-trained allgather model
//! go wrong, and where did its samples land?

use acclaim_bench::simulation_env;
use acclaim_collectives::Collective;
use acclaim_core::{ActiveLearner, LearnerConfig, SelectionPolicy};
use std::collections::HashMap;

fn main() {
    let (db, space) = simulation_env();
    let pts = space.points();
    let collective = Collective::Allgather;
    db.prefill(collective, &space);
    let cfg = LearnerConfig {
        policy: SelectionPolicy::OwnVariance,
        nonp2_every: None,
        ..LearnerConfig::acclaim_sequential().with_budget(400)
    };
    let out = ActiveLearner::new(cfg).train(&db, collective, &space, Some(&pts));

    // Sample density by (nodes, ppn).
    let mut density: HashMap<(u32, u32), usize> = HashMap::new();
    let mut by_alg: HashMap<&str, usize> = HashMap::new();
    for s in &out.collected {
        *density.entry((s.point.nodes, s.point.ppn)).or_default() += 1;
        *by_alg.entry(s.algorithm.name()).or_default() += 1;
    }
    println!("samples per algorithm: {by_alg:?}");
    println!("sample density by (nodes, ppn):");
    for &ppn in &space.ppns {
        let row: Vec<String> = space
            .nodes
            .iter()
            .map(|&n| format!("{:>3}", density.get(&(n, ppn)).copied().unwrap_or(0)))
            .collect();
        println!("  ppn {:>2}: {}", ppn, row.join(" "));
    }

    // Worst points.
    let mut worst: Vec<(f64, String)> = pts
        .iter()
        .map(|&p| {
            let sel = out.model.select(p);
            let s = db.slowdown(p, sel);
            let (best, _) = db.best(collective, p);
            (
                s,
                format!(
                    "{p}  selected {} (pred {:.0}us, true {:.0}us)  best {} ({:.0}us)",
                    sel.name(),
                    out.model.predict(p, sel),
                    db.time(sel, p),
                    best.name(),
                    db.best(collective, p).1
                ),
            )
        })
        .collect();
    worst.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("\n20 worst selections:");
    for (s, line) in worst.iter().take(20) {
        println!("  slowdown {s:>6.2}: {line}");
    }
    let over: usize = worst.iter().filter(|(s, _)| *s > 1.05).count();
    println!("\npoints with slowdown > 1.05: {over} / {}", pts.len());
}
