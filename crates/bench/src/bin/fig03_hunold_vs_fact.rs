//! Regenerates paper figure 03 (see `acclaim_bench::figs`).
fn main() {
    acclaim_bench::emit("fig03_hunold_vs_fact", &acclaim_bench::figs::fig03::run());
}
