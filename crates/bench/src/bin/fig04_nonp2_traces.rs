//! Regenerates paper figure 04 (see `acclaim_bench::figs`).
fn main() {
    acclaim_bench::emit("fig04_nonp2_traces", &acclaim_bench::figs::fig04::run());
}
