//! Regenerates paper figure 05 (see `acclaim_bench::figs`).
fn main() {
    acclaim_bench::emit("fig05_fact_nonp2", &acclaim_bench::figs::fig05::run());
}
