//! Regenerates paper figure 06 (see `acclaim_bench::figs`).
fn main() {
    acclaim_bench::emit("fig06_testset_cost", &acclaim_bench::figs::fig06::run());
}
