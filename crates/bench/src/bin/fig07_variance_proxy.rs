//! Regenerates paper figure 07 (see `acclaim_bench::figs`).
fn main() {
    acclaim_bench::emit("fig07_variance_proxy", &acclaim_bench::figs::fig07::run());
}
