//! Regenerates paper figure 10 (see `acclaim_bench::figs`).
fn main() {
    acclaim_bench::emit("fig10_point_selection", &acclaim_bench::figs::fig10::run());
}
