//! Regenerates paper figure 11 (see `acclaim_bench::figs`).
fn main() {
    acclaim_bench::emit("fig11_nonp2_split", &acclaim_bench::figs::fig11::run());
}
