//! Regenerates paper figure 12 (see `acclaim_bench::figs`).
fn main() {
    acclaim_bench::emit("fig12_convergence", &acclaim_bench::figs::fig12::run());
}
