//! Regenerates paper figure 13 (see `acclaim_bench::figs`).
fn main() {
    acclaim_bench::emit("fig13_parallel_collection", &acclaim_bench::figs::fig13::run());
}
