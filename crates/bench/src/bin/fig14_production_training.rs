//! Regenerates paper figure 14 (see `acclaim_bench::figs`).
fn main() {
    acclaim_bench::emit("fig14_production_training", &acclaim_bench::figs::fig14::run());
}
