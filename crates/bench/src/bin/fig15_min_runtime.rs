//! Regenerates paper figure 15 (see `acclaim_bench::figs`).
fn main() {
    acclaim_bench::emit("fig15_min_runtime", &acclaim_bench::figs::fig15::run());
}
