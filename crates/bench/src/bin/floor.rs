//! Calibration probe: the slowdown floor of a model trained on the
//! *entire* candidate set (selection cannot beat this).

use acclaim_bench::simulation_env;
use acclaim_collectives::Collective;
use acclaim_core::{PerfModel, TrainingSample};
use acclaim_ml::ForestConfig;

fn main() {
    let (db, space) = simulation_env();
    let pts = space.points();
    for collective in Collective::ALL {
        db.prefill(collective, &space);
        let samples: Vec<TrainingSample> = pts
            .iter()
            .flat_map(|&p| {
                collective.algorithms().iter().map(move |&a| (p, a))
            })
            .map(|(p, a)| TrainingSample {
                point: p,
                algorithm: a,
                time_us: db.time(a, p),
            })
            .collect();
        for n_trees in [64usize, 128] {
            let model = PerfModel::fit(
                collective,
                &samples,
                &ForestConfig {
                    n_trees,
                    ..ForestConfig::for_n_features(4)
                },
            );
            let slowdown = db.average_slowdown(collective, &pts, |p| model.select(p));
            // Worst individual point.
            let worst = pts
                .iter()
                .map(|&p| db.slowdown(p, model.select(p)))
                .fold(0.0f64, f64::max);
            println!(
                "{:<10} trees={n_trees:<4} exhaustive-train slowdown {:.4}  worst point {:.2}",
                collective.name(),
                slowdown,
                worst
            );
        }
    }
}
