//! Calibration probe: how much does the best algorithm change between
//! non-P2 message sizes and their nearest P2 anchors?
use acclaim_bench::simulation_env;
use acclaim_collectives::Collective;
use acclaim_dataset::{splits, Point};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let (db, space) = simulation_env();
    let c = Collective::Bcast;
    let mut rng = StdRng::seed_from_u64(5);
    let pts = splits::nonp2_msg_test_set(&space, 2, &mut rng);
    let mut slow = 0.0;
    let mut flips = 0;
    let mut worst: Vec<(f64, Point)> = Vec::new();
    for &p in &pts {
        // Nearest P2 anchor in log space.
        let anchor = (p.msg_bytes as f64).log2().round() as u32;
        let ap = Point::new(p.nodes, p.ppn, 1u64 << anchor);
        let (best_at_anchor, _) = db.best(c, ap);
        let s = db.slowdown(p, best_at_anchor);
        slow += s;
        if s > 1.01 { flips += 1; }
        worst.push((s, p));
    }
    worst.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("carryover slowdown on non-P2 msg set: {:.4} ({} affected of {})",
        slow / pts.len() as f64, flips, pts.len());
    for (s, p) in worst.iter().take(8) {
        let (b, _) = db.best(c, *p);
        println!("  {p}: carryover slowdown {s:.2}, true best {}", b.name());
    }
}
