//! Diagnostic probe: which algorithm wins where on the simulated
//! 64-node cluster, and how long exhaustive dataset generation takes.
//! Not a paper figure — a calibration aid (`cargo run -p acclaim-bench
//! --release --bin probe`).

use acclaim_bench::{simulation_env, table};
use acclaim_collectives::{mpich_default, Collective};
use acclaim_dataset::Point;
use std::time::Instant;

fn main() {
    let (db, space) = simulation_env();
    for collective in Collective::ALL {
        let t0 = Instant::now();
        db.prefill(collective, &space);
        let gen = t0.elapsed();

        let mut rows = Vec::new();
        for &nodes in &[4u32, 16, 64] {
            for &ppn in &[1u32, 8, 32] {
                let mut cells = vec![format!("{nodes}x{ppn}")];
                for &m in &[64u64, 4_096, 65_536, 1 << 20] {
                    let p = Point::new(nodes, ppn, m);
                    let (best, t) = db.best(collective, p);
                    let def = mpich_default(collective, p.ranks(), m);
                    let def_slow = db.slowdown(p, def);
                    cells.push(format!(
                        "{}({:.0}us d{:.2})",
                        &best.name()[..best.name().len().min(12)],
                        t,
                        def_slow
                    ));
                }
                rows.push(cells);
            }
        }
        println!(
            "\n=== {} (prefill {:.1}s, {} samples) ===",
            collective.name(),
            gen.as_secs_f64(),
            db.len()
        );
        println!(
            "{}",
            table(&["nodes x ppn", "64B", "4KB", "64KB", "1MB"], &rows)
        );
    }
}
