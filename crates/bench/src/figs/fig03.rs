//! Fig. 3 — Hunold et al. vs FACT: average slowdown as a function of
//! the percentage of the feature space used as training data. FACT
//! (active learning) stays below the 1.03 convergence criterion with
//! far less data than random sampling needs.

use crate::{simulation_env, table};
use acclaim_collectives::Collective;
use acclaim_core::baselines::HunoldAutotuner;
use acclaim_core::{ActiveLearner, LearnerConfig};
use acclaim_ml::CONVERGENCE_SLOWDOWN;

/// Regenerate the figure; returns the report text.
pub fn run() -> String {
    let (db, space) = simulation_env();
    let fractions = [0.02f64, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80];
    let eval: Vec<_> = space.points();

    // FACT once per collective with a large budget; slowdowns at each
    // fraction come from its iteration log.
    let mut fact_runs = Vec::new();
    for c in Collective::ALL {
        db.prefill(c, &space);
        let budget = (space.len() as f64 * 0.85) as usize * c.algorithms().len();
        let cfg = LearnerConfig::fact().with_budget(budget);
        fact_runs.push((c, ActiveLearner::new(cfg).train(&db, c, &space, Some(&eval))));
    }

    let mut rows = Vec::new();
    for &fraction in &fractions {
        let mut hunold_sum = 0.0;
        let mut fact_sum = 0.0;
        for (c, fact) in &fact_runs {
            let h = HunoldAutotuner::default().train_with_fraction(&db, *c, &space, fraction);
            hunold_sum += db.average_slowdown(*c, &eval, |p| h.select(p));

            let target = (space.len() as f64 * fraction) as usize * c.algorithms().len();
            let rec = fact
                .log
                .iter()
                .rfind(|r| r.samples <= target.max(1))
                .or(fact.log.first())
                .expect("non-empty log");
            fact_sum += rec.oracle_slowdown.expect("eval enabled");
        }
        rows.push(vec![
            format!("{:.0}%", fraction * 100.0),
            format!("{:.3}", hunold_sum / 4.0),
            format!("{:.3}", fact_sum / 4.0),
        ]);
    }

    let mut out = String::from(
        "Fig. 3 — average slowdown vs training data fraction (mean over the 4 collectives)\n\n",
    );
    out.push_str(&table(&["train %", "Hunold et al.", "FACT"], &rows));
    out.push_str(&format!(
        "\nconvergence criterion: average slowdown <= {CONVERGENCE_SLOWDOWN}\n\
         paper shape: FACT reaches the criterion with far less training data than Hunold.\n"
    ));
    out
}
