//! Fig. 4 — percentage of non-power-of-two message sizes in HPC
//! application traces (LLNL trace set; 1024-node ParaDis unavailable).

use crate::table;
use acclaim_dataset::traces;

/// Regenerate the figure; returns the report text.
pub fn run() -> String {
    let max_msg = 1u64 << 20;
    let mut rows = Vec::new();
    for name in traces::trace_app_names() {
        let mut cells = vec![name.to_string()];
        for scale in [64u32, 1_024] {
            match traces::synthetic_trace(name, scale, max_msg) {
                Some(t) => cells.push(format!("{:.1}%", t.nonp2_fraction() * 100.0)),
                None => cells.push("n/a".to_string()),
            }
        }
        rows.push(cells);
    }
    let aggregate = traces::aggregate_nonp2_fraction(&traces::all_traces(max_msg));

    let mut out =
        String::from("Fig. 4 — non-power-of-two message sizes in application traces\n\n");
    out.push_str(&table(&["application", "64-node", "1024-node"], &rows));
    out.push_str(&format!(
        "\naggregate across available traces: {:.1}% (paper: 15.7%)\n\
         paper shape: a significant share of calls is non-P2, stable across job scales;\n\
         ParaDis has no 1024-node trace.\n",
        aggregate * 100.0
    ));
    out
}
