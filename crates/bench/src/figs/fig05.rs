//! Fig. 5 — FACT (trained on P2 points only) evaluated on three
//! `MPI_Bcast` test sets: "All P2", "Non-P2 Nodes", and "Non-P2 Message
//! Size". The P2-trained model fails to learn the non-P2 message-size
//! trends regardless of how much training data it gets.

use crate::{simulation_env, table};
use acclaim_collectives::Collective;
use acclaim_core::{ActiveLearner, LearnerConfig};
use rand::{rngs::StdRng, SeedableRng};

/// Regenerate the figure; returns the report text.
pub fn run() -> String {
    let (db, space) = simulation_env();
    let collective = Collective::Bcast;
    db.prefill(collective, &space);

    let mut rng = StdRng::seed_from_u64(0x00F1_6005);
    let all_p2 = acclaim_dataset::splits::p2_test_set(&space);
    let nonp2_nodes = acclaim_dataset::splits::nonp2_nodes_test_set(&space, 1, &mut rng);
    let nonp2_msg = acclaim_dataset::splits::nonp2_msg_test_set(&space, 3, &mut rng);

    // One long FACT run; measure each test set from snapshots of the log
    // by retraining at the matching budgets.
    let budgets: Vec<usize> = [0.05f64, 0.1, 0.2, 0.4, 0.6, 0.8]
        .iter()
        .map(|f| ((space.len() * collective.algorithms().len()) as f64 * f) as usize)
        .collect();

    let mut rows = Vec::new();
    for &budget in &budgets {
        let cfg = LearnerConfig::fact().with_budget(budget);
        let out = ActiveLearner::new(cfg).train(&db, collective, &space, None);
        let m = &out.model;
        rows.push(vec![
            format!(
                "{:.0}%",
                100.0 * budget as f64 / (space.len() * 3) as f64
            ),
            format!(
                "{:.3}",
                db.average_slowdown(collective, &all_p2, |p| m.select(p))
            ),
            format!(
                "{:.3}",
                db.average_slowdown(collective, &nonp2_nodes, |p| m.select(p))
            ),
            format!(
                "{:.3}",
                db.average_slowdown(collective, &nonp2_msg, |p| m.select(p))
            ),
        ]);
    }

    let mut out = String::from(
        "Fig. 5 — FACT trained on P2 points only, tested on P2 and non-P2 sets (MPI_Bcast)\n\n",
    );
    out.push_str(&table(
        &["train %", "All P2", "Non-P2 Nodes", "Non-P2 Msg Size"],
        &rows,
    ));
    out.push_str(
        "\npaper shape: All-P2 approaches optimal; Non-P2 Nodes tracks it with a penalty;\n\
         Non-P2 Message Size stays elevated at every training size (trends unlearnable\n\
         from P2 data alone).\n",
    );
    out
}
