//! Fig. 6 — test-set collection cost vs training-set collection cost.
//! Prior-art convergence testing needs a ~20%-of-the-space test set
//! whose collection dwarfs the training data itself (6–11x in the
//! paper), normalized per collective.

use crate::figs::fig10::REPRO_SLOWDOWN;
use crate::{fmt_secs, simulation_env, table};
use acclaim_collectives::Collective;
use acclaim_core::{ActiveLearner, CriterionConfig, LearnerConfig, SlowdownThreshold};

/// Regenerate the figure; returns the report text.
pub fn run() -> String {
    let (db, space) = simulation_env();
    let mut rows = Vec::new();
    for c in Collective::ALL {
        db.prefill(c, &space);
        // FACT with its own test-set criterion (threshold adapted to
        // this substrate's noise floor): training cost is what it
        // collected until convergence; test cost is its 20% test set.
        let cfg = LearnerConfig {
            criterion: CriterionConfig::TestSlowdown {
                threshold: SlowdownThreshold {
                    threshold: REPRO_SLOWDOWN,
                },
                test_fraction: 0.2,
            },
            ..LearnerConfig::fact()
        };
        let out = ActiveLearner::new(cfg).train(&db, c, &space, None);
        let ratio = out.test_wall_us / out.stats.wall_us;
        rows.push(vec![
            c.name().to_string(),
            fmt_secs(out.stats.wall_us),
            fmt_secs(out.test_wall_us),
            format!("{ratio:.1}x"),
        ]);
    }
    let mut out = String::from(
        "Fig. 6 — data collection cost of the 20% test set vs the training set (FACT)\n\n",
    );
    out.push_str(&table(
        &["collective", "train set", "test set", "test/train"],
        &rows,
    ));
    out.push_str(
        "\npaper shape: the test set costs a large multiple (6-11x in the paper) of the\n\
         training data it certifies — the overhead ACCLAiM's variance criterion removes.\n",
    );
    out
}
