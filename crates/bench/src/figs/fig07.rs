//! Fig. 7 — cumulative jackknife variance and average slowdown over one
//! training run: the variance tracks the slowdown, including its
//! fine-grained spikes, qualifying it as a convergence proxy.

use crate::{simulation_env, table};
use acclaim_collectives::Collective;
use acclaim_core::{ActiveLearner, LearnerConfig};

/// Regenerate the figure; returns the report text.
pub fn run() -> String {
    let (db, space) = simulation_env();
    let collective = Collective::Bcast;
    db.prefill(collective, &space);
    let eval = space.points();

    let cfg = LearnerConfig::acclaim_sequential().with_budget(260);
    let out = ActiveLearner::new(cfg).train(&db, collective, &space, Some(&eval));

    let mut rows = Vec::new();
    for r in out.log.iter().step_by(8) {
        rows.push(vec![
            format!("{:.1}", r.wall_us / 1e6),
            format!("{}", r.samples),
            format!("{:.4}", r.cumulative_variance),
            format!("{:.2}", r.model_update_us / 1e3),
            format!("{:.3}", r.oracle_slowdown.expect("eval enabled")),
        ]);
    }

    // Correlation between the two series (Pearson, on iteration pairs).
    let xs: Vec<f64> = out.log.iter().map(|r| r.cumulative_variance).collect();
    let ys: Vec<f64> = out
        .log
        .iter()
        .map(|r| r.oracle_slowdown.unwrap())
        .collect();
    let corr = pearson(&xs, &ys);

    let mut out_s = String::from(
        "Fig. 7 — cumulative variance vs average slowdown over training time (MPI_Bcast)\n\n",
    );
    out_s.push_str(&table(
        &[
            "time (s)",
            "samples",
            "cum. variance",
            "model upd (ms)",
            "avg slowdown",
        ],
        &rows,
    ));
    out_s.push_str(&format!(
        "\nPearson correlation(variance, slowdown) = {corr:.3}\n\
         paper shape: both series trend downward together and spike together —\n\
         variance can stand in for slowdown as the convergence signal.\n\
         The model-update column is the per-iteration cost of keeping that\n\
         signal fresh (incremental refit + cached variance scan), reported\n\
         separately from the collection time of the first column.\n"
    ));
    out_s
}

/// Pearson correlation coefficient.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    cov / (vx.sqrt() * vy.sqrt()).max(f64::MIN_POSITIVE)
}
