//! Fig. 10 — training-data collection time to reach the 1.03 average-
//! slowdown criterion: ACCLAiM's jackknife point selection vs FACT's
//! surrogate-driven selection, per collective (both collecting
//! sequentially to isolate the selection methodology).

use crate::{fmt_secs, simulation_env, table};
use acclaim_collectives::Collective;
use acclaim_core::{ActiveLearner, LearnerConfig, TrainingOutcome};

/// The paper's criterion is 1.03; this substrate's measurement noise and
/// tight algorithm races put the achievable floor slightly higher, so
/// the reproduction uses 1.05 (noted in EXPERIMENTS.md).
pub const REPRO_SLOWDOWN: f64 = 1.05;

/// Time to convergence, robust to single-iteration flickers: first
/// record from which the slowdown stays below the bound for at least
/// `hold` consecutive records.
pub fn sustained_time_to(outcome: &TrainingOutcome, bound: f64, hold: usize) -> Option<f64> {
    let recs = &outcome.log;
    let mut streak = 0usize;
    for (i, r) in recs.iter().enumerate() {
        if r.oracle_slowdown.is_some_and(|s| s <= bound) {
            streak += 1;
            if streak >= hold {
                return Some(recs[i + 1 - hold].wall_us);
            }
        } else {
            streak = 0;
        }
    }
    None
}

/// Regenerate the figure; returns the report text.
pub fn run() -> String {
    let (db, space) = simulation_env();
    let eval = space.points();

    let mut rows = Vec::new();
    let mut total_acclaim = 0.0;
    let mut total_fact = 0.0;
    for c in Collective::ALL {
        db.prefill(c, &space);
        let n_cand = space.len() * c.algorithms().len();
        let cap = (n_cand / 2).min(450);

        // Sec. VI-A isolates the *selection* methodology: sequential
        // collection and (like the P2-only evaluation) no non-P2
        // substitution for either method.
        let acclaim_cfg = LearnerConfig {
            nonp2_every: None,
            ..LearnerConfig::acclaim_sequential().with_budget(cap)
        };
        let acclaim = ActiveLearner::new(acclaim_cfg).train(&db, c, &space, Some(&eval));
        let fact_cfg = LearnerConfig::fact().with_budget(cap);
        let fact = ActiveLearner::new(fact_cfg).train(&db, c, &space, Some(&eval));

        let ta = sustained_time_to(&acclaim, REPRO_SLOWDOWN, 2);
        let tf = sustained_time_to(&fact, REPRO_SLOWDOWN, 2);
        // Cap-limited runs that never sustain the bound are reported at
        // their full budget time (a lower bound on the true cost).
        let ta_v = ta.unwrap_or(acclaim.stats.wall_us);
        let tf_v = tf.unwrap_or(fact.stats.wall_us);
        total_acclaim += ta_v;
        total_fact += tf_v;
        rows.push(vec![
            c.name().to_string(),
            format!("{}{}", fmt_secs(ta_v), if ta.is_none() { "*" } else { "" }),
            format!("{}{}", fmt_secs(tf_v), if tf.is_none() { "*" } else { "" }),
            format!("{:.2}x", tf_v / ta_v),
        ]);
    }
    rows.push(vec![
        "cumulative".to_string(),
        fmt_secs(total_acclaim),
        fmt_secs(total_fact),
        format!("{:.2}x", total_fact / total_acclaim),
    ]);

    let mut out = String::from(
        "Fig. 10 — training collection time to the convergence criterion\n\
         (sequential collection; selection methodology isolated; criterion 1.05,\n\
         adapted from the paper's 1.03 to this substrate's noise floor)\n\n",
    );
    out.push_str(&table(
        &["collective", "ACCLAiM", "FACT", "FACT/ACCLAiM"],
        &rows,
    ));
    out.push_str(
        "\n* never sustained the criterion within the budget; full budget time used.\n\
         paper shape: ACCLAiM converges up to 2.3x faster (cumulative 2.25x); FACT is\n\
         mildly faster on some collectives (paper: allreduce 1.37x, bcast 1.46x).\n",
    );
    out
}
