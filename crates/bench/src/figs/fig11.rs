//! Fig. 11 — the non-P2 training mix: all-P2 (0%), ACCLAiM's 80-20
//! (every 5th point non-P2), and a 50-50 split, each tested on the
//! "All P2" and "Non-P2 Message Size" bcast test sets. The 80-20 split
//! preserves P2 performance while rescuing non-P2 performance.

use crate::{simulation_env, table};
use acclaim_collectives::Collective;
use acclaim_core::{ActiveLearner, LearnerConfig};
use rand::{rngs::StdRng, SeedableRng};

/// Regenerate the figure; returns the report text.
pub fn run() -> String {
    let (db, space) = simulation_env();
    let collective = Collective::Bcast;
    db.prefill(collective, &space);

    let mut rng = StdRng::seed_from_u64(0x00F1_6011);
    let all_p2 = acclaim_dataset::splits::p2_test_set(&space);
    let nonp2_msg = acclaim_dataset::splits::nonp2_msg_test_set(&space, 3, &mut rng);

    let budget = ((space.len() * 3) as f64 * 0.18) as usize;
    let splits: [(&str, Option<usize>); 3] =
        [("All P2", None), ("80-20 (ACCLAiM)", Some(5)), ("50-50", Some(2))];

    // Single training runs are noisy; average each split over seeds.
    let seeds = [11u64, 22, 33];
    let mut rows = Vec::new();
    for (name, nonp2_every) in splits {
        let mut share = 0.0;
        let mut p2_slow = 0.0;
        let mut np_slow = 0.0;
        for &seed in &seeds {
            let cfg = LearnerConfig {
                nonp2_every,
                seed,
                ..LearnerConfig::acclaim_sequential().with_budget(budget)
            };
            let out = ActiveLearner::new(cfg).train(&db, collective, &space, None);
            let nonp2_samples = out
                .collected
                .iter()
                .filter(|s| !s.point.msg_bytes.is_power_of_two())
                .count();
            share += nonp2_samples as f64 / out.collected.len() as f64;
            p2_slow += db.average_slowdown(collective, &all_p2, |p| out.model.select(p));
            np_slow += db.average_slowdown(collective, &nonp2_msg, |p| out.model.select(p));
        }
        let n = seeds.len() as f64;
        rows.push(vec![
            name.to_string(),
            format!("{:.0}%", 100.0 * share / n),
            format!("{:.3}", p2_slow / n),
            format!("{:.3}", np_slow / n),
        ]);
    }

    let mut out = String::from(
        "Fig. 11 — non-P2 training-data incorporation for MPI_Bcast\n\
         (equal training budgets; slowdown on the P2 and non-P2-message test sets)\n\n",
    );
    out.push_str(&table(
        &["training split", "non-P2 share", "All-P2 set", "Non-P2-msg set"],
        &rows,
    ));
    out.push_str(
        "\npaper shape: 50-50 maximizes non-P2 performance but sacrifices P2; the 80-20\n\
         split keeps P2 performance while dramatically improving non-P2 (the Goldilocks\n\
         balance).\n",
    );
    out
}
