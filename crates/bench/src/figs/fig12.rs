//! Fig. 12 — when does the cumulative-variance criterion fire compared
//! with the average-slowdown criterion, and how good is the model at
//! each stop? The paper's result: variance stops slightly late on some
//! collectives and slightly early on others (model quality ~1.04
//! there), for a net 1.19x training-time reduction — with no test set.

use crate::figs::fig10::sustained_time_to;
use crate::{fmt_secs, simulation_env, table};
use acclaim_collectives::Collective;
use acclaim_core::{ActiveLearner, LearnerConfig, VarianceConvergence};
use crate::figs::fig10::REPRO_SLOWDOWN;

/// Regenerate the figure; returns the report text.
pub fn run() -> String {
    let (db, space) = simulation_env();
    let eval = space.points();

    let mut rows = Vec::new();
    let mut total_var = 0.0;
    let mut total_slow = 0.0;
    for c in Collective::ALL {
        db.prefill(c, &space);
        let cap = (space.len() * c.algorithms().len() / 2).min(450);
        let cfg = LearnerConfig::acclaim_sequential().with_budget(cap);
        let out = ActiveLearner::new(cfg).train(&db, c, &space, Some(&eval));

        // Replay the variance detector over the logged series.
        let mut detector = VarianceConvergence::paper_default();
        let var_stop = out
            .log
            .iter()
            .find(|r| detector.push(r.cumulative_variance));
        let slow_stop_t = sustained_time_to(&out, REPRO_SLOWDOWN, 2);

        let (vt, vq) = var_stop
            .map(|r| (r.wall_us, r.oracle_slowdown.unwrap()))
            .unwrap_or((out.stats.wall_us, out.log.last().unwrap().oracle_slowdown.unwrap()));
        let st = slow_stop_t.unwrap_or(out.stats.wall_us);
        total_var += vt;
        total_slow += st;
        rows.push(vec![
            c.name().to_string(),
            format!("{}{}", fmt_secs(vt), if var_stop.is_none() { "*" } else { "" }),
            format!("{vq:.3}"),
            format!("{}{}", fmt_secs(st), if slow_stop_t.is_none() { "*" } else { "" }),
            format!("{:.2}x", st / vt),
        ]);
    }
    rows.push(vec![
        "cumulative".to_string(),
        fmt_secs(total_var),
        String::new(),
        fmt_secs(total_slow),
        format!("{:.2}x", total_slow / total_var),
    ]);

    let mut out = String::from(
        "Fig. 12 — variance-criterion stop vs slowdown-criterion stop (per collective)\n\n",
    );
    out.push_str(&table(
        &[
            "collective",
            "variance stop",
            "slowdown@stop",
            "slowdown stop",
            "slow/var",
        ],
        &rows,
    ));
    out.push_str(
        "\n* criterion never fired within the budget; budget time shown.\n\
         paper shape: variance stops near the slowdown criterion (sometimes slightly\n\
         early with model quality ~1.04, sometimes ~1.007x late), netting a 1.19x\n\
         faster stop overall while avoiding the 6-11x test-set collection entirely.\n",
    );
    out
}
