//! Fig. 13 — parallel data collection across four simulated 64-node
//! allocations: Single Rack, Single Rack Pair, Two Rack Pairs, and
//! "Max Parallel" (one node per rack pair). Reports the speedup over
//! sequential collection and the average number of benchmarks run in
//! parallel, per collective.

use crate::{simulation_env, table};
use acclaim_collectives::Collective;
use acclaim_core::collector::{schedule_wave, CollectionStats};
use acclaim_core::{ActiveLearner, Candidate, LearnerConfig};
use acclaim_netsim::{Allocation, Topology};

/// Regenerate the figure; returns the report text.
pub fn run() -> String {
    let (db, space) = simulation_env();

    // A big virtual machine whose racks can express all four shapes.
    let topo = Topology::new(64, 128);
    let allocations: Vec<(&str, Allocation)> = vec![
        ("Single Rack", Allocation::single_rack(&topo, 64)),
        ("Single Rack Pair", Allocation::rack_pair(&topo, 64)),
        ("Two Rack Pairs", Allocation::two_pairs(&topo, 64)),
        ("Max Parallel", Allocation::max_parallel(&topo, 64)),
    ];

    let mut speedup_rows = Vec::new();
    let mut par_rows = Vec::new();
    for c in Collective::ALL {
        db.prefill(c, &space);
        // The benchmark list ACCLAiM would collect, in selection order.
        let run = ActiveLearner::new(LearnerConfig::acclaim_sequential().with_budget(120))
            .train(&db, c, &space, None);
        let list: Vec<(Candidate, f64)> = run
            .collected
            .iter()
            .map(|s| {
                (
                    Candidate {
                        point: s.point,
                        algorithm: s.algorithm,
                    },
                    db.sample(s.algorithm, s.point).wall_us,
                )
            })
            .collect();

        let mut srow = vec![c.name().to_string()];
        let mut prow = vec![c.name().to_string()];
        for (_, alloc) in &allocations {
            let mut remaining = list.clone();
            let mut stats = CollectionStats::default();
            while !remaining.is_empty() {
                let cands: Vec<Candidate> = remaining.iter().map(|&(c, _)| c).collect();
                let wave = schedule_wave(&topo, alloc, &cands);
                let take = wave.parallelism().max(1);
                let costs: Vec<f64> = remaining.drain(..take).map(|(_, w)| w).collect();
                stats.add_wave(&costs);
            }
            srow.push(format!("{:.2}x", stats.speedup()));
            prow.push(format!("{:.2}", stats.average_parallelism()));
        }
        speedup_rows.push(srow);
        par_rows.push(prow);
    }

    let headers = [
        "collective",
        "Single Rack",
        "Rack Pair",
        "Two Pairs",
        "Max Parallel",
    ];
    let mut out = String::from(
        "Fig. 13(a) — collection speedup over sequential, by allocation shape\n\n",
    );
    out.push_str(&table(&headers, &speedup_rows));
    out.push_str("\nFig. 13(b) — average benchmarks running in parallel\n\n");
    out.push_str(&table(&headers, &par_rows));
    out.push_str(
        "\npaper shape: 1x on a single rack (no parallelism is safe) rising to ~1.4x with\n\
         1-4 benchmarks in parallel as the allocation spreads over more rack pairs; the\n\
         greedy schedule can occasionally lose a little on Max Parallel (Sec. VI-D).\n",
    );
    out
}
