//! Fig. 14 — ACCLAiM's end-to-end training time on a Theta-flavored
//! production slice (up to 128 nodes, 16 PPN, 1 MB messages): full
//! pipeline with parallel collection and variance convergence. The
//! practicality claim: minutes, not the many hours the prior art needs.

use crate::{fmt_secs, table};
use acclaim_collectives::Collective;
use acclaim_core::{Acclaim, AcclaimConfig};
use acclaim_dataset::{BenchmarkDatabase, DatasetConfig, FeatureSpace};

/// The production training run backing Figs. 14 and 15: per-collective
/// wall time in µs plus collection statistics.
pub fn production_training() -> Vec<(Collective, f64, usize, f64, bool)> {
    let db = BenchmarkDatabase::new(DatasetConfig::production());
    let space = FeatureSpace::p2_production();
    let tuning = Acclaim::new(AcclaimConfig::new(space)).tune(&db, &Collective::ALL);
    tuning
        .reports
        .iter()
        .map(|(c, o)| {
            (
                *c,
                o.total_wall_us(),
                o.stats.points,
                o.stats.average_parallelism(),
                o.converged,
            )
        })
        .collect()
}

/// Regenerate the figure; returns the report text.
pub fn run() -> String {
    let results = production_training();
    let mut rows = Vec::new();
    let mut total = 0.0;
    for (c, wall, points, par, converged) in &results {
        total += wall;
        rows.push(vec![
            c.name().to_string(),
            fmt_secs(*wall),
            format!("{points}"),
            format!("{par:.2}"),
            if *converged { "yes" } else { "cap" }.to_string(),
        ]);
    }
    rows.push(vec![
        "total".to_string(),
        fmt_secs(total),
        String::new(),
        String::new(),
        String::new(),
    ]);

    let mut out = String::from(
        "Fig. 14 — ACCLAiM training time on a 128-node production machine\n\
         (16 PPN, messages to 1 MB; parallel collection + variance convergence)\n\n",
    );
    out.push_str(&table(
        &["collective", "training time", "points", "avg parallel", "converged"],
        &rows,
    ));
    out.push_str(
        "\npaper shape: training completes in minutes per collective on the production\n\
         machine — versus the ~24 hours estimated for the prior state of the art.\n",
    );
    out
}
