//! Fig. 14 — ACCLAiM's end-to-end training time on a Theta-flavored
//! production slice (up to 128 nodes, 16 PPN, 1 MB messages): full
//! pipeline with parallel collection and variance convergence. The
//! practicality claim: minutes, not the many hours the prior art needs.
//!
//! Training time is reported in two parts: (simulated) benchmark
//! collection time and (real) model-update time — the cost of refitting
//! the forest and rescanning candidate variances each iteration, which
//! the incremental refit path keeps negligible next to collection.

use crate::{fmt_secs, table};
use acclaim_collectives::Collective;
use acclaim_core::{Acclaim, AcclaimConfig};
use acclaim_dataset::{BenchmarkDatabase, DatasetConfig, FeatureSpace};

/// One collective's outcome in the production run backing Figs. 14/15.
pub struct ProductionRun {
    /// The tuned collective.
    pub collective: Collective,
    /// Total machine time: training + test collection (µs, simulated).
    pub wall_us: f64,
    /// Model-update wall time: forest refits + variance scans (µs,
    /// real clock).
    pub model_update_us: f64,
    /// Training points collected.
    pub points: usize,
    /// Average collection parallelism.
    pub parallelism: f64,
    /// Whether the variance criterion fired.
    pub converged: bool,
}

/// The production training run backing Figs. 14 and 15.
pub fn production_training() -> Vec<ProductionRun> {
    let db = BenchmarkDatabase::new(DatasetConfig::production());
    let space = FeatureSpace::p2_production();
    let tuning = Acclaim::new(AcclaimConfig::new(space)).tune(&db, &Collective::ALL);
    tuning
        .reports
        .iter()
        .map(|(c, o)| ProductionRun {
            collective: *c,
            wall_us: o.total_wall_us(),
            model_update_us: o.model_update_wall_us,
            points: o.stats.points,
            parallelism: o.stats.average_parallelism(),
            converged: o.converged,
        })
        .collect()
}

/// Regenerate the figure; returns the report text.
pub fn run() -> String {
    let results = production_training();
    let mut rows = Vec::new();
    let mut total = 0.0;
    let mut total_update = 0.0;
    for r in &results {
        total += r.wall_us;
        total_update += r.model_update_us;
        rows.push(vec![
            r.collective.name().to_string(),
            fmt_secs(r.wall_us),
            fmt_secs(r.model_update_us),
            format!("{}", r.points),
            format!("{:.2}", r.parallelism),
            if r.converged { "yes" } else { "cap" }.to_string(),
        ]);
    }
    rows.push(vec![
        "total".to_string(),
        fmt_secs(total),
        fmt_secs(total_update),
        String::new(),
        String::new(),
        String::new(),
    ]);

    let mut out = String::from(
        "Fig. 14 — ACCLAiM training time on a 128-node production machine\n\
         (16 PPN, messages to 1 MB; parallel collection + variance convergence)\n\n",
    );
    out.push_str(&table(
        &[
            "collective",
            "collection time",
            "model update",
            "points",
            "avg parallel",
            "converged",
        ],
        &rows,
    ));
    out.push_str(
        "\npaper shape: training completes in minutes per collective on the production\n\
         machine — versus the ~24 hours estimated for the prior state of the art.\n\
         The model-update column (incremental forest refit + cached variance scan)\n\
         stays far below the collection time, so learning never gates the machine.\n",
    );
    out
}
