//! Fig. 15 — the minimum application runtime needed to recoup
//! ACCLAiM's training time, as a function of the whole-application
//! speedup improved selections deliver. The paper's example: a 1.01x
//! speedup pays for training within 6.4-9.5 hours.

use crate::figs::fig14::production_training;
use crate::table;
use acclaim_dataset::traces::min_runtime_for_profit;

/// Regenerate the figure; returns the report text.
pub fn run() -> String {
    let results = production_training();
    let speedups = [1.005f64, 1.01, 1.02, 1.05, 1.10];

    let mut rows = Vec::new();
    for r in &results {
        let mut cells = vec![r.collective.name().to_string()];
        for &s in &speedups {
            cells.push(format!("{:.2} h", min_runtime_for_profit(r.wall_us, s) / 3.6e9));
        }
        rows.push(cells);
    }
    let total: f64 = results.iter().map(|r| r.wall_us).sum();
    let mut cells = vec!["all four".to_string()];
    for &s in &speedups {
        cells.push(format!("{:.2} h", min_runtime_for_profit(total, s) / 3.6e9));
    }
    rows.push(cells);

    let mut out = String::from(
        "Fig. 15 — minimum application runtime for a net speedup, by app-level speedup\n\
         (training times from the Fig. 14 production run)\n\n",
    );
    out.push_str(&table(
        &["collectives tuned", "1.005x", "1.01x", "1.02x", "1.05x", "1.10x"],
        &rows,
    ));
    out.push_str(
        "\npaper shape: applications gaining even 1.01x from better selections recoup the\n\
         training cost within a few hours — well inside common production job lengths.\n",
    );
    out
}
