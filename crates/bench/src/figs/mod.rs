//! One module per reproduced figure; each `run()` returns the report
//! text the matching binary prints and saves under `results/`.

pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;

/// A figure-regeneration entry: result-file name and generator.
pub type FigureEntry = (&'static str, fn() -> String);

/// `(result-file name, regeneration function)` for every figure.
pub const ALL: [FigureEntry; 11] = [
    ("fig03_hunold_vs_fact", fig03::run),
    ("fig04_nonp2_traces", fig04::run),
    ("fig05_fact_nonp2", fig05::run),
    ("fig06_testset_cost", fig06::run),
    ("fig07_variance_proxy", fig07::run),
    ("fig10_point_selection", fig10::run),
    ("fig11_nonp2_split", fig11::run),
    ("fig12_convergence", fig12::run),
    ("fig13_parallel_collection", fig13::run),
    ("fig14_production_training", fig14::run),
    ("fig15_min_runtime", fig15::run),
];
