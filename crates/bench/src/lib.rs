//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every `fig*` binary in `src/bin/` reproduces one figure of the paper
//! and prints the same series the paper plots; results are also written
//! to `results/<name>.txt` at the workspace root.

pub mod figs;

use acclaim_core::TrainingOutcome;
use acclaim_dataset::{BenchmarkDatabase, DatasetConfig, FeatureSpace};
use std::path::PathBuf;

/// The workspace-level `results/` directory.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Print `content` and also persist it under `results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let path = results_dir().join(format!("{name}.txt"));
    std::fs::write(&path, content).expect("write result file");
    eprintln!("[saved {}]", path.display());
}

/// The simulated-comparison environment of Sec. II-A: a 64-node
/// Bebop-like cluster and its P2 grid.
pub fn simulation_env() -> (BenchmarkDatabase, FeatureSpace) {
    (
        BenchmarkDatabase::new(DatasetConfig::simulation()),
        FeatureSpace::p2_simulation(),
    )
}

/// A smaller simulation grid (32 nodes, 16 ppn, 512 KiB) for the
/// heavier sweep figures, keeping regeneration under a few minutes.
pub fn reduced_simulation_env() -> (BenchmarkDatabase, FeatureSpace) {
    let db = BenchmarkDatabase::new(DatasetConfig::simulation());
    let space = FeatureSpace::new(
        vec![2, 4, 8, 16, 32],
        vec![1, 2, 4, 8, 16],
        (3..=19).map(|e| 1u64 << e).collect(),
    );
    (db, space)
}

/// Format seconds human-readably.
pub fn fmt_secs(us: f64) -> String {
    let s = us / 1e6;
    if s >= 120.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{s:.1} s")
    }
}

/// Render a simple aligned table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Extract the (wall time, oracle slowdown) series from a training log.
pub fn slowdown_series(outcome: &TrainingOutcome) -> Vec<(f64, f64)> {
    outcome
        .log
        .iter()
        .filter_map(|r| r.oracle_slowdown.map(|s| (r.wall_us, s)))
        .collect()
}
