//! Minimal flag parser: `--key value` pairs and boolean `--flag`s.
//!
//! Kept dependency-free on purpose (the workspace's external crates are
//! limited to what DESIGN.md justifies); the option surface is small
//! enough that a hand-rolled parser stays simpler than a framework.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus its options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// First positional argument.
    pub command: Option<String>,
    /// Second positional argument — the action of commands that take
    /// one (`store ls` / `store gc` / `store export` / `store import`).
    pub action: Option<String>,
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse raw arguments (without the program name). `--key value`
    /// sets an option; a `--key` followed by another `--…` or nothing
    /// is a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty option name '--'".into());
                }
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        if out.values.insert(key.to_string(), value).is_some() {
                            return Err(format!("option --{key} given twice"));
                        }
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else if out.action.is_none() {
                out.action = Some(tok);
            } else {
                return Err(format!("unexpected positional argument '{tok}'"));
            }
        }
        Ok(out)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required string option.
    #[allow(dead_code)] // part of the parser's API surface; used in tests
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Parsed numeric option.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("option --{key}: cannot parse '{v}'")),
        }
    }

    /// Parsed numeric option with a default.
    pub fn num_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        Ok(self.get_num(key)?.unwrap_or(default))
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Comma-separated list option.
    pub fn list(&self, key: &str) -> Option<Vec<String>> {
        self.get(key)
            .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn command_options_and_flags() {
        let a = parse(&["tune", "--nodes", "32", "--sequential", "--out", "t.json"]);
        assert_eq!(a.command.as_deref(), Some("tune"));
        assert_eq!(a.get("nodes"), Some("32"));
        assert_eq!(a.get("out"), Some("t.json"));
        assert!(a.flag("sequential"));
        assert!(!a.flag("parallel"));
    }

    #[test]
    fn numeric_parsing_and_defaults() {
        let a = parse(&["simulate", "--msg", "65536"]);
        assert_eq!(a.num_or::<u64>("msg", 0).unwrap(), 65_536);
        assert_eq!(a.num_or::<u32>("nodes", 16).unwrap(), 16);
        assert!(a.num_or::<u64>("msg", 0).is_ok());
        let bad = parse(&["simulate", "--msg", "lots"]);
        assert!(bad.num_or::<u64>("msg", 0).is_err());
    }

    #[test]
    fn lists_split_on_commas() {
        let a = parse(&["tune", "--collectives", "bcast, reduce,allgather"]);
        assert_eq!(
            a.list("collectives").unwrap(),
            vec!["bcast", "reduce", "allgather"]
        );
    }

    #[test]
    fn duplicate_option_rejected() {
        let e = Args::parse(["x", "--a", "1", "--a", "2"].map(String::from)).unwrap_err();
        assert!(e.contains("twice"));
    }

    #[test]
    fn second_positional_is_the_action() {
        let a = parse(&["store", "ls", "--store", "cache"]);
        assert_eq!(a.command.as_deref(), Some("store"));
        assert_eq!(a.action.as_deref(), Some("ls"));
        assert_eq!(a.get("store"), Some("cache"));
    }

    #[test]
    fn unexpected_positional_rejected() {
        let e = Args::parse(["x", "y", "z"].map(String::from)).unwrap_err();
        assert!(e.contains("unexpected"));
    }

    #[test]
    fn require_reports_the_key() {
        let a = parse(&["tune"]);
        assert!(a.require("out").unwrap_err().contains("--out"));
    }

    #[test]
    fn trailing_flag_is_boolean() {
        let a = parse(&["tune", "--sequential"]);
        assert!(a.flag("sequential"));
    }
}
