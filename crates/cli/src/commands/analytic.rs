//! `acclaim analytic` — inspect the analytical cost-model catalog:
//! per-algorithm predictions, the derived Hockney/LogGP parameters,
//! and the guideline verdicts that would prune candidates.

use crate::args::Args;
use crate::context::cluster_from;
use acclaim_analytic::{CostModel, GuidelineSet};
use acclaim_collectives::Collective;
use acclaim_dataset::Point;
use acclaim_obs::Diag;
use std::fmt::Write;

/// Run the subcommand; returns the catalog printed to stdout.
pub fn run(args: &Args, diag: &Diag) -> Result<String, String> {
    match args.action.as_deref() {
        Some("predict") | None => predict(args, diag),
        Some(other) => Err(format!("unknown analytic action '{other}' (predict)")),
    }
}

/// `acclaim analytic predict` — the model catalog's verdicts at one
/// (nodes, ppn, msg) signature.
fn predict(args: &Args, diag: &Diag) -> Result<String, String> {
    let cluster = cluster_from(args)?;
    let ppn: u32 = args.num_or("ppn", 8)?;
    let msg: u64 = args.num_or("msg", 65_536)?;
    let margin: f64 = args.num_or("prune-margin", 3.0)?;
    if margin < 1.0 {
        return Err("option --prune-margin: must be >= 1".into());
    }
    let collectives: Vec<Collective> = match args.get("collective") {
        Some(name) => vec![Collective::parse(name)
            .ok_or_else(|| format!("unknown --collective '{name}'"))?],
        None => Collective::ALL.to_vec(),
    };
    let nodes = cluster.num_nodes();
    let point = Point::new(nodes, ppn, msg);

    let model = CostModel::new(cluster);
    let set = GuidelineSet::standard(margin);
    let params = model.params_at(point);
    let mut out = format!(
        "analytical model at {nodes} nodes x {ppn} ppn, {msg} B\n\
         (alpha {:.3} µs/msg, beta {:.6} µs/B, gamma {:.6} µs/B, prune margin {margin}x)\n",
        params.alpha_us, params.beta_us_per_byte, params.gamma_us_per_byte
    );
    for &c in &collectives {
        let mut rows = model.predictions(c, point);
        rows.sort_by(|x, y| x.1.total_cmp(&y.1));
        let violations = set.violations_at(&model, c, point);
        let _ = writeln!(out, "{}:", c.name());
        for (i, (a, t)) in rows.iter().enumerate() {
            let verdicts: Vec<String> = violations
                .iter()
                .filter(|v| v.candidate.algorithm == *a)
                .map(|v| format!("{} {:.1}x", v.guideline, v.ratio))
                .collect();
            let _ = writeln!(
                out,
                "  {:<40} {:>12.1} µs{}{}",
                a.name(),
                t,
                if i == 0 { "   <- analytic best" } else { "" },
                if verdicts.is_empty() {
                    String::new()
                } else {
                    format!("   [pruned: {}]", verdicts.join(", "))
                }
            );
        }
    }
    diag.progress(&format!(
        "predicted {} collective(s) analytically",
        collectives.len()
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn predict_prints_the_catalog_for_every_collective() {
        let args = parse(&["analytic", "predict", "--nodes", "8", "--ppn", "4"]);
        let out = run(&args, &Diag::new(true)).unwrap();
        for c in Collective::ALL {
            assert!(out.contains(&format!("{}:", c.name())), "{out}");
        }
        assert!(out.contains("<- analytic best"), "{out}");
        assert!(out.contains("alpha") && out.contains("beta") && out.contains("gamma"));
    }

    #[test]
    fn predict_narrows_to_one_collective_and_flags_pruning() {
        let args = parse(&[
            "analytic",
            "predict",
            "--nodes",
            "16",
            "--ppn",
            "8",
            "--msg",
            "1048576",
            "--collective",
            "allreduce",
            "--prune-margin",
            "1.5",
        ]);
        let out = run(&args, &Diag::new(true)).unwrap();
        assert!(out.contains("allreduce:"));
        assert!(!out.contains("bcast:"), "{out}");
        // At a tight margin the large-message loser violates dominance.
        assert!(out.contains("[pruned:"), "{out}");
    }

    #[test]
    fn bad_action_and_margin_are_rejected() {
        let args = parse(&["analytic", "frobnicate"]);
        assert!(run(&args, &Diag::new(true)).unwrap_err().contains("predict"));
        let args = parse(&["analytic", "predict", "--prune-margin", "0.5"]);
        assert!(run(&args, &Diag::new(true))
            .unwrap_err()
            .contains("--prune-margin"));
    }
}
