//! One module per subcommand; each exposes `run(&Args) -> Result<String, String>`.

pub mod analytic;
pub mod selections;
pub mod serve;
pub mod simulate;
pub mod store;
pub mod traces;
pub mod tune;
