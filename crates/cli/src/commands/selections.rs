//! `acclaim selections` — show what a tuning file (or the MPICH
//! default heuristic) selects across message sizes at one job shape.

use crate::args::Args;
use acclaim_collectives::{mpich_default, Collective};
use acclaim_core::{TunedSelector, TuningFile};
use acclaim_dataset::Point;
use acclaim_obs::Diag;
use std::fmt::Write;

/// Run the subcommand; returns the table printed to stdout.
pub fn run(args: &Args, diag: &Diag) -> Result<String, String> {
    let nodes: u32 = args.num_or("nodes", 16)?;
    let ppn: u32 = args.num_or("ppn", 8)?;
    let collective = Collective::parse(args.get_or("collective", "bcast"))
        .ok_or_else(|| "unknown --collective".to_string())?;

    let selector = match args.get("tuning") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let value: serde_json::Value =
                serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?;
            diag.progress(&format!("loaded tuning file {path}"));
            TunedSelector::new(TuningFile::from_mpich_json(&value)?)
        }
        None => TunedSelector::default(),
    };

    let mut out = format!(
        "selections for {} at {nodes} nodes x {ppn} ppn ({}):\n",
        collective.name(),
        if args.get("tuning").is_some() {
            "tuned"
        } else {
            "MPICH defaults"
        }
    );
    let mut msg = args.num_or("min-msg", 8u64)?;
    let max: u64 = args.num_or("max-msg", 1 << 20)?;
    while msg <= max {
        let p = Point::new(nodes, ppn, msg);
        let tuned = selector.select(collective, p);
        let default = mpich_default(collective, p.ranks(), msg);
        let marker = if tuned == default { " " } else { "*" };
        let _ = writeln!(
            out,
            "  {msg:>8} B  {}{marker}",
            tuned.name(),
        );
        msg *= 2;
    }
    out.push_str("  (* differs from the MPICH default)\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    #[test]
    fn defaults_table_renders_without_a_file() {
        let args = Args::parse(
            ["selections", "--collective", "reduce", "--nodes", "32"].map(String::from),
        )
        .unwrap();
        let out = run(&args, &Diag::new(true)).unwrap();
        assert!(out.contains("reduce"));
        assert!(out.contains("binomial"));
        assert!(out.contains("MPICH defaults"));
    }

    #[test]
    fn unknown_collective_is_an_error() {
        let args =
            Args::parse(["selections", "--collective", "scan"].map(String::from)).unwrap();
        assert!(run(&args, &Diag::new(true)).is_err());
    }
}
