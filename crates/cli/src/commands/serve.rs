//! `acclaim serve` / `acclaim client` — tuning-as-a-service over a
//! local socket.
//!
//! `serve` runs the daemon: a [`acclaim_serve::TuneService`] listening
//! on a Unix socket, speaking the line-delimited JSON protocol of
//! [`acclaim_serve::protocol`]. One request per line, one response per
//! line; `Tune` blocks its connection until the job finishes
//! (identical concurrent requests coalesce server-side).
//!
//! `client` is the matching client. An op (positional, or `--op`) of
//! `tune|query|observe|drift|stats|metrics|trace|watch|shutdown` sends
//! requests: `metrics` scrapes the live metrics (Prometheus text, or
//! the JSON exposition with `--json`), `trace` dumps recent
//! flight-recorder records, `observe` feeds back observed costs at
//! `--factor ×` the served prediction (exercising the drift policy),
//! `drift` reports the detector's per-signature state, and `watch`
//! polls a refreshing one-line summary. `--load N`
//! drives N deterministic tune sessions (each with follow-up queries
//! and drift observations) over `--clients` concurrent connections
//! using the seeded request pool from [`acclaim_serve::loadgen`] — the
//! first summary line it prints (including the run fingerprint) depends
//! only on `--seed`, never on scheduling, so CI can assert on it
//! verbatim; a second line reports client-observed latency quantiles.

use crate::args::Args;
use crate::trace::TraceOutputs;
use acclaim_obs::Diag;

#[cfg(unix)]
pub use unix::{client, serve};

#[cfg(not(unix))]
pub fn serve(_args: &Args, _diag: &Diag) -> Result<String, String> {
    Err("`acclaim serve` requires Unix domain sockets (unsupported on this platform)".into())
}

#[cfg(not(unix))]
pub fn client(_args: &Args, _diag: &Diag) -> Result<String, String> {
    Err("`acclaim client` requires Unix domain sockets (unsupported on this platform)".into())
}

/// Shared option parsing: the socket path.
fn socket_path(args: &Args) -> String {
    args.get_or("socket", "acclaim-serve.sock").to_string()
}

#[cfg(unix)]
mod unix {
    use super::*;
    use acclaim_dataset::BenchmarkDatabase;
    use acclaim_obs::{FlightRecorder, HistogramSnapshot, Obs};
    use acclaim_serve::protocol::{
        decode_request, decode_response, encode_request, encode_response, handle_request,
        WireRequest, WireResponse,
    };
    use acclaim_serve::{
        loadgen, DriftConfig, Priority, QueryRequest, ServeConfig, TuneService,
    };
    use acclaim_store::EntryFormat;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::collections::BTreeSet;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    fn parse_priority(args: &Args) -> Result<Priority, String> {
        match args.get_or("priority", "normal") {
            "low" => Ok(Priority::Low),
            "normal" => Ok(Priority::Normal),
            "high" => Ok(Priority::High),
            other => Err(format!("unknown --priority '{other}' (low | normal | high)")),
        }
    }

    /// `acclaim serve --store DIR [--socket PATH] [--workers N]
    /// [--slots N] [--shards N] [--format json|binary] [--flight N]
    /// [--slow-log FACTOR] [--cache-cap N] [--drift-band B]
    /// [--drift-min-obs N] [--drift-cooldown N] [--drift-deweight W]
    /// [--drift-max-signatures N]`
    ///
    /// `--drift-band` > 1 arms the drift policy engine: signatures
    /// whose mean observed/predicted ratio leaves `[1/B, B]` get a
    /// Low-priority warm re-tune queued automatically. The default
    /// band (0) keeps the daemon measurement-only.
    ///
    /// Runs until a client sends `Shutdown`; the exit report prints the
    /// `serve.*`/`drift.*` counters and gauges plus phase-latency
    /// quantiles.
    pub fn serve(args: &Args, diag: &Diag) -> Result<String, String> {
        let dir = args
            .get("store")
            .ok_or("missing required option --store DIR")?
            .to_string();
        let socket = socket_path(args);
        let (obs, outputs) = TraceOutputs::from_args(args)?;
        // The service's counters are the daemon's exit report either way.
        let obs = if obs.is_enabled() {
            obs
        } else {
            acclaim_obs::Obs::enabled()
        };
        let config = ServeConfig {
            workers: args.num_or("workers", 2usize)?,
            slots: args.num_or("slots", 4usize)?,
            shards: args.num_or("shards", 16usize)?,
            format: match args.get_or("format", "binary") {
                "json" => EntryFormat::Json,
                "binary" => EntryFormat::Binary,
                other => return Err(format!("unknown --format '{other}' (json | binary)")),
            },
            flight_capacity: args.num_or("flight", 256usize)?,
            slow_log_factor: args.get_num::<f64>("slow-log")?,
            cache_capacity: args.num_or("cache-cap", 0usize)?,
            drift: {
                let defaults = DriftConfig::default();
                DriftConfig {
                    band: args.num_or("drift-band", defaults.band)?,
                    min_obs: args.num_or("drift-min-obs", defaults.min_obs)?,
                    cooldown_obs: args.num_or("drift-cooldown", defaults.cooldown_obs)?,
                    deweight: args.num_or("drift-deweight", defaults.deweight)?,
                    max_signatures: args
                        .num_or("drift-max-signatures", defaults.max_signatures)?,
                }
            },
            diag: *diag,
            ..ServeConfig::default()
        };

        // A leftover socket file from a dead daemon is reclaimable; a
        // live one is not.
        if std::path::Path::new(&socket).exists() {
            if UnixStream::connect(&socket).is_ok() {
                return Err(format!("socket {socket} is in use by a running daemon"));
            }
            std::fs::remove_file(&socket).map_err(|e| format!("removing stale {socket}: {e}"))?;
        }
        let listener =
            UnixListener::bind(&socket).map_err(|e| format!("binding {socket}: {e}"))?;
        let service = Arc::new(
            TuneService::open(&dir, config, obs.clone())
                .map_err(|e| format!("opening store {dir}: {e}"))?,
        );
        diag.progress(&format!(
            "serving store {dir} on {socket} ({} cached signatures)",
            service.shared().len()
        ));

        let stop = Arc::new(AtomicBool::new(false));
        let conns: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
        for incoming in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = incoming else { continue };
            let service = service.clone();
            let stop = stop.clone();
            let socket = socket.clone();
            let handle = std::thread::spawn(move || {
                handle_connection(stream, &service, &stop, &socket);
            });
            conns.lock().unwrap().push(handle);
        }
        for handle in conns.into_inner().unwrap() {
            let _ = handle.join();
        }
        service.shutdown();
        std::fs::remove_file(&socket).ok();

        let snap = obs.snapshot();
        let telemetry = |name: &str| name.starts_with("serve.") || name.starts_with("drift.");
        let counters: Vec<String> = snap
            .metrics
            .counters
            .iter()
            .filter(|(name, _)| telemetry(name))
            .map(|(name, value)| format!("{}={value}", name.trim_start_matches("serve.")))
            .collect();
        let mut report = format!(
            "serve counters (obs): {}\n",
            if counters.is_empty() {
                "none recorded".to_string()
            } else {
                counters.join(" ")
            }
        );
        let gauges: Vec<String> = snap
            .metrics
            .gauges
            .iter()
            .filter(|(name, _)| telemetry(name))
            .map(|(name, value)| format!("{name}={value}"))
            .collect();
        if !gauges.is_empty() {
            report.push_str(&format!("serve gauges (obs): {}\n", gauges.join(" ")));
        }
        for (name, hist) in snap
            .metrics
            .histograms
            .iter()
            .filter(|(name, hist)| telemetry(name) && hist.count > 0)
        {
            report.push_str(&format!(
                "serve histogram {name}: count={} p50={:.0}us p95={:.0}us p99={:.0}us\n",
                hist.count,
                hist.quantile(0.5),
                hist.quantile(0.95),
                hist.quantile(0.99),
            ));
        }
        for line in outputs.write(&obs)? {
            report.push_str(&line);
            report.push('\n');
        }
        Ok(report)
    }

    fn handle_connection(
        stream: UnixStream,
        service: &TuneService,
        stop: &AtomicBool,
        socket: &str,
    ) {
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let reader = BufReader::new(read_half);
        let mut writer = stream;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let (response, shutdown) = match decode_request(&line) {
                Ok(request) => handle_request(service, request),
                Err(message) => (WireResponse::Error { message }, false),
            };
            let mut payload = encode_response(&response);
            payload.push('\n');
            if writer.write_all(payload.as_bytes()).is_err() {
                break;
            }
            let _ = writer.flush();
            if shutdown {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop so the daemon can exit.
                let _ = UnixStream::connect(socket);
                break;
            }
        }
    }

    /// One connected client: send a line, read a line.
    struct Connection {
        reader: BufReader<UnixStream>,
        writer: UnixStream,
    }

    impl Connection {
        fn open(socket: &str, wait_secs: u64) -> Result<Connection, String> {
            // --wait-server: the daemon may still be binding.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(wait_secs);
            let stream = loop {
                match UnixStream::connect(socket) {
                    Ok(s) => break s,
                    Err(e) => {
                        if std::time::Instant::now() >= deadline {
                            return Err(format!("connecting to {socket}: {e}"));
                        }
                        std::thread::sleep(std::time::Duration::from_millis(50));
                    }
                }
            };
            let reader = BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| format!("cloning socket: {e}"))?,
            );
            Ok(Connection {
                reader,
                writer: stream,
            })
        }

        fn round_trip(&mut self, request: &WireRequest) -> Result<WireResponse, String> {
            let mut line = encode_request(request);
            line.push('\n');
            self.writer
                .write_all(line.as_bytes())
                .map_err(|e| format!("sending request: {e}"))?;
            self.writer.flush().map_err(|e| format!("flushing: {e}"))?;
            let mut reply = String::new();
            self.reader
                .read_line(&mut reply)
                .map_err(|e| format!("reading response: {e}"))?;
            if reply.is_empty() {
                return Err("server closed the connection".into());
            }
            decode_response(&reply)
        }
    }

    /// `acclaim client [--socket PATH] [--wait-server SECS]
    /// (<op> | --op OP | --load N)` where OP is
    /// `tune|query|observe|drift|stats|metrics|trace|watch|shutdown`,
    /// plus the request shape options (`--pool`, `--pool-index`,
    /// `--seed`, `--priority`, `--clients`, `--queries`, `--nodes`,
    /// `--ppn`, `--msg`, `--last`, `--json`, `--refresh`,
    /// `--interval-ms`, `--count`, `--factor`).
    pub fn client(args: &Args, diag: &Diag) -> Result<String, String> {
        let socket = socket_path(args);
        let wait = args.num_or("wait-server", 0u64)?;
        let seed = args.num_or("seed", 0u64)?;
        let pool_size = args.num_or("pool", 16usize)?.max(1);

        if let Some(sessions) = args.get_num::<usize>("load")? {
            return load(args, diag, &socket, wait, seed, pool_size, sessions);
        }

        let mut conn = Connection::open(&socket, wait)?;
        // `client metrics` and `client --op metrics` are equivalent;
        // the positional form reads better for the telemetry verbs.
        let op = match args.action.as_deref() {
            Some(action) => action,
            None => args.get_or("op", "stats"),
        };
        if op == "watch" {
            return watch(args, diag, &mut conn);
        }
        if op == "observe" {
            return observe(args, &mut conn, seed, pool_size);
        }
        let request = match op {
            "tune" => {
                let index = args.num_or("pool-index", 0usize)?;
                let pool = loadgen::request_pool(pool_size.max(index + 1), seed);
                let mut request = pool[index].clone();
                request.priority = parse_priority(args)?;
                WireRequest::Tune { request }
            }
            "query" => {
                let index = args.num_or("pool-index", 0usize)?;
                let pool = loadgen::request_pool(pool_size.max(index + 1), seed);
                let base = &pool[index];
                WireRequest::Query {
                    request: QueryRequest {
                        dataset: base.dataset.clone(),
                        config: base.config.clone(),
                        collective: base.collectives[0],
                        point: acclaim_dataset::Point::new(
                            args.num_or("nodes", 2u32)?,
                            args.num_or("ppn", 2u32)?,
                            args.num_or("msg", 1024u64)?,
                        ),
                    },
                }
            }
            "stats" => WireRequest::Stats,
            "drift" => WireRequest::DriftStatus,
            "metrics" => WireRequest::Metrics,
            "trace" => WireRequest::Trace {
                last: args.num_or("last", 32u64)?,
            },
            "shutdown" => WireRequest::Shutdown,
            other => {
                return Err(format!(
                    "unknown op '{other}' (tune | query | observe | drift | stats | metrics | \
                     trace | watch | shutdown)"
                ))
            }
        };
        let response = conn.round_trip(&request)?;
        render_response(&response, args.flag("json"))
    }

    /// `client watch`: poll stats + metrics every `--interval-ms`,
    /// emitting one summary line per refresh through `diag` (so it
    /// streams) and returning the transcript. `--refresh N` bounds the
    /// ticks, keeping the command scriptable.
    fn watch(args: &Args, diag: &Diag, conn: &mut Connection) -> Result<String, String> {
        let refresh = args.num_or("refresh", 5usize)?.max(1);
        let interval_ms = args.num_or("interval-ms", 1000u64)?;
        let mut out = String::new();
        for tick in 0..refresh {
            let stats = match conn.round_trip(&WireRequest::Stats)? {
                WireResponse::Stats { stats } => stats,
                other => return Err(format!("unexpected reply to Stats: {other:?}")),
            };
            let json = match conn.round_trip(&WireRequest::Metrics)? {
                WireResponse::Metrics { json, .. } => json,
                other => return Err(format!("unexpected reply to Metrics: {other:?}")),
            };
            let parsed: serde_json::Value = serde_json::from_str(&json)
                .map_err(|e| format!("daemon sent unparseable metrics JSON: {e}"))?;
            let hist_p50 = |name: &str| {
                parsed
                    .get("histograms")
                    .and_then(|h| h.get(name))
                    .and_then(|h| h.get("p50"))
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0)
            };
            let gauge = |name: &str| {
                parsed
                    .get("gauges")
                    .and_then(|g| g.get(name))
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0)
            };
            let line = format!(
                "watch[{tick}] queue={} active={} slots_free={} entries={} models={} \
                 requests={} trained={} cached={} queries={} e2e_p50={:.0}us query_p50={:.0}us \
                 drift_obs={:.0}",
                stats.queue_depth,
                gauge("serve.active_jobs"),
                stats.slots_free,
                stats.entries,
                stats.cached_models,
                stats.tune_requests,
                stats.trained,
                stats.cache_served,
                stats.queries,
                hist_p50("serve.phase.total_us"),
                hist_p50("serve.query_latency_us"),
                parsed
                    .get("counters")
                    .and_then(|c| c.get("drift.observations"))
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0),
            );
            diag.progress(&line);
            out.push_str(&line);
            out.push('\n');
            if tick + 1 < refresh {
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            }
        }
        Ok(out)
    }

    /// `client observe`: query the daemon for one point, then feed back
    /// `--count` observed costs at `--factor ×` the served prediction —
    /// the scriptable way to exercise the drift policy engine (a factor
    /// outside the daemon's `--drift-band` drives the signature toward
    /// a warm re-tune).
    fn observe(
        args: &Args,
        conn: &mut Connection,
        seed: u64,
        pool_size: usize,
    ) -> Result<String, String> {
        let index = args.num_or("pool-index", 0usize)?;
        let pool = loadgen::request_pool(pool_size.max(index + 1), seed);
        let base = &pool[index];
        let query = QueryRequest {
            dataset: base.dataset.clone(),
            config: base.config.clone(),
            collective: base.collectives[0],
            point: acclaim_dataset::Point::new(
                args.num_or("nodes", 2u32)?,
                args.num_or("ppn", 2u32)?,
                args.num_or("msg", 1024u64)?,
            ),
        };
        let reply = conn.round_trip(&WireRequest::Query {
            request: query.clone(),
        })?;
        let WireResponse::Selected { response } = reply else {
            return Err(format!("unexpected reply to Query: {reply:?}"));
        };
        let Some(predicted) = response.predicted_us else {
            return Err(format!(
                "selection '{}' came from {:?} without a prediction; tune the signature first",
                response.algorithm, response.source
            ));
        };
        let count = args.num_or("count", 1usize)?;
        let factor = args.num_or("factor", 1.0f64)?;
        let mut matched = 0usize;
        let mut last_ratio = None;
        for _ in 0..count {
            match conn.round_trip(&WireRequest::Observe {
                request: query.clone(),
                algorithm: response.algorithm.clone(),
                observed_us: predicted * factor,
            })? {
                WireResponse::Drift { sample } => {
                    matched += usize::from(sample.matched);
                    last_ratio = sample.ratio.or(last_ratio);
                }
                other => return Err(format!("unexpected reply to Observe: {other:?}")),
            }
        }
        Ok(format!(
            "observe: algorithm={} predicted={predicted:.2}us factor={factor} count={count} \
             matched={matched}{}\n",
            response.algorithm,
            last_ratio
                .map(|r| format!(" ratio={r:.3}"))
                .unwrap_or_default(),
        ))
    }

    fn render_response(response: &WireResponse, json: bool) -> Result<String, String> {
        match response {
            WireResponse::Tuned {
                job,
                cached,
                converged,
                iterations,
                fresh_points,
                keys,
            } => Ok(format!(
                "tuned: job {job} {} converged={converged} iterations={iterations} \
                 fresh_points={fresh_points} keys=[{}]\n",
                if *cached { "(cached)" } else { "(trained)" },
                keys.join(","),
            )),
            WireResponse::Selected { response } => Ok(format!(
                "selected: {} (source {:?}{})\n",
                response.algorithm,
                response.source,
                response
                    .predicted_us
                    .map(|p| format!(", predicted {p:.2} us"))
                    .unwrap_or_default(),
            )),
            WireResponse::Cancelled { job, effective } => {
                Ok(format!("cancelled: job {job} effective={effective}\n"))
            }
            WireResponse::StatusIs { job, state } => Ok(format!("status: job {job} {state}\n")),
            WireResponse::Stats { stats } => Ok(format!(
                "stats: entries={} cached_models={} queue_depth={} slots_free={} \
                 requests={} completed={} trained={} cache_served={} coalesced={} \
                 attached={} retuned={} drift_triggered={} cache_evicted={} \
                 cancelled={} failed={} queries={} defaults={} p50_query_us={:.1}\n",
                stats.entries,
                stats.cached_models,
                stats.queue_depth,
                stats.slots_free,
                stats.tune_requests,
                stats.completed,
                stats.trained,
                stats.cache_served,
                stats.coalesced,
                stats.attached,
                stats.retuned,
                stats.drift_triggered,
                stats.cache_evicted,
                stats.cancelled,
                stats.failed,
                stats.queries,
                stats.query_defaults,
                stats.query_latency_p50_us,
            )),
            WireResponse::Metrics { prometheus, json: payload } => {
                if json {
                    Ok(format!("{payload}\n"))
                } else {
                    let mut out = prometheus.clone();
                    if !out.ends_with('\n') {
                        out.push('\n');
                    }
                    Ok(out)
                }
            }
            WireResponse::Flight { records } => {
                if json {
                    Ok(FlightRecorder::to_jsonl(records))
                } else {
                    let mut out = format!("flight: {} records\n", records.len());
                    for r in records {
                        out.push_str(&format!(
                            "  id={} class={} outcome={} riders={} slow={} total={:.0}us \
                             (queue={:.0} probe={:.0} collect={:.0} refit={:.0} \
                             write_back={:.0})\n",
                            r.id,
                            r.class,
                            r.outcome,
                            r.riders,
                            r.slow,
                            r.phases.total_us,
                            r.phases.queue_wait_us,
                            r.phases.probe_us,
                            r.phases.collect_us,
                            r.phases.refit_us,
                            r.phases.write_back_us,
                        ));
                    }
                    Ok(out)
                }
            }
            WireResponse::DriftReport { report } => {
                if json {
                    let mut out = serde_json::to_string(report)
                        .map_err(|e| format!("serializing drift report: {e}"))?;
                    out.push('\n');
                    return Ok(out);
                }
                let mut out = format!(
                    "drift: band={} enabled={} min_obs={} cooldown={} tracked={} triggered={} \
                     completed={} suppressed={} evicted={}\n",
                    report.band,
                    report.enabled,
                    report.min_obs,
                    report.cooldown_obs,
                    report.tracked,
                    report.triggered,
                    report.completed,
                    report.suppressed,
                    report.evicted,
                );
                for s in &report.signatures {
                    out.push_str(&format!(
                        "  {} obs={} window={} mean={:.3} last={:.3} armed={} in_flight={} \
                         cooldown_left={} retunes={}\n",
                        s.key,
                        s.observations,
                        s.window,
                        s.mean,
                        s.last_ratio,
                        s.armed,
                        s.in_flight,
                        s.cooldown_left,
                        s.retunes,
                    ));
                }
                Ok(out)
            }
            WireResponse::Drift { sample } => Ok(format!(
                "drift: matched={}{}{}\n",
                sample.matched,
                sample
                    .predicted_us
                    .map(|p| format!(" predicted={p:.2}us"))
                    .unwrap_or_default(),
                sample
                    .ratio
                    .map(|r| format!(" ratio={r:.3}"))
                    .unwrap_or_default(),
            )),
            WireResponse::Bye => Ok("server shutting down\n".to_string()),
            WireResponse::Error { message } => Err(format!("server error: {message}")),
        }
    }

    /// Deterministic over-the-wire load run: the socket twin of
    /// [`loadgen::run`]. Sessions are distributed round-robin over
    /// `--clients` connections; the printed summary (sessions, ok,
    /// distinct keys, fingerprint) depends only on the seed.
    fn load(
        args: &Args,
        diag: &Diag,
        socket: &str,
        wait: u64,
        seed: u64,
        pool_size: usize,
        sessions: usize,
    ) -> Result<String, String> {
        let clients = args.num_or("clients", 8usize)?.max(1);
        let queries_per_session = args.num_or("queries", 1usize)?;
        let pool = loadgen::request_pool(pool_size, seed);
        diag.progress(&format!(
            "driving {sessions} sessions over {clients} connections (pool {pool_size}, seed {seed})"
        ));
        // Client-observed latency aggregates live in a recorder local
        // to this run; the daemon's own metrics are scraped separately.
        let recorder = Obs::enabled();
        let tune_latency = recorder.histogram("load.tune_latency_us");
        let query_latency = recorder.histogram("load.query_latency_us");

        struct SessionResult {
            session: usize,
            pool_index: usize,
            ok: bool,
            cached: bool,
            keys: Vec<String>,
            digest: u64,
        }

        let results: Vec<(Vec<SessionResult>, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|client| {
                    let pool = &pool;
                    let tune_latency = tune_latency.clone();
                    let query_latency = query_latency.clone();
                    scope.spawn(move || -> Result<(Vec<SessionResult>, usize), String> {
                        let mut conn = Connection::open(socket, wait.max(5))?;
                        let mut out = Vec::new();
                        let mut observed = 0usize;
                        let mut session = client;
                        while session < sessions {
                            let mut rng = StdRng::seed_from_u64(
                                seed ^ (session as u64).wrapping_mul(0xA076_1D64_78BD_642F),
                            );
                            let pool_index = rng.random_range(0..pool.len());
                            let mut request = pool[pool_index].clone();
                            request.priority = match rng.random_range(0..3u32) {
                                0 => Priority::Low,
                                1 => Priority::Normal,
                                _ => Priority::High,
                            };
                            let base = request.clone();
                            let started = std::time::Instant::now();
                            let response =
                                conn.round_trip(&WireRequest::Tune { request })?;
                            tune_latency.record(started.elapsed().as_secs_f64() * 1e6);
                            let result = match response {
                                WireResponse::Tuned {
                                    cached, keys, ..
                                } => SessionResult {
                                    session,
                                    pool_index,
                                    ok: true,
                                    cached,
                                    digest: {
                                        let mut f = acclaim_netsim::Fingerprint::new();
                                        for k in &keys {
                                            f.write_str(k);
                                        }
                                        f.finish()
                                    },
                                    keys,
                                },
                                _ => SessionResult {
                                    session,
                                    pool_index,
                                    ok: false,
                                    cached: false,
                                    keys: Vec::new(),
                                    digest: 0,
                                },
                            };
                            // Follow-up queries + drift feedback over
                            // the wire, mirroring loadgen::run.
                            let db = (queries_per_session > 0)
                                .then(|| BenchmarkDatabase::new(base.dataset.clone()));
                            for _ in 0..queries_per_session {
                                let space = &base.config.space;
                                let point = acclaim_dataset::Point::new(
                                    space.nodes[rng.random_range(0..space.nodes.len())],
                                    space.ppns[rng.random_range(0..space.ppns.len())],
                                    space.msg_sizes
                                        [rng.random_range(0..space.msg_sizes.len())],
                                );
                                let query = QueryRequest {
                                    dataset: base.dataset.clone(),
                                    config: base.config.clone(),
                                    collective: base.collectives[0],
                                    point,
                                };
                                let started = std::time::Instant::now();
                                let reply = conn.round_trip(&WireRequest::Query {
                                    request: query.clone(),
                                })?;
                                query_latency.record(started.elapsed().as_secs_f64() * 1e6);
                                let WireResponse::Selected { response } = reply else {
                                    continue;
                                };
                                let (Some(db), Some(algorithm)) = (
                                    db.as_ref(),
                                    base.collectives[0]
                                        .algorithms()
                                        .iter()
                                        .copied()
                                        .find(|a| a.name() == response.algorithm),
                                ) else {
                                    continue;
                                };
                                let observed_us = db.time(algorithm, point);
                                if let WireResponse::Drift { sample } =
                                    conn.round_trip(&WireRequest::Observe {
                                        request: query,
                                        algorithm: algorithm.name().to_string(),
                                        observed_us,
                                    })?
                                {
                                    observed += usize::from(sample.matched);
                                }
                            }
                            out.push(result);
                            session += clients;
                        }
                        Ok((out, observed))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("load client panicked"))
                .collect::<Result<Vec<_>, String>>()
        })?;

        let observed: usize = results.iter().map(|(_, n)| n).sum();
        let mut all: Vec<SessionResult> =
            results.into_iter().flat_map(|(o, _)| o).collect();
        all.sort_by_key(|r| r.session);
        let ok = all.iter().filter(|r| r.ok).count();
        let cached = all.iter().filter(|r| r.cached).count();
        let distinct: BTreeSet<&String> = all.iter().flat_map(|r| r.keys.iter()).collect();
        let mut f = acclaim_netsim::Fingerprint::new();
        for r in &all {
            f.write_u64(r.session as u64);
            f.write_u64(r.pool_index as u64);
            f.write_u64(r.digest);
            f.write_u32(u32::from(r.ok));
        }
        let quantiles = |h: &HistogramSnapshot| {
            format!(
                "p50={:.0} p95={:.0} p99={:.0}",
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99)
            )
        };
        let mut report = format!(
            "load: sessions={} ok={ok} cached={cached} distinct_keys={} fingerprint={:016x}\n",
            all.len(),
            distinct.len(),
            f.finish(),
        );
        let tune = tune_latency.snapshot();
        let query = query_latency.snapshot();
        report.push_str(&format!(
            "load latency (us): tune {} | query {} (queries={} observed={observed})\n",
            quantiles(&tune),
            quantiles(&query),
            query.count,
        ));
        Ok(report)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn args(tokens: &[&str]) -> Args {
            Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
        }

        fn temp(name: &str) -> std::path::PathBuf {
            let p = std::env::temp_dir().join(name);
            std::fs::remove_dir_all(&p).ok();
            std::fs::remove_file(&p).ok();
            p
        }

        #[test]
        fn daemon_and_client_round_trip_over_the_socket() {
            let store = temp("acclaim-cli-serve-store");
            let socket = temp("acclaim-cli-serve.sock");
            let diag = Diag::new(true);
            let server = {
                let store = store.clone();
                let socket = socket.clone();
                std::thread::spawn(move || {
                    serve(
                        &args(&[
                            "serve",
                            "--store",
                            store.to_str().unwrap(),
                            "--socket",
                            socket.to_str().unwrap(),
                            "--workers",
                            "2",
                        ]),
                        &Diag::new(true),
                    )
                })
            };
            let sock = socket.to_str().unwrap();
            let base = ["client", "--socket", sock, "--wait-server", "10", "--seed", "5"];

            // Tune twice: trained, then cached.
            let mut tune = base.to_vec();
            tune.extend(["--op", "tune", "--pool-index", "1"]);
            let out = client(&args(&tune), &diag).unwrap();
            assert!(out.contains("(trained)"), "{out}");
            let out = client(&args(&tune), &diag).unwrap();
            assert!(out.contains("(cached)"), "{out}");

            // Query the tuned signature.
            let mut query = base.to_vec();
            query.extend(["--op", "query", "--pool-index", "1"]);
            let out = client(&args(&query), &diag).unwrap();
            assert!(out.contains("source Tuned"), "{out}");

            // A small load run and its determinism: the daemon keeps
            // state, so only the fingerprint (not cached counts) is
            // comparable across runs — and here we just assert shape.
            let mut load_args = base.to_vec();
            load_args.extend(["--load", "6", "--clients", "3", "--pool", "4"]);
            let out = client(&args(&load_args), &diag).unwrap();
            assert!(out.contains("sessions=6 ok=6"), "{out}");
            assert!(out.contains("load latency (us): tune p50="), "{out}");
            assert!(out.contains("observed=6"), "{out}");

            let mut stats = base.to_vec();
            stats.extend(["--op", "stats"]);
            let out = client(&args(&stats), &diag).unwrap();
            assert!(out.contains("stats: entries="), "{out}");
            assert!(out.contains("drift_triggered=0"), "{out}");
            assert!(out.contains("cache_evicted=0"), "{out}");

            // Feed back observations at exactly the prediction, then
            // read the detector state: tracked, never triggered (the
            // daemon runs with the default disabled band).
            let mut observe = base.to_vec();
            observe.extend(["observe", "--pool-index", "1", "--count", "3"]);
            let out = client(&args(&observe), &diag).unwrap();
            assert!(out.contains("count=3 matched=3"), "{out}");
            assert!(out.contains("ratio=1.000"), "{out}");

            let mut drift = base.to_vec();
            drift.extend(["drift"]);
            let out = client(&args(&drift), &diag).unwrap();
            assert!(out.contains("drift: band=0 enabled=false"), "{out}");
            assert!(out.contains("triggered=0"), "{out}");
            assert!(out.contains("armed=true"), "{out}");

            let mut drift_json = base.to_vec();
            drift_json.extend(["drift", "--json"]);
            let out = client(&args(&drift_json), &diag).unwrap();
            let parsed: serde_json::Value = serde_json::from_str(&out).unwrap();
            assert!(
                parsed.get("tracked").and_then(|v| v.as_u64()).unwrap_or(0) >= 1,
                "{out}"
            );

            // Live telemetry verbs: Prometheus text, metrics JSON,
            // flight dump (human + JSONL), and the watch summary.
            let mut metrics = base.to_vec();
            metrics.extend(["metrics"]);
            let out = client(&args(&metrics), &diag).unwrap();
            assert!(out.contains("# TYPE serve_tune_requests counter"), "{out}");
            assert!(out.contains("serve_phase_queue_wait_us_bucket"), "{out}");
            assert!(out.contains("drift_observations"), "{out}");

            let mut metrics_json = base.to_vec();
            metrics_json.extend(["metrics", "--json"]);
            let out = client(&args(&metrics_json), &diag).unwrap();
            acclaim_obs::schema::validate_metrics_json(&out).unwrap();

            let mut trace = base.to_vec();
            trace.extend(["trace", "--last", "4"]);
            let out = client(&args(&trace), &diag).unwrap();
            assert!(out.starts_with("flight: 4 records"), "{out}");

            let mut trace_json = base.to_vec();
            trace_json.extend(["trace", "--json"]);
            let out = client(&args(&trace_json), &diag).unwrap();
            // 2 tunes + 6 load sessions, minus whatever coalesced
            // behind a rider (interleaving-dependent).
            let n = acclaim_obs::schema::validate_flight_records(&out).unwrap();
            assert!((4..=8).contains(&n), "unexpected flight count {n}: {out}");

            let mut watch_args = base.to_vec();
            watch_args.extend(["watch", "--refresh", "2", "--interval-ms", "10"]);
            let out = client(&args(&watch_args), &diag).unwrap();
            assert!(out.contains("watch[0]"), "{out}");
            assert!(out.contains("watch[1]"), "{out}");
            assert!(out.contains("e2e_p50="), "{out}");

            let mut shutdown = base.to_vec();
            shutdown.extend(["--op", "shutdown"]);
            let out = client(&args(&shutdown), &diag).unwrap();
            assert!(out.contains("shutting down"), "{out}");

            let report = server.join().unwrap().unwrap();
            assert!(report.contains("serve counters"), "{report}");
            assert!(report.contains("tune_requests"), "{report}");
            assert!(report.contains("serve gauges (obs):"), "{report}");
            assert!(report.contains("serve.cache_size="), "{report}");
            assert!(
                report.contains("serve histogram serve.phase.total_us: count="),
                "{report}"
            );
            assert!(report.contains("p99="), "{report}");
            std::fs::remove_dir_all(&store).ok();
            std::fs::remove_file(&socket).ok();
        }

        #[test]
        fn client_without_server_fails_fast() {
            let socket = temp("acclaim-cli-serve-nosrv.sock");
            let e = client(
                &args(&["client", "--socket", socket.to_str().unwrap(), "--op", "stats"]),
                &Diag::new(true),
            )
            .unwrap_err();
            assert!(e.contains("connecting to"), "{e}");
        }
    }
}
