//! `acclaim serve` / `acclaim client` — tuning-as-a-service over a
//! local socket.
//!
//! `serve` runs the daemon: a [`acclaim_serve::TuneService`] listening
//! on a Unix socket, speaking the line-delimited JSON protocol of
//! [`acclaim_serve::protocol`]. One request per line, one response per
//! line; `Tune` blocks its connection until the job finishes
//! (identical concurrent requests coalesce server-side).
//!
//! `client` is the matching client. `--op tune|query|stats|shutdown`
//! sends one request; `--load N` drives N deterministic tune sessions
//! over `--clients` concurrent connections using the seeded request
//! pool from [`acclaim_serve::loadgen`] — the summary line it prints
//! (including the run fingerprint) depends only on `--seed`, never on
//! scheduling, so CI can assert on it verbatim.

use crate::args::Args;
use crate::trace::TraceOutputs;
use acclaim_obs::Diag;

#[cfg(unix)]
pub use unix::{client, serve};

#[cfg(not(unix))]
pub fn serve(_args: &Args, _diag: &Diag) -> Result<String, String> {
    Err("`acclaim serve` requires Unix domain sockets (unsupported on this platform)".into())
}

#[cfg(not(unix))]
pub fn client(_args: &Args, _diag: &Diag) -> Result<String, String> {
    Err("`acclaim client` requires Unix domain sockets (unsupported on this platform)".into())
}

/// Shared option parsing: the socket path.
fn socket_path(args: &Args) -> String {
    args.get_or("socket", "acclaim-serve.sock").to_string()
}

#[cfg(unix)]
mod unix {
    use super::*;
    use acclaim_serve::protocol::{
        decode_request, decode_response, encode_request, encode_response, handle_request,
        WireRequest, WireResponse,
    };
    use acclaim_serve::{
        loadgen, Priority, QueryRequest, ServeConfig, TuneService,
    };
    use acclaim_store::EntryFormat;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::collections::BTreeSet;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    fn parse_priority(args: &Args) -> Result<Priority, String> {
        match args.get_or("priority", "normal") {
            "low" => Ok(Priority::Low),
            "normal" => Ok(Priority::Normal),
            "high" => Ok(Priority::High),
            other => Err(format!("unknown --priority '{other}' (low | normal | high)")),
        }
    }

    /// `acclaim serve --store DIR [--socket PATH] [--workers N]
    /// [--slots N] [--shards N] [--format json|binary]`
    ///
    /// Runs until a client sends `Shutdown`.
    pub fn serve(args: &Args, diag: &Diag) -> Result<String, String> {
        let dir = args
            .get("store")
            .ok_or("missing required option --store DIR")?
            .to_string();
        let socket = socket_path(args);
        let (obs, outputs) = TraceOutputs::from_args(args)?;
        // The service's counters are the daemon's exit report either way.
        let obs = if obs.is_enabled() {
            obs
        } else {
            acclaim_obs::Obs::enabled()
        };
        let config = ServeConfig {
            workers: args.num_or("workers", 2usize)?,
            slots: args.num_or("slots", 4usize)?,
            shards: args.num_or("shards", 16usize)?,
            format: match args.get_or("format", "binary") {
                "json" => EntryFormat::Json,
                "binary" => EntryFormat::Binary,
                other => return Err(format!("unknown --format '{other}' (json | binary)")),
            },
            ..ServeConfig::default()
        };

        // A leftover socket file from a dead daemon is reclaimable; a
        // live one is not.
        if std::path::Path::new(&socket).exists() {
            if UnixStream::connect(&socket).is_ok() {
                return Err(format!("socket {socket} is in use by a running daemon"));
            }
            std::fs::remove_file(&socket).map_err(|e| format!("removing stale {socket}: {e}"))?;
        }
        let listener =
            UnixListener::bind(&socket).map_err(|e| format!("binding {socket}: {e}"))?;
        let service = Arc::new(
            TuneService::open(&dir, config, obs.clone())
                .map_err(|e| format!("opening store {dir}: {e}"))?,
        );
        diag.progress(&format!(
            "serving store {dir} on {socket} ({} cached signatures)",
            service.shared().len()
        ));

        let stop = Arc::new(AtomicBool::new(false));
        let conns: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
        for incoming in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = incoming else { continue };
            let service = service.clone();
            let stop = stop.clone();
            let socket = socket.clone();
            let handle = std::thread::spawn(move || {
                handle_connection(stream, &service, &stop, &socket);
            });
            conns.lock().unwrap().push(handle);
        }
        for handle in conns.into_inner().unwrap() {
            let _ = handle.join();
        }
        service.shutdown();
        std::fs::remove_file(&socket).ok();

        let snap = obs.snapshot();
        let counters: Vec<String> = snap
            .metrics
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("serve."))
            .map(|(name, value)| format!("{}={value}", name.trim_start_matches("serve.")))
            .collect();
        let mut report = format!(
            "serve counters (obs): {}\n",
            if counters.is_empty() {
                "none recorded".to_string()
            } else {
                counters.join(" ")
            }
        );
        for line in outputs.write(&obs)? {
            report.push_str(&line);
            report.push('\n');
        }
        Ok(report)
    }

    fn handle_connection(
        stream: UnixStream,
        service: &TuneService,
        stop: &AtomicBool,
        socket: &str,
    ) {
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let reader = BufReader::new(read_half);
        let mut writer = stream;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let (response, shutdown) = match decode_request(&line) {
                Ok(request) => handle_request(service, request),
                Err(message) => (WireResponse::Error { message }, false),
            };
            let mut payload = encode_response(&response);
            payload.push('\n');
            if writer.write_all(payload.as_bytes()).is_err() {
                break;
            }
            let _ = writer.flush();
            if shutdown {
                stop.store(true, Ordering::SeqCst);
                // Unblock the accept loop so the daemon can exit.
                let _ = UnixStream::connect(socket);
                break;
            }
        }
    }

    /// One connected client: send a line, read a line.
    struct Connection {
        reader: BufReader<UnixStream>,
        writer: UnixStream,
    }

    impl Connection {
        fn open(socket: &str, wait_secs: u64) -> Result<Connection, String> {
            // --wait-server: the daemon may still be binding.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(wait_secs);
            let stream = loop {
                match UnixStream::connect(socket) {
                    Ok(s) => break s,
                    Err(e) => {
                        if std::time::Instant::now() >= deadline {
                            return Err(format!("connecting to {socket}: {e}"));
                        }
                        std::thread::sleep(std::time::Duration::from_millis(50));
                    }
                }
            };
            let reader = BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| format!("cloning socket: {e}"))?,
            );
            Ok(Connection {
                reader,
                writer: stream,
            })
        }

        fn round_trip(&mut self, request: &WireRequest) -> Result<WireResponse, String> {
            let mut line = encode_request(request);
            line.push('\n');
            self.writer
                .write_all(line.as_bytes())
                .map_err(|e| format!("sending request: {e}"))?;
            self.writer.flush().map_err(|e| format!("flushing: {e}"))?;
            let mut reply = String::new();
            self.reader
                .read_line(&mut reply)
                .map_err(|e| format!("reading response: {e}"))?;
            if reply.is_empty() {
                return Err("server closed the connection".into());
            }
            decode_response(&reply)
        }
    }

    /// `acclaim client [--socket PATH] [--wait-server SECS]
    /// (--op tune|query|stats|shutdown | --load N)` plus the request
    /// shape options (`--pool`, `--pool-index`, `--seed`, `--priority`,
    /// `--clients`, `--nodes`, `--ppn`, `--msg`).
    pub fn client(args: &Args, diag: &Diag) -> Result<String, String> {
        let socket = socket_path(args);
        let wait = args.num_or("wait-server", 0u64)?;
        let seed = args.num_or("seed", 0u64)?;
        let pool_size = args.num_or("pool", 16usize)?.max(1);

        if let Some(sessions) = args.get_num::<usize>("load")? {
            return load(args, diag, &socket, wait, seed, pool_size, sessions);
        }

        let mut conn = Connection::open(&socket, wait)?;
        let op = args.get_or("op", "stats");
        let request = match op {
            "tune" => {
                let index = args.num_or("pool-index", 0usize)?;
                let pool = loadgen::request_pool(pool_size.max(index + 1), seed);
                let mut request = pool[index].clone();
                request.priority = parse_priority(args)?;
                WireRequest::Tune { request }
            }
            "query" => {
                let index = args.num_or("pool-index", 0usize)?;
                let pool = loadgen::request_pool(pool_size.max(index + 1), seed);
                let base = &pool[index];
                WireRequest::Query {
                    request: QueryRequest {
                        dataset: base.dataset.clone(),
                        config: base.config.clone(),
                        collective: base.collectives[0],
                        point: acclaim_dataset::Point::new(
                            args.num_or("nodes", 2u32)?,
                            args.num_or("ppn", 2u32)?,
                            args.num_or("msg", 1024u64)?,
                        ),
                    },
                }
            }
            "stats" => WireRequest::Stats,
            "shutdown" => WireRequest::Shutdown,
            other => {
                return Err(format!(
                    "unknown --op '{other}' (tune | query | stats | shutdown)"
                ))
            }
        };
        let response = conn.round_trip(&request)?;
        render_response(&response)
    }

    fn render_response(response: &WireResponse) -> Result<String, String> {
        match response {
            WireResponse::Tuned {
                job,
                cached,
                converged,
                iterations,
                fresh_points,
                keys,
            } => Ok(format!(
                "tuned: job {job} {} converged={converged} iterations={iterations} \
                 fresh_points={fresh_points} keys=[{}]\n",
                if *cached { "(cached)" } else { "(trained)" },
                keys.join(","),
            )),
            WireResponse::Selected { response } => Ok(format!(
                "selected: {} (source {:?}{})\n",
                response.algorithm,
                response.source,
                response
                    .predicted_us
                    .map(|p| format!(", predicted {p:.2} us"))
                    .unwrap_or_default(),
            )),
            WireResponse::Cancelled { job, effective } => {
                Ok(format!("cancelled: job {job} effective={effective}\n"))
            }
            WireResponse::StatusIs { job, state } => Ok(format!("status: job {job} {state}\n")),
            WireResponse::Stats { stats } => Ok(format!(
                "stats: entries={} cached_models={} queue_depth={} slots_free={} \
                 requests={} completed={} trained={} cache_served={} coalesced={} \
                 cancelled={} failed={} queries={} defaults={} p50_query_us={:.1}\n",
                stats.entries,
                stats.cached_models,
                stats.queue_depth,
                stats.slots_free,
                stats.tune_requests,
                stats.completed,
                stats.trained,
                stats.cache_served,
                stats.coalesced,
                stats.cancelled,
                stats.failed,
                stats.queries,
                stats.query_defaults,
                stats.query_latency_p50_us,
            )),
            WireResponse::Bye => Ok("server shutting down\n".to_string()),
            WireResponse::Error { message } => Err(format!("server error: {message}")),
        }
    }

    /// Deterministic over-the-wire load run: the socket twin of
    /// [`loadgen::run`]. Sessions are distributed round-robin over
    /// `--clients` connections; the printed summary (sessions, ok,
    /// distinct keys, fingerprint) depends only on the seed.
    fn load(
        args: &Args,
        diag: &Diag,
        socket: &str,
        wait: u64,
        seed: u64,
        pool_size: usize,
        sessions: usize,
    ) -> Result<String, String> {
        let clients = args.num_or("clients", 8usize)?.max(1);
        let pool = loadgen::request_pool(pool_size, seed);
        diag.progress(&format!(
            "driving {sessions} sessions over {clients} connections (pool {pool_size}, seed {seed})"
        ));

        struct SessionResult {
            session: usize,
            pool_index: usize,
            ok: bool,
            cached: bool,
            keys: Vec<String>,
            digest: u64,
        }

        let results: Vec<Vec<SessionResult>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|client| {
                    let pool = &pool;
                    scope.spawn(move || -> Result<Vec<SessionResult>, String> {
                        let mut conn = Connection::open(socket, wait.max(5))?;
                        let mut out = Vec::new();
                        let mut session = client;
                        while session < sessions {
                            let mut rng = StdRng::seed_from_u64(
                                seed ^ (session as u64).wrapping_mul(0xA076_1D64_78BD_642F),
                            );
                            let pool_index = rng.random_range(0..pool.len());
                            let mut request = pool[pool_index].clone();
                            request.priority = match rng.random_range(0..3u32) {
                                0 => Priority::Low,
                                1 => Priority::Normal,
                                _ => Priority::High,
                            };
                            let response =
                                conn.round_trip(&WireRequest::Tune { request })?;
                            let result = match response {
                                WireResponse::Tuned {
                                    cached, keys, ..
                                } => SessionResult {
                                    session,
                                    pool_index,
                                    ok: true,
                                    cached,
                                    digest: {
                                        let mut f = acclaim_netsim::Fingerprint::new();
                                        for k in &keys {
                                            f.write_str(k);
                                        }
                                        f.finish()
                                    },
                                    keys,
                                },
                                _ => SessionResult {
                                    session,
                                    pool_index,
                                    ok: false,
                                    cached: false,
                                    keys: Vec::new(),
                                    digest: 0,
                                },
                            };
                            out.push(result);
                            session += clients;
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("load client panicked"))
                .collect::<Result<Vec<_>, String>>()
        })?;

        let mut all: Vec<SessionResult> = results.into_iter().flatten().collect();
        all.sort_by_key(|r| r.session);
        let ok = all.iter().filter(|r| r.ok).count();
        let cached = all.iter().filter(|r| r.cached).count();
        let distinct: BTreeSet<&String> = all.iter().flat_map(|r| r.keys.iter()).collect();
        let mut f = acclaim_netsim::Fingerprint::new();
        for r in &all {
            f.write_u64(r.session as u64);
            f.write_u64(r.pool_index as u64);
            f.write_u64(r.digest);
            f.write_u32(u32::from(r.ok));
        }
        Ok(format!(
            "load: sessions={} ok={ok} cached={cached} distinct_keys={} fingerprint={:016x}\n",
            all.len(),
            distinct.len(),
            f.finish(),
        ))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn args(tokens: &[&str]) -> Args {
            Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
        }

        fn temp(name: &str) -> std::path::PathBuf {
            let p = std::env::temp_dir().join(name);
            std::fs::remove_dir_all(&p).ok();
            std::fs::remove_file(&p).ok();
            p
        }

        #[test]
        fn daemon_and_client_round_trip_over_the_socket() {
            let store = temp("acclaim-cli-serve-store");
            let socket = temp("acclaim-cli-serve.sock");
            let diag = Diag::new(true);
            let server = {
                let store = store.clone();
                let socket = socket.clone();
                std::thread::spawn(move || {
                    serve(
                        &args(&[
                            "serve",
                            "--store",
                            store.to_str().unwrap(),
                            "--socket",
                            socket.to_str().unwrap(),
                            "--workers",
                            "2",
                        ]),
                        &Diag::new(true),
                    )
                })
            };
            let sock = socket.to_str().unwrap();
            let base = ["client", "--socket", sock, "--wait-server", "10", "--seed", "5"];

            // Tune twice: trained, then cached.
            let mut tune = base.to_vec();
            tune.extend(["--op", "tune", "--pool-index", "1"]);
            let out = client(&args(&tune), &diag).unwrap();
            assert!(out.contains("(trained)"), "{out}");
            let out = client(&args(&tune), &diag).unwrap();
            assert!(out.contains("(cached)"), "{out}");

            // Query the tuned signature.
            let mut query = base.to_vec();
            query.extend(["--op", "query", "--pool-index", "1"]);
            let out = client(&args(&query), &diag).unwrap();
            assert!(out.contains("source Tuned"), "{out}");

            // A small load run and its determinism: the daemon keeps
            // state, so only the fingerprint (not cached counts) is
            // comparable across runs — and here we just assert shape.
            let mut load_args = base.to_vec();
            load_args.extend(["--load", "6", "--clients", "3", "--pool", "4"]);
            let out = client(&args(&load_args), &diag).unwrap();
            assert!(out.contains("sessions=6 ok=6"), "{out}");

            let mut stats = base.to_vec();
            stats.extend(["--op", "stats"]);
            let out = client(&args(&stats), &diag).unwrap();
            assert!(out.contains("stats: entries="), "{out}");

            let mut shutdown = base.to_vec();
            shutdown.extend(["--op", "shutdown"]);
            let out = client(&args(&shutdown), &diag).unwrap();
            assert!(out.contains("shutting down"), "{out}");

            let report = server.join().unwrap().unwrap();
            assert!(report.contains("serve counters"), "{report}");
            assert!(report.contains("tune_requests"), "{report}");
            std::fs::remove_dir_all(&store).ok();
            std::fs::remove_file(&socket).ok();
        }

        #[test]
        fn client_without_server_fails_fast() {
            let socket = temp("acclaim-cli-serve-nosrv.sock");
            let e = client(
                &args(&["client", "--socket", socket.to_str().unwrap(), "--op", "stats"]),
                &Diag::new(true),
            )
            .unwrap_err();
            assert!(e.contains("connecting to"), "{e}");
        }
    }
}
