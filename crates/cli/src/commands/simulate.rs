//! `acclaim simulate` — price every algorithm of a collective at one
//! point on the simulated machine (the Sec. II-B exploration, as a
//! command).

use crate::args::Args;
use crate::context::cluster_from;
use acclaim_collectives::{analysis, mpich_default, Collective};
use acclaim_netsim::RoundSim;
use std::fmt::Write;

/// Run the subcommand; returns the table printed to stdout.
pub fn run(args: &Args) -> Result<String, String> {
    let cluster = cluster_from(args)?;
    let collective = Collective::parse(args.get_or("collective", "bcast"))
        .ok_or_else(|| "unknown --collective".to_string())?;
    let ppn: u32 = args.num_or("ppn", 8)?;
    let msg: u64 = args.num_or("msg", 65_536)?;
    let nodes = cluster.num_nodes();
    let ranks = nodes * ppn;

    let mut sim = RoundSim::new();
    let mut rows: Vec<(f64, String)> = Vec::new();
    for &a in collective.algorithms() {
        let sched = a.schedule(ranks, msg);
        let stats = analysis::stats(sched.as_ref());
        let t = sim.simulate(&cluster, ppn, sched.as_ref());
        rows.push((
            t,
            format!(
                "  {:<40} {:>12.1} µs   ({} rounds, {} messages)",
                a.name(),
                t,
                stats.rounds,
                stats.messages
            ),
        ));
    }
    rows.sort_by(|x, y| x.0.total_cmp(&y.0));

    let default = mpich_default(collective, ranks, msg);
    let mut out = format!(
        "{} at {nodes} nodes x {ppn} ppn, {msg} B (latency factor {}):\n",
        collective.name(),
        cluster.job_latency_factor
    );
    for (i, (_, line)) in rows.iter().enumerate() {
        let _ = writeln!(out, "{line}{}", if i == 0 { "   <- fastest" } else { "" });
    }
    let _ = writeln!(out, "MPICH default heuristic would pick: {}", default.name());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    #[test]
    fn prices_all_algorithms_and_marks_the_winner() {
        let args = Args::parse(
            [
                "simulate",
                "--nodes",
                "8",
                "--ppn",
                "2",
                "--collective",
                "allgather",
                "--msg",
                "4096",
            ]
            .map(String::from),
        )
        .unwrap();
        let out = run(&args).unwrap();
        assert!(out.contains("ring"));
        assert!(out.contains("brucks"));
        assert!(out.contains("<- fastest"));
        assert!(out.contains("MPICH default"));
    }
}
