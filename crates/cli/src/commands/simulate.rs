//! `acclaim simulate` — price every algorithm of a collective at one
//! point on the simulated machine (the Sec. II-B exploration, as a
//! command).

use crate::args::Args;
use crate::context::cluster_from;
use crate::trace::TraceOutputs;
use acclaim_collectives::{analysis, mpich_default, Collective};
use acclaim_netsim::{FlowSim, RoundSim};
use acclaim_obs::Diag;
use std::fmt::Write;

/// Run the subcommand; returns the table printed to stdout.
pub fn run(args: &Args, diag: &Diag) -> Result<String, String> {
    let (obs, outputs) = TraceOutputs::from_args(args)?;
    let cluster = cluster_from(args)?;
    let collective = Collective::parse(args.get_or("collective", "bcast"))
        .ok_or_else(|| "unknown --collective".to_string())?;
    let ppn: u32 = args.num_or("ppn", 8)?;
    let msg: u64 = args.num_or("msg", 65_536)?;
    let engine = args.get_or("engine", "rounds");
    if engine != "rounds" && engine != "flows" {
        return Err(format!("unknown --engine '{engine}' (rounds | flows)"));
    }
    let nodes = cluster.num_nodes();
    let ranks = nodes * ppn;

    let mut round_sim = RoundSim::with_obs(&obs);
    let mut flow_sim = FlowSim::with_obs(&obs);
    let mut rows: Vec<(f64, String)> = Vec::new();
    {
        let _span = obs.span("cli", "simulate");
        for &a in collective.algorithms() {
            let sched = a.schedule(ranks, msg);
            let stats = analysis::stats(sched.as_ref());
            let t = if engine == "flows" {
                flow_sim.simulate(&cluster, ppn, &sched.materialize())
            } else {
                round_sim.simulate(&cluster, ppn, sched.as_ref())
            };
            rows.push((
                t,
                format!(
                    "  {:<40} {:>12.1} µs   ({} rounds, {} messages)",
                    a.name(),
                    t,
                    stats.rounds,
                    stats.messages
                ),
            ));
        }
    }
    rows.sort_by(|x, y| x.0.total_cmp(&y.0));
    diag.progress(&format!(
        "priced {} algorithms with the {engine} engine",
        rows.len()
    ));

    let default = mpich_default(collective, ranks, msg);
    let mut out = format!(
        "{} at {nodes} nodes x {ppn} ppn, {msg} B (latency factor {}):\n",
        collective.name(),
        cluster.job_latency_factor
    );
    for (i, (_, line)) in rows.iter().enumerate() {
        let _ = writeln!(out, "{line}{}", if i == 0 { "   <- fastest" } else { "" });
    }
    let _ = writeln!(out, "MPICH default heuristic would pick: {}", default.name());
    for line in outputs.write(&obs)? {
        let _ = writeln!(out, "{line}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    #[test]
    fn prices_all_algorithms_and_marks_the_winner() {
        let args = Args::parse(
            [
                "simulate",
                "--nodes",
                "8",
                "--ppn",
                "2",
                "--collective",
                "allgather",
                "--msg",
                "4096",
            ]
            .map(String::from),
        )
        .unwrap();
        let out = run(&args, &Diag::new(true)).unwrap();
        assert!(out.contains("ring"));
        assert!(out.contains("brucks"));
        assert!(out.contains("<- fastest"));
        assert!(out.contains("MPICH default"));
    }

    #[test]
    fn flows_engine_traces_des_metrics() {
        let trace = std::env::temp_dir().join("acclaim-cli-simulate-trace-test.jsonl");
        let args = Args::parse(
            [
                "simulate",
                "--nodes",
                "4",
                "--ppn",
                "2",
                "--collective",
                "bcast",
                "--msg",
                "1024",
                "--engine",
                "flows",
                "--trace-out",
                trace.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap();
        let out = run(&args, &Diag::new(true)).unwrap();
        assert!(out.contains("trace (jsonl) written"));
        let text = std::fs::read_to_string(&trace).unwrap();
        acclaim_obs::schema::validate_trace(&text).unwrap();
        assert!(text.contains("netsim.des.events"));
        assert!(text.contains("netsim.des.sim_us"));
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn unknown_engine_is_rejected() {
        let args = Args::parse(["simulate", "--engine", "magic"].map(String::from)).unwrap();
        assert!(run(&args, &Diag::new(true)).unwrap_err().contains("magic"));
    }
}
