//! `acclaim store` — inspect and maintain a persistent tuning store.
//!
//! Actions: `ls` (list cached entries), `gc` (drop corrupt or
//! foreign-version files), `export` (bundle every entry into one JSON
//! file), `import` (merge a bundle; existing keys win).

use crate::args::Args;
use crate::trace::TraceOutputs;
use acclaim_obs::Diag;
use acclaim_store::TuningStore;
use std::fmt::Write;

/// Run the subcommand; returns the report printed to stdout.
pub fn run(args: &Args, diag: &Diag) -> Result<String, String> {
    let dir = args
        .get("store")
        .ok_or("missing required option --store DIR")?;
    let store = TuningStore::open(dir).map_err(|e| format!("opening store {dir}: {e}"))?;
    match args.action.as_deref() {
        Some("ls") => ls(&store),
        Some("gc") => gc(&store, args, diag),
        Some("export") => export(&store, args, diag),
        Some("import") => import(&store, args, diag),
        Some(other) => Err(format!(
            "unknown store action '{other}' (ls | gc | export | import)"
        )),
        None => Err("missing store action (ls | gc | export | import)".into()),
    }
}

fn ls(store: &TuningStore) -> Result<String, String> {
    let entries = store.summaries().map_err(|e| format!("reading store: {e}"))?;
    if entries.is_empty() {
        return Ok("store is empty\n".to_string());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:<10} {:>6} {:>5} {:>10}  axes",
        "key", "collective", "points", "iters", "coll (min)"
    );
    for e in &entries {
        let _ = writeln!(
            out,
            "{:<16} {:<10} {:>6} {:>5} {:>10.2}  nodes {:?} ppn {:?}",
            e.key,
            e.collective,
            e.points,
            e.iterations,
            e.collection_wall_us / 60e6,
            e.nodes,
            e.ppns,
        );
    }
    let _ = writeln!(out, "{} entries", entries.len());
    Ok(out)
}

fn gc(store: &TuningStore, args: &Args, diag: &Diag) -> Result<String, String> {
    let (obs, outputs) = TraceOutputs::from_args(args)?;
    // Failed reclaims must be visible to monitoring even when the
    // operator isn't reading exit codes.
    let obs = if !obs.is_enabled() {
        acclaim_obs::Obs::enabled()
    } else {
        obs
    };
    let report = store.gc().map_err(|e| format!("sweeping store: {e}"))?;
    obs.incr_counter("store.gc_failed", report.failed as u64);
    diag.progress(&format!("gc swept {}", store.root().display()));
    let mut out = format!(
        "gc: kept {} entries, removed {}",
        report.kept, report.removed
    );
    // Race/fault tallies only when something actually raced or failed.
    if report.skipped > 0 {
        let _ = write!(out, ", skipped {} (vanished mid-sweep)", report.skipped);
    }
    if report.failed > 0 {
        let _ = write!(out, ", failed {} (left in place)", report.failed);
    }
    out.push('\n');
    for line in outputs.write(&obs)? {
        out.push_str(&line);
        out.push('\n');
    }
    // A sweep that could not reclaim damaged files is a failure: the
    // debris it exists to remove is still there. Nonzero exit so cron
    // jobs and CI notice.
    if report.failed > 0 {
        return Err(format!(
            "{out}gc: {} damaged file(s) could not be reclaimed",
            report.failed
        ));
    }
    Ok(out)
}

fn export(store: &TuningStore, args: &Args, diag: &Diag) -> Result<String, String> {
    let out_path = args.get_or("out", "store-export.json");
    let n = store
        .export(out_path)
        .map_err(|e| format!("exporting to {out_path}: {e}"))?;
    diag.progress(&format!("exported {n} entries"));
    Ok(format!("exported {n} entries to {out_path}\n"))
}

fn import(store: &TuningStore, args: &Args, diag: &Diag) -> Result<String, String> {
    let in_path = args
        .get("in")
        .ok_or("missing required option --in FILE (an `acclaim store export` bundle)")?;
    let report = store
        .import(in_path)
        .map_err(|e| format!("importing {in_path}: {e}"))?;
    diag.progress(&format!("imported from {in_path}"));
    Ok(format!(
        "imported {} entries, skipped {} (already present or unreadable)\n",
        report.imported, report.skipped
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_tokens(tokens: &[&str]) -> Result<String, String> {
        let args = Args::parse(tokens.iter().map(|s| s.to_string())).unwrap();
        run(&args, &Diag::new(true))
    }

    fn temp_store(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn ls_on_an_empty_store() {
        let dir = temp_store("acclaim-cli-store-ls");
        let out = run_tokens(&["store", "ls", "--store", dir.to_str().unwrap()]).unwrap();
        assert!(out.contains("store is empty"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_reclaims_corrupt_files() {
        let dir = temp_store("acclaim-cli-store-gc");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("0123456789abcdef.json"), "not json").unwrap();
        let out = run_tokens(&["store", "gc", "--store", dir.to_str().unwrap()]).unwrap();
        assert!(out.contains("removed 1"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn export_import_roundtrip_on_empty_store() {
        let dir = temp_store("acclaim-cli-store-exp");
        let bundle = std::env::temp_dir().join("acclaim-cli-store-exp-bundle.json");
        let out = run_tokens(&[
            "store",
            "export",
            "--store",
            dir.to_str().unwrap(),
            "--out",
            bundle.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("exported 0"));
        let out = run_tokens(&[
            "store",
            "import",
            "--store",
            dir.to_str().unwrap(),
            "--in",
            bundle.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("imported 0"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&bundle).ok();
    }

    #[test]
    fn gc_fails_loudly_when_debris_cannot_be_reclaimed() {
        let dir = temp_store("acclaim-cli-store-gc-fail");
        std::fs::create_dir_all(&dir).unwrap();
        // A *directory* at an entry path reads as corrupt (not valid
        // JSON) but cannot be reclaimed by remove_file — even as root.
        let blocker = dir.join("00000000deadbeef.json");
        std::fs::create_dir_all(blocker.join("pin")).unwrap();
        let metrics = std::env::temp_dir().join("acclaim-cli-store-gc-fail-metrics.jsonl");
        let e = run_tokens(&[
            "store",
            "gc",
            "--store",
            dir.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(e.contains("could not be reclaimed"), "{e}");
        assert!(e.contains("failed 1"), "{e}");
        // The failure is also counted for monitoring.
        let text = std::fs::read_to_string(&metrics).unwrap();
        assert!(text.contains("store.gc_failed"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn bad_or_missing_action_is_rejected() {
        let dir = temp_store("acclaim-cli-store-bad");
        let e = run_tokens(&["store", "prune", "--store", dir.to_str().unwrap()]).unwrap_err();
        assert!(e.contains("unknown store action"));
        let e = run_tokens(&["store", "--store", dir.to_str().unwrap()]).unwrap_err();
        assert!(e.contains("missing store action"));
        let e = run_tokens(&["store", "ls"]).unwrap_err();
        assert!(e.contains("--store"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
