//! `acclaim traces` — summarize the synthetic LLNL-style application
//! traces (the Fig. 4 data, as a command).

use crate::args::Args;
use acclaim_dataset::traces;
use acclaim_obs::Diag;
use std::fmt::Write;

/// Run the subcommand; returns the table printed to stdout.
pub fn run(args: &Args, _diag: &Diag) -> Result<String, String> {
    let max_msg: u64 = args.num_or("max-msg", 1 << 20)?;
    let mut out = String::from("application traces (synthetic, LLNL-calibrated):\n");
    for name in traces::trace_app_names() {
        for scale in [64u32, 1_024] {
            match traces::synthetic_trace(name, scale, max_msg) {
                Some(t) => {
                    let calls: u64 = t.calls.iter().map(|c| c.count as u64).sum();
                    let _ = writeln!(
                        out,
                        "  {name:<8} @{scale:>5} nodes: {:>4} call sites, {calls:>5} calls/iter, \
                         {:>5.1}% non-P2, collectives {:?}",
                        t.calls.len(),
                        t.nonp2_fraction() * 100.0,
                        t.collectives().iter().map(|c| c.name()).collect::<Vec<_>>()
                    );
                }
                None => {
                    let _ = writeln!(out, "  {name:<8} @{scale:>5} nodes: no trace available");
                }
            }
        }
    }
    let aggregate = traces::aggregate_nonp2_fraction(&traces::all_traces(max_msg));
    let _ = writeln!(
        out,
        "  aggregate non-P2 share: {:.1}% (paper: 15.7%)",
        aggregate * 100.0
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    #[test]
    fn lists_all_apps_and_the_missing_trace() {
        let args = Args::parse(["traces".to_string()]).unwrap();
        let out = run(&args, &Diag::new(true)).unwrap();
        for app in ["AMG", "Nekbone", "ParaDis", "Laghos"] {
            assert!(out.contains(app), "{app} missing from\n{out}");
        }
        assert!(out.contains("no trace available"));
        assert!(out.contains("aggregate non-P2"));
    }
}
