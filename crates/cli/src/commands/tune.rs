//! `acclaim tune` — the Fig. 1(b) job flow: train models for the
//! requested collectives and write the MPICH JSON tuning file.

use crate::args::Args;
use crate::context::{cluster_from, collectives_from, database_from, maybe_save_db, space_from};
use acclaim_core::{Acclaim, AcclaimConfig, CollectionStrategy, CriterionConfig};

/// Run the subcommand; returns the report printed to stdout.
pub fn run(args: &Args) -> Result<String, String> {
    let cluster = cluster_from(args)?;
    let space = space_from(args, &cluster)?;
    let db = database_from(args, cluster)?;
    let collectives = collectives_from(args)?;
    let out_path = args.get_or("out", "tuning.json").to_string();

    let mut config = AcclaimConfig::new(space);
    config.learner.seed = args.num_or("seed", config.learner.seed)?;
    if args.flag("sequential") {
        config.learner.strategy = CollectionStrategy::Sequential;
    }
    if let Some(budget) = args.get_num::<usize>("budget")? {
        config.learner.criterion = CriterionConfig::MaxPoints(budget);
    }
    if let Some(iters) = args.get_num::<usize>("max-iterations")? {
        config.learner.max_iterations = iters;
    }

    let tuning = Acclaim::new(config).tune(&db, &collectives);
    let json = serde_json::to_string_pretty(&tuning.tuning_file.to_mpich_json())
        .expect("tuning file serializes");
    std::fs::write(&out_path, &json).map_err(|e| format!("writing {out_path}: {e}"))?;
    maybe_save_db(args, &db)?;

    let mut report = String::new();
    report.push_str(&tuning.summary());
    report.push_str(&format!("tuning file written to {out_path}\n"));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use acclaim_core::TuningFile;

    #[test]
    fn tune_writes_a_parseable_tuning_file() {
        let out = std::env::temp_dir().join("acclaim-cli-tune-test.json");
        let _ = std::fs::remove_file(&out);
        let args = Args::parse(
            [
                "tune",
                "--nodes",
                "8",
                "--ppn",
                "2",
                "--max-msg",
                "4096",
                "--min-msg",
                "64",
                "--collectives",
                "reduce",
                "--budget",
                "20",
                "--max-iterations",
                "10",
                "--out",
                out.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .unwrap();
        let report = run(&args).unwrap();
        assert!(report.contains("reduce"));
        assert!(report.contains("tuning file written"));
        let text = std::fs::read_to_string(&out).unwrap();
        let parsed =
            TuningFile::from_mpich_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(parsed.collectives.len(), 1);
        for ctx in &parsed.collectives[0].contexts {
            assert!(ctx.is_complete() && ctx.is_pruned());
        }
        std::fs::remove_file(&out).ok();
    }
}
