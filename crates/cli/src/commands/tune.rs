//! `acclaim tune` — the Fig. 1(b) job flow: train models for the
//! requested collectives and write the MPICH JSON tuning file.

use crate::args::Args;
use crate::context::{cluster_from, collectives_from, database_from, maybe_save_db, space_from};
use crate::trace::TraceOutputs;
use acclaim_analytic::tune_with_analytic;
use acclaim_core::{
    AcclaimConfig, CollectionPolicy, CollectionStrategy, CriterionConfig, RobustAgg,
};
use acclaim_obs::{Diag, Obs};
use acclaim_store::{tune_with_store, TuningStore};

/// Parse the fault-tolerant collection options into a policy.
fn collection_from(args: &Args) -> Result<CollectionPolicy, String> {
    let mut policy = match args.get("faults") {
        None | Some("none") => CollectionPolicy::default(),
        Some("production") => CollectionPolicy::production(),
        Some(other) => {
            return Err(format!(
                "option --faults: unknown model '{other}' (none | production)"
            ))
        }
    };
    if let Some(n) = args.get_num::<u32>("max-retries")? {
        policy.max_retries = n;
    }
    if let Some(f) = args.get_num::<f64>("bench-timeout-factor")? {
        if f < 1.0 {
            return Err("option --bench-timeout-factor: must be >= 1".into());
        }
        policy.bench_timeout_factor = f;
    }
    if let Some(n) = args.get_num::<u32>("repeats")? {
        if n == 0 {
            return Err("option --repeats: must be >= 1".into());
        }
        policy.repeats = n;
    }
    if let Some(spec) = args.get("robust-agg") {
        policy.agg = RobustAgg::parse(spec).ok_or_else(|| {
            format!("option --robust-agg: unknown aggregation '{spec}' (median | mean)")
        })?;
    }
    Ok(policy)
}

/// Run the subcommand; returns the report printed to stdout.
pub fn run(args: &Args, diag: &Diag) -> Result<String, String> {
    let (obs, outputs) = TraceOutputs::from_args(args)?;
    let cluster = cluster_from(args)?;
    let space = space_from(args, &cluster)?;
    let collectives = collectives_from(args)?;
    let out_path = args.get_or("out", "tuning.json").to_string();

    let mut config = AcclaimConfig::new(space);
    config.learner.seed = args.num_or("seed", config.learner.seed)?;
    if args.flag("sequential") {
        config.learner.strategy = CollectionStrategy::Sequential;
    }
    if let Some(budget) = args.get_num::<usize>("budget")? {
        config.learner.criterion = CriterionConfig::MaxPoints(budget);
    }
    if let Some(iters) = args.get_num::<usize>("max-iterations")? {
        config.learner.max_iterations = iters;
    }
    config.learner.collection = collection_from(args)?;
    // Flat SoA inference is the default scan engine; `--no-flat` falls
    // back to pointer-chasing tree traversal (bit-identical, slower) —
    // useful for A/B timing and as an escape hatch.
    config.learner.flat = !args.flag("no-flat");
    let flat = config.learner.flat;
    let policy = config.learner.collection.clone();

    // Analytical cost-model priors: `--analytic-priors` seeds cold
    // runs with the Hockney/LogGP sketch and prunes guideline
    // violators; `--no-analytic-priors` wins when both are given
    // (same override convention as --no-store), and `--no-prune`
    // keeps the priors but leaves every candidate live.
    config.learner.analytic_priors.enabled =
        args.flag("analytic-priors") && !args.flag("no-analytic-priors");
    if args.flag("no-prune") {
        config.learner.analytic_priors.prune = false;
    }
    if let Some(margin) = args.get_num::<f64>("prune-margin")? {
        if margin < 1.0 {
            return Err("option --prune-margin: must be >= 1".into());
        }
        config.learner.analytic_priors.prune_margin = margin;
    }
    let analytic = config.learner.analytic_priors.enabled;

    // Persistent tuning store: `--store DIR` warm-starts from (and
    // writes back to) a cross-job cache; `--no-store` wins when both
    // are given, so scripts can override an aliased default.
    let store_dir = args
        .get("store")
        .filter(|_| !args.flag("no-store"))
        .map(str::to_string);

    // Fault handling and store traffic are counted through acclaim-obs,
    // so both force the recorder on even without a trace output — the
    // report's counter lines are sourced from the metrics snapshot.
    let obs = if (policy.is_enabled() || store_dir.is_some() || analytic) && !obs.is_enabled() {
        Obs::enabled()
    } else {
        obs
    };
    let db = database_from(args, cluster)?.with_obs(&obs);

    diag.progress(&format!(
        "training {} collective model(s)",
        collectives.len()
    ));
    let tuning = {
        let _span = obs.span("cli", "tune");
        match &store_dir {
            Some(dir) => {
                let store =
                    TuningStore::open(dir).map_err(|e| format!("opening store {dir}: {e}"))?;
                tune_with_store(&store, &config, &db, &collectives, &obs)
                    .map_err(|e| format!("store-backed tuning: {e}"))?
            }
            // The store-less path honors the analytic config too
            // (tune_with_analytic is a literal tune_with_obs when the
            // config is disabled).
            None => tune_with_analytic(&config, &db, &collectives, &obs),
        }
    };
    let json = serde_json::to_string_pretty(&tuning.tuning_file.to_mpich_json())
        .expect("tuning file serializes");
    std::fs::write(&out_path, &json).map_err(|e| format!("writing {out_path}: {e}"))?;
    maybe_save_db(args, &db)?;
    diag.progress(&format!("tuning file written to {out_path}"));

    let mut report = String::new();
    report.push_str(&tuning.summary());
    report.push_str(&format!(
        "variance scan engine: {}\n",
        if flat { "flat (SoA)" } else { "pointer" }
    ));
    if store_dir.is_some() {
        let snap = obs.snapshot();
        let counters: Vec<String> = snap
            .metrics
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("store."))
            .map(|(name, value)| format!("{}={value}", name.trim_start_matches("store.")))
            .collect();
        report.push_str(&format!(
            "store counters (obs): {}\n",
            if counters.is_empty() {
                "none recorded".to_string()
            } else {
                counters.join(" ")
            }
        ));
    }
    if analytic {
        let snap = obs.snapshot();
        let counters: Vec<String> = snap
            .metrics
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("analytic."))
            .map(|(name, value)| format!("{}={value}", name.trim_start_matches("analytic.")))
            .collect();
        report.push_str(&format!(
            "analytic counters (obs): {}\n",
            if counters.is_empty() {
                "none recorded".to_string()
            } else {
                counters.join(" ")
            }
        ));
    }
    if policy.is_enabled() {
        let snap = obs.snapshot();
        let counters: Vec<String> = snap
            .metrics
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("collect."))
            .map(|(name, value)| format!("{}={value}", name.trim_start_matches("collect.")))
            .collect();
        report.push_str(&format!(
            "fault counters (obs): {}\n",
            if counters.is_empty() {
                "none recorded".to_string()
            } else {
                counters.join(" ")
            }
        ));
    }
    report.push_str(&format!("tuning file written to {out_path}\n"));
    for line in outputs.write(&obs)? {
        report.push_str(&line);
        report.push('\n');
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;
    use acclaim_core::TuningFile;

    fn tune_args(extra: &[&str], out: &std::path::Path) -> Args {
        let mut tokens = vec![
            "tune",
            "--nodes",
            "8",
            "--ppn",
            "2",
            "--max-msg",
            "4096",
            "--min-msg",
            "64",
            "--collectives",
            "reduce",
            "--budget",
            "20",
            "--max-iterations",
            "10",
            "--out",
            out.to_str().unwrap(),
        ];
        tokens.extend_from_slice(extra);
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn tune_writes_a_parseable_tuning_file() {
        let out = std::env::temp_dir().join("acclaim-cli-tune-test.json");
        let _ = std::fs::remove_file(&out);
        let args = tune_args(&[], &out);
        let report = run(&args, &Diag::new(true)).unwrap();
        assert!(report.contains("reduce"));
        assert!(report.contains("tuning file written"));
        assert!(report.contains("cost split"));
        let text = std::fs::read_to_string(&out).unwrap();
        let parsed =
            TuningFile::from_mpich_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(parsed.collectives.len(), 1);
        for ctx in &parsed.collectives[0].contexts {
            assert!(ctx.is_complete() && ctx.is_pruned());
        }
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn tune_with_production_faults_reports_obs_counters() {
        let out = std::env::temp_dir().join("acclaim-cli-tune-faults-test.json");
        let _ = std::fs::remove_file(&out);
        let args = tune_args(&["--faults", "production"], &out);
        let report = run(&args, &Diag::new(true)).unwrap();
        // The counter line is sourced from the acclaim-obs snapshot and
        // must be present (the recorder is forced on by --faults).
        assert!(
            report.contains("fault counters (obs):"),
            "missing fault counter line:\n{report}"
        );
        assert!(report.contains("retries="), "missing retries:\n{report}");
        let text = std::fs::read_to_string(&out).unwrap();
        let parsed =
            TuningFile::from_mpich_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(parsed.collectives.len(), 1);
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn tune_with_store_warm_starts_the_second_run() {
        let out = std::env::temp_dir().join("acclaim-cli-tune-store-test.json");
        let dir = std::env::temp_dir().join("acclaim-cli-tune-store-test-cache");
        std::fs::remove_dir_all(&dir).ok();
        let store_args = ["--store", dir.to_str().unwrap()];
        let cold = run(&tune_args(&store_args, &out), &Diag::new(true)).unwrap();
        assert!(
            cold.contains("store counters (obs):") && cold.contains("misses=1"),
            "first run should miss:\n{cold}"
        );
        let warm = run(&tune_args(&store_args, &out), &Diag::new(true)).unwrap();
        assert!(
            warm.contains("exact_hits=1") && warm.contains("points_reused="),
            "second run should hit:\n{warm}"
        );
        // --no-store overrides --store and silences the counter line.
        let off = run(
            &tune_args(&["--store", dir.to_str().unwrap(), "--no-store"], &out),
            &Diag::new(true),
        )
        .unwrap();
        assert!(!off.contains("store counters"), "{off}");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn analytic_priors_report_their_counters() {
        let out = std::env::temp_dir().join("acclaim-cli-tune-analytic-test.json");
        let report = run(&tune_args(&["--analytic-priors"], &out), &Diag::new(true)).unwrap();
        assert!(
            report.contains("analytic counters (obs):") && report.contains("priors_injected="),
            "missing analytic counter line:\n{report}"
        );
        assert!(report.contains("candidates_pruned="), "{report}");
        // --no-analytic-priors wins over --analytic-priors, silencing
        // the counter line (the run is bit-identical to a plain tune).
        let off = run(
            &tune_args(&["--analytic-priors", "--no-analytic-priors"], &out),
            &Diag::new(true),
        )
        .unwrap();
        assert!(!off.contains("analytic counters"), "{off}");
        // --no-prune keeps the priors but retires nothing.
        let noprune = run(
            &tune_args(&["--analytic-priors", "--no-prune"], &out),
            &Diag::new(true),
        )
        .unwrap();
        assert!(noprune.contains("priors_injected="), "{noprune}");
        assert!(!noprune.contains("candidates_pruned="), "{noprune}");
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn no_flat_falls_back_to_the_pointer_engine() {
        let out = std::env::temp_dir().join("acclaim-cli-tune-noflat-test.json");
        let report = run(&tune_args(&[], &out), &Diag::new(true)).unwrap();
        assert!(report.contains("variance scan engine: flat (SoA)"), "{report}");
        let report = run(&tune_args(&["--no-flat"], &out), &Diag::new(true)).unwrap();
        assert!(report.contains("variance scan engine: pointer"), "{report}");
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn tune_rejects_bad_fault_options() {
        let out = std::env::temp_dir().join("acclaim-cli-tune-badfaults-test.json");
        for bad in [
            &["--faults", "chaos"][..],
            &["--robust-agg", "mode"][..],
            &["--repeats", "0"][..],
            &["--bench-timeout-factor", "0.5"][..],
        ] {
            let args = tune_args(bad, &out);
            let e = run(&args, &Diag::new(true)).unwrap_err();
            assert!(e.contains("option --"), "bad error for {bad:?}: {e}");
        }
    }

    #[test]
    fn tune_trace_covers_all_instrumented_layers() {
        let out = std::env::temp_dir().join("acclaim-cli-tune-trace-test.json");
        let trace = std::env::temp_dir().join("acclaim-cli-tune-trace-test.jsonl");
        let _ = std::fs::remove_file(&trace);
        let args = tune_args(&["--trace-out", trace.to_str().unwrap()], &out);
        let report = run(&args, &Diag::new(true)).unwrap();
        assert!(report.contains("trace (jsonl) written"));
        let text = std::fs::read_to_string(&trace).unwrap();
        acclaim_obs::schema::validate_trace(&text).unwrap();
        // The trace must cover all four instrumented layers: the CLI,
        // the learner loop, the collection scheduler (sim-timeline slot
        // spans), and the network simulator.
        for needle in [
            "\"cat\":\"cli\"",
            "\"cat\":\"learner\"",
            "\"cat\":\"collect\"",
            "\"cat\":\"netsim\"",
            "netsim.roundsim.rounds",
            "learner.non_p2_injections",
        ] {
            assert!(text.contains(needle), "{needle} missing from trace");
        }
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn tune_chrome_trace_is_valid_json() {
        let out = std::env::temp_dir().join("acclaim-cli-tune-chrome-test.json");
        let trace = std::env::temp_dir().join("acclaim-cli-tune-chrome-test.trace");
        let args = tune_args(
            &[
                "--trace-out",
                trace.to_str().unwrap(),
                "--trace-format",
                "chrome",
            ],
            &out,
        );
        let report = run(&args, &Diag::new(true)).unwrap();
        assert!(report.contains("trace (chrome) written"));
        let text = std::fs::read_to_string(&trace).unwrap();
        // Top-level JSON array form of the trace_event format.
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        match v {
            serde_json::Value::Array(events) => assert!(events.len() > 10),
            other => panic!("expected an event array, got {other:?}"),
        }
        std::fs::remove_file(&out).ok();
        std::fs::remove_file(&trace).ok();
    }
}
