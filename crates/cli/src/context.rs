//! Shared construction of machines, spaces, and databases from CLI
//! options.

use crate::args::Args;
use acclaim_collectives::{Collective, MicrobenchConfig};
use acclaim_dataset::{BenchmarkDatabase, DatasetConfig, FeatureSpace};
use acclaim_netsim::{Allocation, Cluster, NoiseModel};

/// Build the cluster selected by `--machine` (`bebop` | `theta`),
/// restricted to `--nodes` and with `--latency-factor` applied.
pub fn cluster_from(args: &Args) -> Result<Cluster, String> {
    let machine = args.get_or("machine", "bebop");
    let base = match machine {
        "bebop" => Cluster::bebop_like(),
        "theta" => Cluster::theta_like(),
        other => return Err(format!("unknown machine '{other}' (bebop | theta)")),
    };
    let nodes: u32 = args.num_or("nodes", base.num_nodes())?;
    if nodes == 0 || nodes > base.num_nodes() {
        return Err(format!(
            "--nodes must be in 1..={} for {machine}",
            base.num_nodes()
        ));
    }
    let factor: f64 = args.num_or("latency-factor", 1.0)?;
    if factor < 1.0 {
        return Err("--latency-factor must be >= 1.0".into());
    }
    let alloc = Allocation::contiguous(&base.topology, nodes);
    Ok(base.with_allocation(alloc).with_job_latency_factor(factor))
}

/// Build the P2 feature space bounded by the job: nodes up to the
/// allocation, ppn up to `--ppn`, messages up to `--max-msg`.
pub fn space_from(args: &Args, cluster: &Cluster) -> Result<FeatureSpace, String> {
    let max_ppn: u32 = args.num_or("ppn", 16)?;
    let max_msg: u64 = args.num_or("max-msg", 1 << 20)?;
    let min_msg: u64 = args.num_or("min-msg", 8)?;
    if max_ppn == 0 || max_msg < min_msg {
        return Err("--ppn must be positive and --max-msg >= --min-msg".into());
    }
    let p2_up_to = |hi: u64| -> Vec<u64> {
        let mut v = Vec::new();
        let mut x = 1u64;
        while x <= hi {
            v.push(x);
            x *= 2;
        }
        v
    };
    Ok(FeatureSpace::new(
        p2_up_to(cluster.num_nodes() as u64)
            .into_iter()
            .filter(|&n| n >= 2)
            .map(|n| n as u32)
            .collect(),
        p2_up_to(max_ppn as u64).into_iter().map(|p| p as u32).collect(),
        p2_up_to(max_msg).into_iter().filter(|&m| m >= min_msg).collect(),
    ))
}

/// Build (or load via `--db`) the benchmark database.
pub fn database_from(args: &Args, cluster: Cluster) -> Result<BenchmarkDatabase, String> {
    if let Some(path) = args.get("db") {
        let p = std::path::Path::new(path);
        if p.exists() {
            return BenchmarkDatabase::load(p).map_err(|e| format!("loading {path}: {e}"));
        }
    }
    let seed: u64 = args.num_or("seed", 0xACC1A1)?;
    Ok(BenchmarkDatabase::new(DatasetConfig {
        cluster,
        bench: MicrobenchConfig::default(),
        noise: NoiseModel::production(),
        seed,
    }))
}

/// Persist the database cache back to `--db`, if requested.
pub fn maybe_save_db(args: &Args, db: &BenchmarkDatabase) -> Result<(), String> {
    if let Some(path) = args.get("db") {
        db.save(std::path::Path::new(path))
            .map_err(|e| format!("saving {path}: {e}"))?;
    }
    Ok(())
}

/// Parse `--collectives a,b,c` (default: all four).
pub fn collectives_from(args: &Args) -> Result<Vec<Collective>, String> {
    match args.list("collectives") {
        None => Ok(Collective::ALL.to_vec()),
        Some(names) => names
            .iter()
            .map(|n| {
                Collective::parse(n).ok_or_else(|| {
                    format!(
                        "unknown collective '{n}' (allgather | allreduce | bcast | reduce)"
                    )
                })
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn default_cluster_is_bebop() {
        let c = cluster_from(&args(&[])).unwrap();
        assert_eq!(c.num_nodes(), 64);
        assert_eq!(c.job_latency_factor, 1.0);
    }

    #[test]
    fn theta_with_nodes_and_latency() {
        let c = cluster_from(&args(&[
            "x",
            "--machine",
            "theta",
            "--nodes",
            "32",
            "--latency-factor",
            "1.5",
        ]))
        .unwrap();
        assert_eq!(c.num_nodes(), 32);
        assert_eq!(c.job_latency_factor, 1.5);
    }

    #[test]
    fn bad_machine_and_oversized_nodes_rejected() {
        assert!(cluster_from(&args(&["x", "--machine", "fugaku"])).is_err());
        assert!(cluster_from(&args(&["x", "--nodes", "4096"])).is_err());
    }

    #[test]
    fn space_is_bounded_by_job() {
        let c = cluster_from(&args(&["x", "--nodes", "16"])).unwrap();
        let s = space_from(
            &args(&["x", "--ppn", "8", "--max-msg", "65536", "--min-msg", "64"]),
            &c,
        )
        .unwrap();
        assert_eq!(s.max_nodes(), 16);
        assert_eq!(*s.ppns.last().unwrap(), 8);
        assert_eq!(*s.msg_sizes.last().unwrap(), 65_536);
        assert_eq!(*s.msg_sizes.first().unwrap(), 64);
    }

    #[test]
    fn collectives_parse_and_default() {
        assert_eq!(collectives_from(&args(&[])).unwrap().len(), 4);
        let two = collectives_from(&args(&["x", "--collectives", "bcast,reduce"])).unwrap();
        assert_eq!(two, vec![Collective::Bcast, Collective::Reduce]);
        assert!(collectives_from(&args(&["x", "--collectives", "gather"])).is_err());
    }

    #[test]
    fn database_save_and_reload_via_db_option() {
        let path = std::env::temp_dir().join("acclaim-cli-db-test.json");
        let _ = std::fs::remove_file(&path);
        let a = args(&["x", "--nodes", "4", "--db", path.to_str().unwrap()]);
        let cluster = cluster_from(&a).unwrap();
        let db = database_from(&a, cluster.clone()).unwrap();
        let t = db.time(
            acclaim_collectives::Algorithm::BcastBinomial,
            acclaim_dataset::Point::new(2, 1, 64),
        );
        maybe_save_db(&a, &db).unwrap();
        let db2 = database_from(&a, cluster).unwrap();
        assert_eq!(db2.len(), 1);
        let t2 = db2.time(
            acclaim_collectives::Algorithm::BcastBinomial,
            acclaim_dataset::Point::new(2, 1, 64),
        );
        assert!((t - t2).abs() < 1e-9);
        std::fs::remove_file(&path).ok();
    }
}
