//! `acclaim` — command-line interface to the ACCLAiM collective
//! autotuner reproduction.
//!
//! ```text
//! acclaim tune       --machine theta --nodes 32 --ppn 16 --collectives bcast,allreduce \
//!                    --out tuning.json [--db cache.json] [--budget N] [--sequential] \
//!                    [--store DIR | --no-store] [--analytic-priors]
//! acclaim analytic   predict --machine bebop --nodes 8 --ppn 4 --msg 65536
//! acclaim selections --tuning tuning.json --collective bcast --nodes 16 --ppn 8
//! acclaim simulate   --machine bebop --nodes 16 --ppn 4 --collective reduce --msg 262144
//! acclaim store      ls|gc|export|import --store DIR [--out FILE] [--in FILE]
//! acclaim serve      --store DIR [--socket PATH] [--workers N] [--slots N]
//! acclaim client     --socket PATH --op tune|query|stats|shutdown | --load N
//! acclaim traces
//! ```
//!
//! `tune` runs the full Fig. 1(b) pipeline on the simulated machine and
//! writes the MPICH-style JSON tuning file; `selections` shows what that
//! file (or the MPICH default heuristic) picks; `simulate` prices every
//! algorithm at one point; `store` inspects and maintains the
//! persistent cross-job tuning store; `serve` runs the tuning daemon on
//! a Unix socket with `client` as its matching client (including a
//! deterministic `--load` generator); `traces` summarizes the synthetic
//! application traces.

mod args;
mod commands;
mod context;
mod trace;

use acclaim_obs::Diag;
use args::Args;

const USAGE: &str = "\
usage: acclaim <command> [options]

common options:
  --quiet                suppress progress notes on stderr
  --trace-out FILE       write a structured trace (tune, simulate)
  --trace-format FMT     jsonl (default) | chrome (chrome://tracing)
  --metrics-out FILE     write counters/gauges/histograms as JSONL

commands:
  tune        train ACCLAiM and write an MPICH JSON tuning file
              --machine bebop|theta  --nodes N  --ppn N  --max-msg BYTES
              --collectives a,b,c    --out FILE [--db FILE] [--seed N]
              [--budget POINTS] [--max-iterations N] [--sequential]
              [--latency-factor F]
              [--faults none|production] [--max-retries N] [--repeats N]
              [--bench-timeout-factor F] [--robust-agg median|mean]
              [--store DIR] [--no-store] [--no-flat]
              [--analytic-priors] [--no-analytic-priors] [--no-prune]
              [--prune-margin F]
              (--store warm-starts from and persists to a cross-job
               tuning store; --no-store wins when both are given;
               --no-flat uses pointer-chasing tree traversal for the
               variance scan instead of the flat SoA engine;
               --analytic-priors seeds cold runs with Hockney/LogGP
               cost-model predictions and prunes guideline violators —
               --no-analytic-priors wins when both are given,
               --no-prune keeps every candidate live, --prune-margin
               sets the violation threshold)
  analytic    inspect the analytical cost-model catalog
              predict --machine bebop|theta --nodes N --ppn N
                      [--msg BYTES] [--collective NAME]
                      [--prune-margin F] [--latency-factor F]
              (prints each algorithm's predicted cost, the derived
               alpha/beta/gamma parameters, and the guideline verdicts
               at the given margin)
  selections  print the selections of a tuning file (or the defaults)
              [--tuning FILE] --collective NAME --nodes N --ppn N
              [--min-msg B --max-msg B]
  simulate    price every algorithm of a collective at one point
              --machine bebop|theta --nodes N --ppn N --collective NAME
              --msg BYTES [--latency-factor F] [--engine rounds|flows]
  store       inspect/maintain a persistent tuning store
              ls     --store DIR        list cached entries
              gc     --store DIR        drop corrupt/foreign-version files
              export --store DIR --out FILE   bundle entries to one file
              import --store DIR --in FILE    merge a bundle (local wins)
  serve       run the tuning-as-a-service daemon on a local socket
              --store DIR [--socket PATH] [--workers N] [--slots N]
              [--shards N] [--format json|binary]
              [--flight N] [--slow-log FACTOR]
              [--drift-band F] [--drift-min-obs N] [--drift-cooldown N]
              [--drift-deweight F] [--drift-max-signatures N]
              (runs until a client sends shutdown; prints serve.*
               counters, gauges, and phase-latency quantiles on exit;
               --slow-log warns on requests slower than FACTOR x the
               running median; the --drift-* options arm the observed-
               cost drift watch and its warm re-tune trigger)
  client      talk to a running daemon over line-delimited JSON
              --socket PATH [--wait-server SECS]
              <op> or --op OP, where OP is
                tune|query|stats|shutdown
                  [--pool N] [--pool-index I] [--seed N]
                  [--priority low|normal|high] [--nodes N --ppn N --msg B]
                metrics  scrape live metrics [--json]
                trace    dump recent flight records [--last N] [--json]
                observe  feed observed costs to the drift watch
                  [--pool-index I] [--count N] [--factor F]
                drift    print the drift watch's tracked signatures
                watch    refreshing live summary
                  [--refresh N] [--interval-ms MS]
              --load N  drive N deterministic tune sessions
                [--clients N] [--pool N] [--seed N] [--queries N]
  traces      summarize the synthetic application traces [--max-msg B]
";

fn dispatch(args: Args, diag: &Diag) -> Result<String, String> {
    // Only `store`, `client`, and `analytic` take an action positional.
    if !matches!(
        args.command.as_deref(),
        Some("store") | Some("client") | Some("analytic")
    ) {
        if let Some(action) = &args.action {
            return Err(format!("unexpected positional argument '{action}'"));
        }
    }
    match args.command.as_deref() {
        Some("tune") => commands::tune::run(&args, diag),
        Some("analytic") => commands::analytic::run(&args, diag),
        Some("selections") => commands::selections::run(&args, diag),
        Some("simulate") => commands::simulate::run(&args, diag),
        Some("store") => commands::store::run(&args, diag),
        Some("serve") => commands::serve::serve(&args, diag),
        Some("client") => commands::serve::client(&args, diag),
        Some("traces") => commands::traces::run(&args, diag),
        Some(other) => Err(format!("unknown command '{other}'\n\n{USAGE}")),
        None => Err(USAGE.to_string()),
    }
}

fn main() {
    let parsed = Args::parse(std::env::args().skip(1));
    let diag = Diag::new(parsed.as_ref().map(|a| a.flag("quiet")).unwrap_or(false));
    let outcome = parsed.and_then(|a| dispatch(a, &diag));
    match outcome {
        Ok(report) => print!("{report}"),
        Err(message) => {
            diag.error(&message);
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(tokens: &[&str]) -> Result<String, String> {
        let args = Args::parse(tokens.iter().map(|s| s.to_string())).unwrap();
        dispatch(args, &Diag::new(true))
    }

    #[test]
    fn unknown_command_shows_usage() {
        let e = run(&["frobnicate"]).unwrap_err();
        assert!(e.contains("unknown command"));
        assert!(e.contains("usage:"));
    }

    #[test]
    fn no_command_shows_usage() {
        let e = run(&[]).unwrap_err();
        assert!(e.starts_with("usage:"));
    }

    #[test]
    fn traces_command_dispatches() {
        assert!(run(&["traces"]).unwrap().contains("AMG"));
    }
}
