//! Observability wiring shared by the subcommands: `--trace-out PATH`,
//! `--metrics-out PATH`, and `--trace-format jsonl|chrome`.
//!
//! Recording is opt-in: the recorder is enabled (wall clock) only when
//! at least one output path was requested, so untraced runs keep the
//! disabled-handle fast path everywhere.

use crate::args::Args;
use acclaim_obs::{export, Obs, TraceSnapshot};

/// Parsed trace/metrics output options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceOutputs {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    chrome: bool,
}

impl TraceOutputs {
    /// Parse the shared tracing options and build the recorder for the
    /// command: enabled iff any output was requested.
    pub fn from_args(args: &Args) -> Result<(Obs, TraceOutputs), String> {
        let trace_out = args.get("trace-out").map(str::to_string);
        let metrics_out = args.get("metrics-out").map(str::to_string);
        let chrome = match args.get_or("trace-format", "jsonl") {
            "jsonl" => false,
            "chrome" => true,
            other => {
                return Err(format!(
                    "unknown --trace-format '{other}' (jsonl | chrome)"
                ))
            }
        };
        let obs = if trace_out.is_some() || metrics_out.is_some() {
            Obs::enabled()
        } else {
            Obs::disabled()
        };
        Ok((
            obs,
            TraceOutputs {
                trace_out,
                metrics_out,
                chrome,
            },
        ))
    }

    /// Write the requested files from a snapshot of `obs` and return
    /// one report line per file. Call after every span has closed.
    pub fn write(&self, obs: &Obs) -> Result<Vec<String>, String> {
        let mut written = Vec::new();
        if self.trace_out.is_none() && self.metrics_out.is_none() {
            return Ok(written);
        }
        let snap = obs.snapshot();
        if let Some(path) = &self.trace_out {
            let (body, format) = if self.chrome {
                (export::to_chrome(&snap), "chrome")
            } else {
                (export::to_jsonl(&snap), "jsonl")
            };
            std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
            written.push(format!("trace ({format}) written to {path}"));
        }
        if let Some(path) = &self.metrics_out {
            // Metrics-only JSONL: same schema, no span lines.
            let metrics_only = TraceSnapshot {
                clock: snap.clock,
                spans: Vec::new(),
                metrics: snap.metrics.clone(),
            };
            std::fs::write(path, export::to_jsonl(&metrics_only))
                .map_err(|e| format!("writing {path}: {e}"))?;
            written.push(format!("metrics written to {path}"));
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn no_output_options_mean_a_disabled_recorder() {
        let (obs, outs) = TraceOutputs::from_args(&args(&["tune"])).unwrap();
        assert!(!obs.is_enabled());
        assert_eq!(outs.write(&obs).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn trace_out_enables_recording_and_writes_valid_jsonl() {
        let path = std::env::temp_dir().join("acclaim-cli-trace-test.jsonl");
        let a = args(&["tune", "--trace-out", path.to_str().unwrap()]);
        let (obs, outs) = TraceOutputs::from_args(&a).unwrap();
        assert!(obs.is_enabled());
        {
            let _span = obs.span("cli", "test");
        }
        let lines = outs.write(&obs).unwrap();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("jsonl"));
        let text = std::fs::read_to_string(&path).unwrap();
        acclaim_obs::schema::validate_trace(&text).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_trace_format_is_rejected() {
        let e = TraceOutputs::from_args(&args(&["tune", "--trace-format", "svg"])).unwrap_err();
        assert!(e.contains("svg"));
    }

    #[test]
    fn metrics_out_writes_metrics_without_spans() {
        let path = std::env::temp_dir().join("acclaim-cli-metrics-test.jsonl");
        let a = args(&["tune", "--metrics-out", path.to_str().unwrap()]);
        let (obs, outs) = TraceOutputs::from_args(&a).unwrap();
        obs.incr_counter("cli.test", 3);
        {
            let _span = obs.span("cli", "not-in-metrics");
        }
        outs.write(&obs).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        acclaim_obs::schema::validate_trace(&text).unwrap();
        assert!(text.contains("cli.test"));
        assert!(!text.contains("not-in-metrics"));
        std::fs::remove_file(&path).ok();
    }
}
