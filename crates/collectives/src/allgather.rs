//! The three MPICH `MPI_Allgather` algorithms.
//!
//! * [`AllgatherRing`] — n-1 neighbor rounds; bandwidth-optimal,
//!   latency-heavy, insensitive to P2 structure.
//! * [`AllgatherRecursiveDoubling`] — log2(p) exchange rounds with
//!   doubling payloads; P2-favoring (non-P2 counts pay a full-buffer
//!   unfold).
//! * [`AllgatherBrucks`] — ceil(log2 n) rounds for any n, at the price of
//!   a final local rotation of the whole gathered buffer.
//!
//! Message size semantics follow the OSU benchmarks: `bytes` is the
//! **per-rank contribution**, so every rank ends with `n * bytes`.

use crate::blocks::{pad_to_power_of_two, prev_power_of_two};
use acclaim_netsim::{Msg, Schedule};

/// Ring allgather.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllgatherRing {
    ranks: u32,
    bytes: u64,
}

impl AllgatherRing {
    /// Allgather with `bytes` contributed per rank.
    pub fn new(ranks: u32, bytes: u64) -> Self {
        assert!(ranks >= 1);
        AllgatherRing { ranks, bytes }
    }
}

impl Schedule for AllgatherRing {
    fn num_ranks(&self) -> u32 {
        self.ranks
    }

    fn visit_rounds(&self, visit: &mut dyn FnMut(&[Msg])) {
        let n = self.ranks;
        if n <= 1 {
            return;
        }
        let mut buf: Vec<Msg> = Vec::with_capacity(n as usize);
        for _ in 0..n - 1 {
            buf.clear();
            for i in 0..n {
                buf.push(Msg::data(i, (i + 1) % n, self.bytes));
            }
            visit(&buf);
        }
    }
}

/// Recursive-doubling allgather (P2-favoring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllgatherRecursiveDoubling {
    ranks: u32,
    bytes: u64,
}

impl AllgatherRecursiveDoubling {
    /// Allgather with `bytes` contributed per rank.
    pub fn new(ranks: u32, bytes: u64) -> Self {
        assert!(ranks >= 1);
        AllgatherRecursiveDoubling { ranks, bytes }
    }
}

impl Schedule for AllgatherRecursiveDoubling {
    fn num_ranks(&self) -> u32 {
        self.ranks
    }

    fn visit_rounds(&self, visit: &mut dyn FnMut(&[Msg])) {
        let n = self.ranks;
        if n <= 1 {
            return;
        }
        let p = prev_power_of_two(n);
        let r = n - p;
        let mut buf: Vec<Msg> = Vec::new();

        // Fold: remainder ranks lend their contribution to a partner.
        if r > 0 {
            buf.clear();
            for i in 0..r {
                buf.push(Msg::data(p + i, i, self.bytes));
            }
            visit(&buf);
        }

        let mut held: Vec<u64> = (0..p)
            .map(|i| self.bytes * if i < r { 2 } else { 1 })
            .collect();
        let mut snapshot = held.clone();
        let mut s = 1;
        while s < p {
            buf.clear();
            for i in 0..p {
                // Doubling exchange: ragged blocks travel padded to P2.
                buf.push(Msg::data(i, i ^ s, pad_to_power_of_two(held[i as usize])));
            }
            visit(&buf);
            snapshot.copy_from_slice(&held);
            for i in 0..p as usize {
                held[i] += snapshot[i ^ s as usize];
            }
            s <<= 1;
        }

        // Unfold: remainder ranks need the entire gathered buffer.
        if r > 0 {
            buf.clear();
            for i in 0..r {
                buf.push(Msg::data(i, p + i, self.bytes * n as u64));
            }
            visit(&buf);
        }
    }
}

/// Bruck's allgather: any rank count in ceil(log2 n) rounds, plus a
/// final local rotation of the whole gathered buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllgatherBrucks {
    ranks: u32,
    bytes: u64,
}

impl AllgatherBrucks {
    /// Allgather with `bytes` contributed per rank.
    pub fn new(ranks: u32, bytes: u64) -> Self {
        assert!(ranks >= 1);
        AllgatherBrucks { ranks, bytes }
    }
}

impl Schedule for AllgatherBrucks {
    fn num_ranks(&self) -> u32 {
        self.ranks
    }

    fn visit_rounds(&self, visit: &mut dyn FnMut(&[Msg])) {
        let n = self.ranks;
        if n <= 1 {
            return;
        }
        let mut buf: Vec<Msg> = Vec::with_capacity(n as usize);
        let mut s = 1;
        while s < n {
            buf.clear();
            let chunk = self.bytes * s.min(n - s) as u64;
            for i in 0..n {
                buf.push(Msg::data(i, (i + n - s) % n, chunk));
            }
            visit(&buf);
            s <<= 1;
        }
    }

    fn epilogue_local_bytes(&self) -> u64 {
        if self.ranks <= 1 {
            0
        } else {
            self.bytes * self.ranks as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::received_bytes_per_rank;
    use crate::blocks::ceil_log2;
    use acclaim_netsim::Schedule;
    use proptest::prelude::*;

    #[test]
    fn ring_round_and_byte_counts() {
        for n in [2u32, 3, 7, 8, 12] {
            let s = AllgatherRing::new(n, 500).materialize();
            s.validate().unwrap();
            assert_eq!(s.rounds.len() as u32, n - 1, "n={n}");
            let recv = received_bytes_per_rank(&s);
            assert!(
                recv.iter().all(|&b| b == 500 * (n as u64 - 1)),
                "n={n}: {recv:?}"
            );
        }
    }

    #[test]
    fn rd_p2_doubles_payloads() {
        let s = AllgatherRecursiveDoubling::new(8, 1_024).materialize();
        s.validate().unwrap();
        assert_eq!(s.rounds.len(), 3);
        let sizes: Vec<u64> = s
            .rounds
            .iter()
            .map(|r| r.iter().map(|m| m.bytes).max().unwrap())
            .collect();
        assert_eq!(sizes, vec![1_024, 2_048, 4_096]);
    }

    #[test]
    fn rd_pads_ragged_blocks_to_p2() {
        // Non-P2 contribution: every doubling exchange ships the padded
        // block, the structural non-P2 penalty of Sec. III-B.
        let s = AllgatherRecursiveDoubling::new(8, 1_000).materialize();
        let sizes: Vec<u64> = s
            .rounds
            .iter()
            .map(|r| r.iter().map(|m| m.bytes).max().unwrap())
            .collect();
        assert_eq!(sizes, vec![1_024, 2_048, 4_096]);
        // The ring pays no such penalty.
        let ring = AllgatherRing::new(8, 1_000).materialize();
        assert!(ring.rounds.iter().all(|r| r.iter().all(|m| m.bytes == 1_000)));
    }

    #[test]
    fn rd_nonp2_unfold_ships_whole_buffer() {
        let n = 9u32;
        let s = AllgatherRecursiveDoubling::new(n, 1_000).materialize();
        let last = s.rounds.last().unwrap();
        assert_eq!(last.len(), 1);
        assert_eq!(last[0].bytes, 1_000 * n as u64);
    }

    #[test]
    fn brucks_handles_nonp2_in_log_rounds() {
        for n in [3u32, 5, 9, 13, 17] {
            let s = AllgatherBrucks::new(n, 100).materialize();
            s.validate().unwrap();
            assert_eq!(s.rounds.len() as u32, ceil_log2(n), "n={n}");
        }
    }

    #[test]
    fn brucks_epilogue_rotates_whole_buffer() {
        let b = AllgatherBrucks::new(10, 2_000);
        assert_eq!(b.epilogue_local_bytes(), 20_000);
        assert_eq!(AllgatherBrucks::new(1, 2_000).epilogue_local_bytes(), 0);
        assert_eq!(b.materialize().epilogue_local_bytes, 20_000);
    }

    #[test]
    fn brucks_last_round_is_partial_for_nonp2() {
        let n = 5u32;
        let m = 100u64;
        let s = AllgatherBrucks::new(n, m).materialize();
        // Rounds exchange 1, 2, then n-4=1 blocks.
        let sizes: Vec<u64> = s
            .rounds
            .iter()
            .map(|r| r.iter().map(|m| m.bytes).max().unwrap())
            .collect();
        assert_eq!(sizes, vec![100, 200, 100]);
    }

    #[test]
    fn everyone_collects_everything() {
        for n in [2u32, 4, 8, 16] {
            let m = 700u64;
            for (name, sched) in [
                ("ring", AllgatherRing::new(n, m).materialize()),
                ("rd", AllgatherRecursiveDoubling::new(n, m).materialize()),
                ("brucks", AllgatherBrucks::new(n, m).materialize()),
            ] {
                let recv = received_bytes_per_rank(&sched);
                for (rank, &b) in recv.iter().enumerate() {
                    assert!(
                        b >= m * (n as u64 - 1),
                        "{name} n={n} rank {rank}: {b} bytes"
                    );
                }
            }
        }
    }

    proptest! {
        #[test]
        fn allgather_schedules_validate(n in 1u32..40, m in 0u64..100_000) {
            AllgatherRing::new(n, m).materialize().validate().unwrap();
            AllgatherRecursiveDoubling::new(n, m).materialize().validate().unwrap();
            AllgatherBrucks::new(n, m).materialize().validate().unwrap();
        }

        #[test]
        fn all_algorithms_gather_full_data(n in 2u32..32, m in 1u64..50_000) {
            for sched in [
                AllgatherRing::new(n, m).materialize(),
                AllgatherRecursiveDoubling::new(n, m).materialize(),
                AllgatherBrucks::new(n, m).materialize(),
            ] {
                let recv = received_bytes_per_rank(&sched);
                for (rank, &b) in recv.iter().enumerate() {
                    prop_assert!(
                        b >= m * (n as u64 - 1),
                        "rank {} received {} (need {})", rank, b, m * (n as u64 - 1)
                    );
                }
            }
        }
    }
}
