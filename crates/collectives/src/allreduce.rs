//! The two MPICH `MPI_Allreduce` algorithms.
//!
//! * [`AllreduceRecursiveDoubling`] — log2(p) exchange rounds of the full
//!   vector; latency-optimal, bandwidth-heavy. Non-P2 rank counts pay
//!   fold rounds.
//! * [`AllreduceReduceScatterAllgather`] — Rabenseifner's algorithm:
//!   recursive-halving reduce-scatter followed by recursive-doubling
//!   allgather; bandwidth-optimal for large vectors.
//!
//! `bytes` is the full reduction payload.

use crate::blocks::{pad_to_power_of_two, prev_power_of_two, Blocks};
use acclaim_netsim::{Msg, Schedule};

/// Emit the fold round for non-P2 rank counts: ranks `p..n` contribute
/// their whole vector to partner `i - p`. Returns the remainder count.
fn fold_in(n: u32, p: u32, bytes: u64, buf: &mut Vec<Msg>, visit: &mut dyn FnMut(&[Msg])) -> u32 {
    let r = n - p;
    if r > 0 {
        buf.clear();
        for i in 0..r {
            buf.push(Msg::reducing(p + i, i, bytes));
        }
        visit(buf);
    }
    r
}

/// Emit the unfold round: partners return the finished `bytes`-sized
/// result to the remainder ranks.
fn fold_out(p: u32, r: u32, bytes: u64, buf: &mut Vec<Msg>, visit: &mut dyn FnMut(&[Msg])) {
    if r > 0 {
        buf.clear();
        for i in 0..r {
            buf.push(Msg::data(i, p + i, bytes));
        }
        visit(buf);
    }
}

/// Recursive-doubling allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllreduceRecursiveDoubling {
    ranks: u32,
    bytes: u64,
}

impl AllreduceRecursiveDoubling {
    /// Allreduce `bytes` over `ranks` ranks.
    pub fn new(ranks: u32, bytes: u64) -> Self {
        assert!(ranks >= 1);
        AllreduceRecursiveDoubling { ranks, bytes }
    }
}

impl Schedule for AllreduceRecursiveDoubling {
    fn num_ranks(&self) -> u32 {
        self.ranks
    }

    fn visit_rounds(&self, visit: &mut dyn FnMut(&[Msg])) {
        let n = self.ranks;
        if n <= 1 {
            return;
        }
        let p = prev_power_of_two(n);
        let mut buf: Vec<Msg> = Vec::new();
        let r = fold_in(n, p, self.bytes, &mut buf, visit);

        let mut s = 1;
        while s < p {
            buf.clear();
            for i in 0..p {
                buf.push(Msg::reducing(i, i ^ s, self.bytes));
            }
            visit(&buf);
            s <<= 1;
        }

        fold_out(p, r, self.bytes, &mut buf, visit);
    }
}

/// Rabenseifner's reduce-scatter + allgather allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllreduceReduceScatterAllgather {
    ranks: u32,
    bytes: u64,
}

impl AllreduceReduceScatterAllgather {
    /// Allreduce `bytes` over `ranks` ranks.
    pub fn new(ranks: u32, bytes: u64) -> Self {
        assert!(ranks >= 1);
        AllreduceReduceScatterAllgather { ranks, bytes }
    }
}

impl Schedule for AllreduceReduceScatterAllgather {
    fn num_ranks(&self) -> u32 {
        self.ranks
    }

    fn visit_rounds(&self, visit: &mut dyn FnMut(&[Msg])) {
        let n = self.ranks;
        if n <= 1 {
            return;
        }
        let p = prev_power_of_two(n);
        let blocks = Blocks::new(self.bytes, p);
        let mut buf: Vec<Msg> = Vec::new();
        let r = fold_in(n, p, self.bytes, &mut buf, visit);

        // Recursive-halving reduce-scatter: rank i ends owning block i.
        let mut lo: Vec<u32> = vec![0; p as usize];
        let mut hi: Vec<u32> = vec![p; p as usize];
        let mut s = p / 2;
        while s >= 1 {
            buf.clear();
            for i in 0..p {
                let iu = i as usize;
                let mid = lo[iu] + (hi[iu] - lo[iu]) / 2;
                // Recursive halving assumes P2 half-blocks; ragged ones
                // travel padded.
                if i & s == 0 {
                    buf.push(Msg::reducing(
                        i,
                        i ^ s,
                        pad_to_power_of_two(blocks.range(mid, hi[iu])),
                    ));
                } else {
                    buf.push(Msg::reducing(
                        i,
                        i ^ s,
                        pad_to_power_of_two(blocks.range(lo[iu], mid)),
                    ));
                }
            }
            visit(&buf);
            for i in 0..p as usize {
                let mid = lo[i] + (hi[i] - lo[i]) / 2;
                if i as u32 & s == 0 {
                    hi[i] = mid;
                } else {
                    lo[i] = mid;
                }
            }
            if s == 1 {
                break;
            }
            s /= 2;
        }

        // Recursive-doubling allgather of the reduced blocks.
        let mut s = 1;
        while s < p {
            buf.clear();
            for i in 0..p {
                let iu = i as usize;
                buf.push(Msg::data(
                    i,
                    i ^ s,
                    pad_to_power_of_two(blocks.range(lo[iu], hi[iu])),
                ));
            }
            visit(&buf);
            for i in 0..p as usize {
                // Partner ranges are adjacent mirrors; union them.
                let partner = i ^ s as usize;
                let (nl, nh) = (lo[i].min(lo[partner]), hi[i].max(hi[partner]));
                // Both sides compute the same union, so updating in place
                // is safe only if we read the partner's pre-round range;
                // ranges within a pair are disjoint halves of the same
                // parent, so min/max over the *current* values is stable
                // for i < partner and already-updated partners hold the
                // same union.
                lo[i] = nl;
                hi[i] = nh;
            }
            s <<= 1;
        }

        fold_out(p, r, self.bytes, &mut buf, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::received_bytes_per_rank;
    use acclaim_netsim::Schedule;
    use proptest::prelude::*;

    #[test]
    fn rd_p2_round_structure() {
        let s = AllreduceRecursiveDoubling::new(8, 1_000).materialize();
        s.validate().unwrap();
        assert_eq!(s.rounds.len(), 3);
        for round in &s.rounds {
            assert_eq!(round.len(), 8, "all ranks exchange every round");
            assert!(round.iter().all(|m| m.bytes == 1_000 && m.reduce_bytes == 1_000));
        }
    }

    #[test]
    fn rd_every_rank_sees_full_vector_per_round() {
        let s = AllreduceRecursiveDoubling::new(4, 2_048).materialize();
        let recv = received_bytes_per_rank(&s);
        assert!(recv.iter().all(|&b| b == 2 * 2_048), "{recv:?}");
    }

    #[test]
    fn rd_nonp2_adds_two_fold_rounds() {
        let p2 = AllreduceRecursiveDoubling::new(8, 100).materialize();
        let np = AllreduceRecursiveDoubling::new(9, 100).materialize();
        assert_eq!(np.rounds.len(), p2.rounds.len() + 2);
        // Fold-in reduces, fold-out plain-copies.
        assert!(np.rounds.first().unwrap()[0].reduce_bytes > 0);
        assert_eq!(np.rounds.last().unwrap()[0].reduce_bytes, 0);
    }

    #[test]
    fn rsag_moves_less_data_than_rd_for_large_vectors() {
        let (n, m) = (16u32, 1u64 << 20);
        let rd = AllreduceRecursiveDoubling::new(n, m).materialize().total_bytes();
        let rsag = AllreduceReduceScatterAllgather::new(n, m)
            .materialize()
            .total_bytes();
        assert!(rsag < rd / 2, "rsag={rsag} rd={rd}");
    }

    #[test]
    fn rsag_allgather_sizes_double() {
        let s = AllreduceReduceScatterAllgather::new(8, 8_192).materialize();
        // rounds: 3 RS + 3 AG.
        assert_eq!(s.rounds.len(), 6);
        let ag: Vec<u64> = s.rounds[3..]
            .iter()
            .map(|r| r.iter().map(|m| m.bytes).max().unwrap())
            .collect();
        assert_eq!(ag, vec![1_024, 2_048, 4_096]);
    }

    #[test]
    fn rsag_pads_ragged_blocks_but_rd_does_not() {
        // 8000 bytes over 8 ranks: ragged 1000-byte blocks pad to 1024
        // in every block-exchange phase.
        let s = AllreduceReduceScatterAllgather::new(8, 8_000).materialize();
        let ag_first = s.rounds[3].iter().map(|m| m.bytes).max().unwrap();
        assert_eq!(ag_first, 1_024);
        // Recursive doubling ships the exact full vector (no blocks).
        let rd = AllreduceRecursiveDoubling::new(8, 8_000).materialize();
        assert!(rd.rounds.iter().all(|r| r.iter().all(|m| m.bytes == 8_000)));
    }

    #[test]
    fn rsag_every_rank_ends_with_full_vector() {
        for n in [2u32, 4, 8, 16] {
            let m = 16_000u64;
            let s = AllreduceReduceScatterAllgather::new(n, m).materialize();
            let recv = received_bytes_per_rank(&s);
            let own = Blocks::new(m, prev_power_of_two(n)).max_size();
            for (rank, &b) in recv.iter().enumerate() {
                assert!(
                    b + 2 * own >= m,
                    "n={n} rank {rank} received {b} of {m}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn allreduce_schedules_validate(n in 1u32..40, m in 0u64..200_000) {
            AllreduceRecursiveDoubling::new(n, m).materialize().validate().unwrap();
            AllreduceReduceScatterAllgather::new(n, m).materialize().validate().unwrap();
        }

        #[test]
        fn every_rank_receives_the_result(n in 2u32..40, m in 64u64..100_000) {
            let own = Blocks::new(m, prev_power_of_two(n)).max_size();
            for sched in [
                AllreduceRecursiveDoubling::new(n, m).materialize(),
                AllreduceReduceScatterAllgather::new(n, m).materialize(),
            ] {
                let recv = received_bytes_per_rank(&sched);
                for (rank, &b) in recv.iter().enumerate() {
                    prop_assert!(
                        b + 2 * own >= m,
                        "n={} rank {} received {} of {}", n, rank, b, m
                    );
                }
            }
        }
    }
}
