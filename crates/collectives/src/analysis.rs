//! Structural analysis helpers over materialized schedules.
//!
//! Used by tests to check collective semantics and by examples to
//! explain why one algorithm beats another (message counts, data volume,
//! round depth).

use acclaim_netsim::{MaterializedSchedule, Schedule};

/// Total payload bytes received by each rank across all rounds.
pub fn received_bytes_per_rank(sched: &MaterializedSchedule) -> Vec<u64> {
    let mut recv = vec![0u64; sched.num_ranks as usize];
    for round in &sched.rounds {
        for m in round {
            recv[m.dst as usize] += m.bytes;
        }
    }
    recv
}

/// Total payload bytes sent by each rank across all rounds.
pub fn sent_bytes_per_rank(sched: &MaterializedSchedule) -> Vec<u64> {
    let mut sent = vec![0u64; sched.num_ranks as usize];
    for round in &sched.rounds {
        for m in round {
            sent[m.src as usize] += m.bytes;
        }
    }
    sent
}

/// Number of messages sent by each rank across all rounds.
pub fn sent_messages_per_rank(sched: &MaterializedSchedule) -> Vec<u32> {
    let mut sent = vec![0u32; sched.num_ranks as usize];
    for round in &sched.rounds {
        for m in round {
            sent[m.src as usize] += 1;
        }
    }
    sent
}

/// Summary statistics of a schedule, for reporting and examples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleStats {
    /// Number of rounds.
    pub rounds: usize,
    /// Total messages across all rounds.
    pub messages: u64,
    /// Total payload bytes across all rounds.
    pub bytes: u64,
    /// Largest single message.
    pub max_message_bytes: u64,
    /// Bytes each rank copies locally after the final round.
    pub epilogue_local_bytes: u64,
}

/// Compute [`ScheduleStats`] for any schedule without materializing it.
pub fn stats(sched: &dyn Schedule) -> ScheduleStats {
    let mut s = ScheduleStats {
        rounds: 0,
        messages: 0,
        bytes: 0,
        max_message_bytes: 0,
        epilogue_local_bytes: sched.epilogue_local_bytes(),
    };
    sched.visit_rounds(&mut |round| {
        s.rounds += 1;
        s.messages += round.len() as u64;
        for m in round {
            s.bytes += m.bytes;
            s.max_message_bytes = s.max_message_bytes.max(m.bytes);
        }
    });
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use acclaim_netsim::Msg;

    fn sample() -> MaterializedSchedule {
        MaterializedSchedule::new(
            3,
            vec![
                vec![Msg::data(0, 1, 10), Msg::data(0, 2, 20)],
                vec![Msg::data(1, 2, 5)],
            ],
        )
    }

    #[test]
    fn per_rank_accounting() {
        let s = sample();
        assert_eq!(received_bytes_per_rank(&s), vec![0, 10, 25]);
        assert_eq!(sent_bytes_per_rank(&s), vec![30, 5, 0]);
        assert_eq!(sent_messages_per_rank(&s), vec![2, 1, 0]);
    }

    #[test]
    fn stats_summarize() {
        let st = stats(&sample());
        assert_eq!(
            st,
            ScheduleStats {
                rounds: 2,
                messages: 3,
                bytes: 35,
                max_message_bytes: 20,
                epilogue_local_bytes: 0,
            }
        );
    }
}
