//! The three MPICH `MPI_Bcast` algorithms the paper studies.
//!
//! * [`BcastBinomial`] — a binomial tree of full-size messages. Few,
//!   large communications: wins at small sizes and on high-latency
//!   placements. Handles any rank count smoothly.
//! * [`BcastScatterRecursiveDoublingAllgather`] — binomial scatter
//!   followed by a recursive-doubling allgather. Bandwidth-optimal for
//!   power-of-two rank counts, but non-P2 counts pay fold rounds
//!   (including a full-size post round), making it P2-favoring — the
//!   behaviour Fig. 5 of the paper studies.
//! * [`BcastScatterRingAllgather`] — binomial scatter followed by a ring
//!   allgather. Indifferent to power-of-two structure.
//!
//! Message size semantics: `bytes` is the total broadcast payload.

use crate::blocks::{pad_to_power_of_two, prev_power_of_two, Blocks};
use crate::scatter::visit_binomial_scatter;
use acclaim_netsim::{Msg, Schedule};

/// Binomial-tree broadcast from rank 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcastBinomial {
    ranks: u32,
    bytes: u64,
}

impl BcastBinomial {
    /// Broadcast `bytes` from rank 0 to `ranks` ranks.
    pub fn new(ranks: u32, bytes: u64) -> Self {
        assert!(ranks >= 1);
        BcastBinomial { ranks, bytes }
    }
}

impl Schedule for BcastBinomial {
    fn num_ranks(&self) -> u32 {
        self.ranks
    }

    fn visit_rounds(&self, visit: &mut dyn FnMut(&[Msg])) {
        let n = self.ranks;
        let mut buf = Vec::new();
        let mut dist = 1;
        while dist < n {
            buf.clear();
            for r in 0..dist.min(n - dist) {
                buf.push(Msg::data(r, r + dist, self.bytes));
            }
            visit(&buf);
            dist <<= 1;
        }
    }
}

/// Binomial scatter + recursive-doubling allgather (P2-favoring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcastScatterRecursiveDoublingAllgather {
    ranks: u32,
    bytes: u64,
}

impl BcastScatterRecursiveDoublingAllgather {
    /// Broadcast `bytes` from rank 0 to `ranks` ranks.
    pub fn new(ranks: u32, bytes: u64) -> Self {
        assert!(ranks >= 1);
        BcastScatterRecursiveDoublingAllgather { ranks, bytes }
    }
}

impl Schedule for BcastScatterRecursiveDoublingAllgather {
    fn num_ranks(&self) -> u32 {
        self.ranks
    }

    fn visit_rounds(&self, visit: &mut dyn FnMut(&[Msg])) {
        let n = self.ranks;
        if n <= 1 {
            return;
        }
        let blocks = Blocks::new(self.bytes, n);
        visit_binomial_scatter(&blocks, visit);

        let p = prev_power_of_two(n);
        let r = n - p;
        let mut buf: Vec<Msg> = Vec::new();

        // Fold: remainder ranks lend their block to a partner in 0..p.
        if r > 0 {
            buf.clear();
            for i in 0..r {
                buf.push(Msg::data(p + i, i, blocks.size(p + i)));
            }
            visit(&buf);
        }

        // Recursive doubling among 0..p; per-rank held bytes double (plus
        // the lent remainder blocks).
        let mut held: Vec<u64> = (0..p)
            .map(|i| blocks.size(i) + if i < r { blocks.size(i + p) } else { 0 })
            .collect();
        let mut snapshot = held.clone();
        let mut s = 1;
        while s < p {
            buf.clear();
            for i in 0..p {
                // The doubling exchange assumes P2 blocks; ragged blocks
                // (non-P2 payloads) travel padded.
                buf.push(Msg::data(i, i ^ s, pad_to_power_of_two(held[i as usize])));
            }
            visit(&buf);
            snapshot.copy_from_slice(&held);
            for i in 0..p as usize {
                held[i] += snapshot[i ^ s as usize];
            }
            s <<= 1;
        }

        // Unfold: remainder ranks need the whole payload.
        if r > 0 {
            buf.clear();
            for i in 0..r {
                buf.push(Msg::data(i, p + i, self.bytes));
            }
            visit(&buf);
        }
    }
}

/// Binomial scatter + ring allgather (insensitive to P2 structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcastScatterRingAllgather {
    ranks: u32,
    bytes: u64,
}

impl BcastScatterRingAllgather {
    /// Broadcast `bytes` from rank 0 to `ranks` ranks.
    pub fn new(ranks: u32, bytes: u64) -> Self {
        assert!(ranks >= 1);
        BcastScatterRingAllgather { ranks, bytes }
    }
}

impl Schedule for BcastScatterRingAllgather {
    fn num_ranks(&self) -> u32 {
        self.ranks
    }

    fn visit_rounds(&self, visit: &mut dyn FnMut(&[Msg])) {
        let n = self.ranks;
        if n <= 1 {
            return;
        }
        let blocks = Blocks::new(self.bytes, n);
        visit_binomial_scatter(&blocks, visit);

        let mut buf: Vec<Msg> = Vec::with_capacity(n as usize);
        for j in 0..n - 1 {
            buf.clear();
            for i in 0..n {
                let block = (i + n - j) % n;
                buf.push(Msg::data(i, (i + 1) % n, blocks.size(block)));
            }
            visit(&buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::received_bytes_per_rank;
    use crate::blocks::ceil_log2;
    use acclaim_netsim::Schedule;
    use proptest::prelude::*;

    #[test]
    fn binomial_round_and_message_counts() {
        for n in [2u32, 3, 4, 5, 8, 13, 16, 33] {
            let s = BcastBinomial::new(n, 1000).materialize();
            s.validate().unwrap();
            assert_eq!(s.rounds.len() as u32, ceil_log2(n), "n={n}");
            let msgs: usize = s.rounds.iter().map(Vec::len).sum();
            assert_eq!(msgs as u32, n - 1, "binomial sends n-1 messages");
        }
    }

    #[test]
    fn binomial_delivers_full_payload_everywhere() {
        let m = 12_345u64;
        for n in [2u32, 7, 16] {
            let s = BcastBinomial::new(n, m).materialize();
            let recv = received_bytes_per_rank(&s);
            assert_eq!(recv[0], 0);
            assert!(recv[1..].iter().all(|&b| b == m), "n={n}: {recv:?}");
        }
    }

    #[test]
    fn single_rank_bcasts_are_empty() {
        assert!(BcastBinomial::new(1, 100).materialize().rounds.is_empty());
        assert!(BcastScatterRecursiveDoublingAllgather::new(1, 100)
            .materialize()
            .rounds
            .is_empty());
        assert!(BcastScatterRingAllgather::new(1, 100)
            .materialize()
            .rounds
            .is_empty());
    }

    #[test]
    fn scatter_rd_p2_beats_binomial_for_large_messages() {
        // The point of the scatter-based algorithms: the root pushes
        // ~2m instead of m*log(n), so large broadcasts finish sooner.
        use acclaim_netsim::{Allocation, Cluster, RoundSim};
        let (n, m) = (16u32, 1u64 << 20);
        let base = Cluster::bebop_like();
        let cluster = base
            .clone()
            .with_allocation(Allocation::contiguous(&base.topology, n));
        let mut sim = RoundSim::new();
        let t_bin = sim.simulate(&cluster, 1, &BcastBinomial::new(n, m));
        let t_rd = sim.simulate(
            &cluster,
            1,
            &BcastScatterRecursiveDoublingAllgather::new(n, m),
        );
        assert!(t_rd < 0.7 * t_bin, "rd={t_rd} binomial={t_bin}");
    }

    #[test]
    fn binomial_beats_scatter_based_for_small_messages() {
        use acclaim_netsim::{Allocation, Cluster, RoundSim};
        let (n, m) = (16u32, 64u64);
        let base = Cluster::bebop_like();
        let cluster = base
            .clone()
            .with_allocation(Allocation::contiguous(&base.topology, n));
        let mut sim = RoundSim::new();
        let t_bin = sim.simulate(&cluster, 1, &BcastBinomial::new(n, m));
        let t_ring = sim.simulate(&cluster, 1, &BcastScatterRingAllgather::new(n, m));
        assert!(t_bin < t_ring, "binomial={t_bin} ring={t_ring}");
    }

    #[test]
    fn scatter_rd_p2_round_structure() {
        let (n, m) = (8u32, 8_000u64);
        let s = BcastScatterRecursiveDoublingAllgather::new(n, m).materialize();
        s.validate().unwrap();
        // log2(8) scatter rounds + log2(8) allgather rounds.
        assert_eq!(s.rounds.len(), 6);
        // Allgather rounds have p messages each.
        for round in &s.rounds[3..] {
            assert_eq!(round.len(), 8);
        }
    }

    #[test]
    fn scatter_rd_nonp2_pays_fold_rounds() {
        let m = 64_000u64;
        let p2 = BcastScatterRecursiveDoublingAllgather::new(8, m)
            .materialize()
            .total_bytes();
        let nonp2 = BcastScatterRecursiveDoublingAllgather::new(9, m)
            .materialize()
            .total_bytes();
        // The 9-rank run ships a full extra copy in the unfold round.
        assert!(
            nonp2 > p2 + m / 2,
            "non-P2 fold should be expensive: {nonp2} vs {p2}"
        );
    }

    #[test]
    fn scatter_ring_round_count() {
        for n in [2u32, 5, 8, 12] {
            let s = BcastScatterRingAllgather::new(n, 10_000).materialize();
            s.validate().unwrap();
            assert_eq!(s.rounds.len() as u32, ceil_log2(n) + n - 1, "n={n}");
        }
    }

    #[test]
    fn ring_phase_passes_every_block_around() {
        let (n, m) = (6u32, 6_000u64);
        let s = BcastScatterRingAllgather::new(n, m).materialize();
        let recv = received_bytes_per_rank(&s);
        // Every rank receives its scatter share plus n-1 ring blocks;
        // rank 0 (root) receives only the ring part.
        assert_eq!(recv[0], m - m / n as u64);
        for (i, &b) in recv.iter().enumerate().skip(1) {
            assert!(b >= m, "rank {i} must see the full payload, got {b}");
        }
    }

    proptest! {
        #[test]
        fn all_bcast_schedules_validate(n in 1u32..40, m in 0u64..200_000) {
            BcastBinomial::new(n, m).materialize().validate().unwrap();
            BcastScatterRecursiveDoublingAllgather::new(n, m).materialize().validate().unwrap();
            BcastScatterRingAllgather::new(n, m).materialize().validate().unwrap();
        }

        #[test]
        fn every_rank_obtains_the_payload(n in 2u32..40, m in 1u64..100_000) {
            // Semantic invariant: each non-root rank receives at least
            // the payload minus its own scattered block (which it may
            // have received pre-assembled).
            let max_block = Blocks::new(m, n).max_size();
            for sched in [
                BcastScatterRecursiveDoublingAllgather::new(n, m).materialize(),
                BcastScatterRingAllgather::new(n, m).materialize(),
            ] {
                let recv = received_bytes_per_rank(&sched);
                for (rank, &b) in recv.iter().enumerate().skip(1) {
                    prop_assert!(
                        b + max_block >= m,
                        "rank {} received only {} of {} bytes", rank, b, m
                    );
                }
            }
        }
    }
}
