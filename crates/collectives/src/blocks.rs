//! Block distribution of a message buffer over ranks.
//!
//! Scatter/gather-based collective algorithms divide the `m`-byte buffer
//! into `n` per-rank blocks. MPICH distributes the remainder one byte at
//! a time to the leading blocks, so block `i` holds
//! `m/n + (1 if i < m % n)` bytes. Non-power-of-two message sizes make
//! these blocks ragged, which is one of the physical reasons non-P2
//! message sizes behave differently (Sec. III-B of the paper).

/// Block layout of `total` bytes over `count` blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blocks {
    total: u64,
    count: u64,
}

impl Blocks {
    /// Distribute `total` bytes over `count` blocks.
    pub fn new(total: u64, count: u32) -> Self {
        assert!(count > 0, "need at least one block");
        Blocks {
            total,
            count: count as u64,
        }
    }

    /// Bytes in block `i`.
    #[inline]
    pub fn size(&self, i: u32) -> u64 {
        let i = i as u64;
        debug_assert!(i < self.count);
        self.total / self.count + u64::from(i < self.total % self.count)
    }

    /// Byte offset of block `i` (also valid for `i == count`, where it
    /// equals the total size).
    #[inline]
    pub fn offset(&self, i: u32) -> u64 {
        let i = i as u64;
        debug_assert!(i <= self.count);
        i * (self.total / self.count) + i.min(self.total % self.count)
    }

    /// Total bytes in blocks `lo..hi`.
    #[inline]
    pub fn range(&self, lo: u32, hi: u32) -> u64 {
        debug_assert!(lo <= hi);
        self.offset(hi) - self.offset(lo)
    }

    /// Total bytes.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of blocks.
    #[inline]
    pub fn count(&self) -> u32 {
        self.count as u32
    }

    /// Largest block size.
    #[inline]
    pub fn max_size(&self) -> u64 {
        self.total / self.count + u64::from(!self.total.is_multiple_of(self.count))
    }
}

/// Largest power of two `<= n` (n must be positive).
#[inline]
pub fn prev_power_of_two(n: u32) -> u32 {
    assert!(n > 0);
    1 << (31 - n.leading_zeros())
}

/// `ceil(log2(n))` — the round count of binomial-tree algorithms.
#[inline]
pub fn ceil_log2(n: u32) -> u32 {
    assert!(n > 0);
    32 - (n - 1).leading_zeros()
}

/// Smallest power of two `>= n` (identity for powers of two and 0).
///
/// Recursive-doubling block-exchange phases assume power-of-two block
/// sizes (MPICH's doubling recv-size bookkeeping); ragged blocks are
/// padded up to the next power of two, which is the structural reason
/// those algorithms "favor P2 feature values" (paper Sec. III-B).
#[inline]
pub fn pad_to_power_of_two(bytes: u64) -> u64 {
    if bytes <= 1 {
        bytes
    } else {
        bytes.next_power_of_two()
    }
}

/// True when `n` is a power of two.
#[inline]
pub fn is_power_of_two_u64(n: u64) -> bool {
    n > 0 && n & (n - 1) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn even_distribution() {
        let b = Blocks::new(100, 4);
        assert_eq!((0..4).map(|i| b.size(i)).collect::<Vec<_>>(), vec![25; 4]);
        assert_eq!(b.offset(4), 100);
    }

    #[test]
    fn remainder_goes_to_leading_blocks() {
        let b = Blocks::new(10, 4);
        let sizes: Vec<u64> = (0..4).map(|i| b.size(i)).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(b.max_size(), 3);
    }

    #[test]
    fn more_blocks_than_bytes_yields_zero_blocks() {
        let b = Blocks::new(3, 8);
        let sizes: Vec<u64> = (0..8).map(|i| b.size(i)).collect();
        assert_eq!(sizes, vec![1, 1, 1, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn range_is_offset_difference() {
        let b = Blocks::new(10, 4);
        assert_eq!(b.range(0, 4), 10);
        assert_eq!(b.range(1, 3), 5);
        assert_eq!(b.range(2, 2), 0);
    }

    #[test]
    fn power_of_two_helpers() {
        assert_eq!(prev_power_of_two(1), 1);
        assert_eq!(prev_power_of_two(5), 4);
        assert_eq!(prev_power_of_two(64), 64);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(64), 6);
        assert!(is_power_of_two_u64(1024));
        assert!(!is_power_of_two_u64(1000));
        assert!(!is_power_of_two_u64(0));
    }

    proptest! {
        #[test]
        fn sizes_sum_to_total(total in 0u64..1_000_000, count in 1u32..200) {
            let b = Blocks::new(total, count);
            let sum: u64 = (0..count).map(|i| b.size(i)).sum();
            prop_assert_eq!(sum, total);
        }

        #[test]
        fn offsets_are_monotone_and_consistent(total in 0u64..1_000_000, count in 1u32..200) {
            let b = Blocks::new(total, count);
            for i in 0..count {
                prop_assert_eq!(b.offset(i) + b.size(i), b.offset(i + 1));
                prop_assert!(b.size(i) <= b.max_size());
            }
        }

        #[test]
        fn blocks_differ_by_at_most_one_byte(total in 0u64..1_000_000, count in 1u32..200) {
            let b = Blocks::new(total, count);
            let min = (0..count).map(|i| b.size(i)).min().unwrap();
            let max = (0..count).map(|i| b.size(i)).max().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
