//! MPICH-style static default algorithm selection.
//!
//! Production MPI libraries ship hard-coded message-size and
//! communicator-size thresholds (Sec. II-B of the paper: "the most
//! popular open source implementations … use heuristics to make
//! selections"). These rules mirror MPICH's defaults for the ten
//! algorithms we model; the autotuners are measured against them.

use crate::blocks::is_power_of_two_u64;
use crate::registry::{Algorithm, Collective};

/// MPICH default thresholds (bytes).
const BCAST_SHORT_MSG: u64 = 12_288;
const BCAST_LONG_MSG: u64 = 524_288;
const BCAST_MIN_PROCS: u32 = 8;
const REDUCE_SHORT_MSG: u64 = 2_048;
const ALLREDUCE_SHORT_MSG: u64 = 2_048;
const ALLGATHER_SHORT_MSG: u64 = 81_920;
const ALLGATHER_LONG_MSG: u64 = 524_288;

/// The algorithm MPICH's default heuristic would pick.
///
/// `ranks` is the communicator size; `bytes` follows the same semantics
/// as [`Algorithm::schedule`] (per-rank contribution for allgather,
/// total payload otherwise).
pub fn mpich_default(collective: Collective, ranks: u32, bytes: u64) -> Algorithm {
    match collective {
        Collective::Bcast => {
            if bytes < BCAST_SHORT_MSG || ranks < BCAST_MIN_PROCS {
                Algorithm::BcastBinomial
            } else if bytes < BCAST_LONG_MSG && is_power_of_two_u64(ranks as u64) {
                Algorithm::BcastScatterRecursiveDoublingAllgather
            } else {
                Algorithm::BcastScatterRingAllgather
            }
        }
        Collective::Reduce => {
            if bytes <= REDUCE_SHORT_MSG || ranks < 4 {
                Algorithm::ReduceBinomial
            } else {
                Algorithm::ReduceScatterGather
            }
        }
        Collective::Allreduce => {
            if bytes <= ALLREDUCE_SHORT_MSG {
                Algorithm::AllreduceRecursiveDoubling
            } else {
                Algorithm::AllreduceReduceScatterAllgather
            }
        }
        Collective::Allgather => {
            let total = bytes.saturating_mul(ranks as u64);
            if total < ALLGATHER_SHORT_MSG && is_power_of_two_u64(ranks as u64) {
                Algorithm::AllgatherRecursiveDoubling
            } else if total < ALLGATHER_LONG_MSG {
                Algorithm::AllgatherBrucks
            } else {
                Algorithm::AllgatherRing
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_picks_an_algorithm_of_the_right_collective() {
        for c in Collective::ALL {
            for ranks in [2u32, 7, 16, 100] {
                for bytes in [1u64, 1_024, 65_536, 1 << 20] {
                    let a = mpich_default(c, ranks, bytes);
                    assert_eq!(a.collective(), c, "{c:?} {ranks} {bytes}");
                }
            }
        }
    }

    #[test]
    fn bcast_thresholds() {
        assert_eq!(
            mpich_default(Collective::Bcast, 64, 1_024),
            Algorithm::BcastBinomial
        );
        assert_eq!(
            mpich_default(Collective::Bcast, 64, 65_536),
            Algorithm::BcastScatterRecursiveDoublingAllgather
        );
        // Non-P2 communicator falls back to the ring variant.
        assert_eq!(
            mpich_default(Collective::Bcast, 60, 65_536),
            Algorithm::BcastScatterRingAllgather
        );
        assert_eq!(
            mpich_default(Collective::Bcast, 64, 1 << 20),
            Algorithm::BcastScatterRingAllgather
        );
        // Small communicators always take the binomial tree.
        assert_eq!(
            mpich_default(Collective::Bcast, 4, 1 << 20),
            Algorithm::BcastBinomial
        );
    }

    #[test]
    fn reduce_thresholds() {
        assert_eq!(
            mpich_default(Collective::Reduce, 64, 512),
            Algorithm::ReduceBinomial
        );
        assert_eq!(
            mpich_default(Collective::Reduce, 64, 1 << 20),
            Algorithm::ReduceScatterGather
        );
    }

    #[test]
    fn allreduce_thresholds() {
        assert_eq!(
            mpich_default(Collective::Allreduce, 16, 1_024),
            Algorithm::AllreduceRecursiveDoubling
        );
        assert_eq!(
            mpich_default(Collective::Allreduce, 16, 1 << 20),
            Algorithm::AllreduceReduceScatterAllgather
        );
    }

    #[test]
    fn allgather_thresholds_use_total_size() {
        assert_eq!(
            mpich_default(Collective::Allgather, 16, 64),
            Algorithm::AllgatherRecursiveDoubling
        );
        assert_eq!(
            mpich_default(Collective::Allgather, 17, 64),
            Algorithm::AllgatherBrucks,
            "non-P2 short falls back to brucks"
        );
        assert_eq!(
            mpich_default(Collective::Allgather, 64, 1 << 20),
            Algorithm::AllgatherRing
        );
    }
}
