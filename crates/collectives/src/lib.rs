//! MPICH collective algorithm substrate for the ACCLAiM reproduction.
//!
//! The paper tunes the four most popular MPI collectives (allgather,
//! allreduce, bcast, reduce — Sec. II-A) over ten MPICH algorithms. This
//! crate implements each algorithm as a *communication schedule*
//! generator over [`acclaim_netsim`]'s simulators, plus:
//!
//! * [`heuristics`] — MPICH's static default selection logic, the
//!   baseline the autotuners beat;
//! * [`microbench`] — an OSU-style warmup+iterations measurement harness
//!   that also accounts wall-clock collection cost;
//! * [`analysis`] — structural schedule statistics used by tests and
//!   examples.
//!
//! Message-size semantics: for allgather, `bytes` is the per-rank
//! contribution (OSU convention); for the rooted/reduction collectives
//! it is the total payload.

pub mod allgather;
pub mod allreduce;
pub mod analysis;
pub mod bcast;
pub mod blocks;
pub mod heuristics;
pub mod microbench;
pub mod reduce;
pub mod registry;
mod scatter;

pub use heuristics::mpich_default;
pub use microbench::{measure, measure_with_obs, Measurement, MicrobenchConfig};
pub use registry::{Algorithm, Collective};
