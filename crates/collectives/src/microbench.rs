//! OSU-style microbenchmark harness over the simulator.
//!
//! ACCLAiM collects its training data with the OSU microbenchmark suite
//! (Sec. V of the paper): each point launches the collective repeatedly
//! (warmup + timed iterations) and reports the mean. The harness also
//! accounts the *wall-clock cost* of collecting the point — launch
//! overhead plus every iteration actually executed — because training
//! time, the paper's central concern, is the sum of these costs.

use crate::registry::Algorithm;
use acclaim_netsim::{Cluster, NoiseModel, RoundSim};
use acclaim_obs::Obs;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Iteration policy of the microbenchmark (OSU defaults scaled down for
/// collective benchmarks: fewer timed iterations for large messages).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicrobenchConfig {
    /// Untimed warmup iterations.
    pub warmup: u32,
    /// Timed iterations for messages at or below `large_threshold`.
    pub iterations_small: u32,
    /// Timed iterations for messages above `large_threshold`.
    pub iterations_large: u32,
    /// Message-size boundary between the two iteration counts (bytes).
    pub large_threshold: u64,
    /// Fixed per-point setup cost (communicator creation, binary launch)
    /// in microseconds.
    pub launch_overhead_us: f64,
}

impl Default for MicrobenchConfig {
    fn default() -> Self {
        MicrobenchConfig {
            warmup: 5,
            iterations_small: 50,
            iterations_large: 20,
            large_threshold: 65_536,
            launch_overhead_us: 200_000.0, // 0.2 s
        }
    }
}

impl MicrobenchConfig {
    /// A fast configuration for unit tests.
    pub fn fast() -> Self {
        MicrobenchConfig {
            warmup: 1,
            iterations_small: 5,
            iterations_large: 3,
            large_threshold: 65_536,
            launch_overhead_us: 10_000.0,
        }
    }

    /// Timed iterations for a message of `bytes`.
    pub fn iterations(&self, bytes: u64) -> u32 {
        if bytes <= self.large_threshold {
            self.iterations_small
        } else {
            self.iterations_large
        }
    }
}

/// The result of benchmarking one (algorithm, nodes, ppn, size) point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Mean collective time over the timed iterations (µs).
    pub mean_us: f64,
    /// Timed iterations executed.
    pub iterations: u32,
    /// Wall-clock cost of collecting the point, including launch
    /// overhead and warmup (µs). Training time sums these.
    pub wall_us: f64,
}

/// Benchmark `algorithm` on the whole `cluster` with `ppn` ranks per
/// node and message size `bytes`.
///
/// The deterministic collective time comes from the round simulator;
/// each iteration perturbs it with measurement noise.
pub fn measure<R: Rng + ?Sized>(
    cluster: &Cluster,
    ppn: u32,
    algorithm: Algorithm,
    bytes: u64,
    config: &MicrobenchConfig,
    noise: &NoiseModel,
    rng: &mut R,
) -> Measurement {
    measure_with_obs(
        cluster,
        ppn,
        algorithm,
        bytes,
        config,
        noise,
        rng,
        &Obs::disabled(),
    )
}

/// [`measure`] with tracing: wraps the simulation in a
/// `netsim/microbench` span (algorithm, shape, and simulated base time
/// as attributes) and runs the round simulator with
/// [`RoundSim::with_obs`] so its `netsim.roundsim.*` metrics land in
/// the same recorder. Identical results to [`measure`].
#[allow(clippy::too_many_arguments)]
pub fn measure_with_obs<R: Rng + ?Sized>(
    cluster: &Cluster,
    ppn: u32,
    algorithm: Algorithm,
    bytes: u64,
    config: &MicrobenchConfig,
    noise: &NoiseModel,
    rng: &mut R,
    obs: &Obs,
) -> Measurement {
    let mut span = obs.span("netsim", "microbench");
    if obs.is_enabled() {
        span.set_attr("algorithm", format!("{algorithm:?}"));
        span.set_attr("nodes", cluster.num_nodes() as u64);
        span.set_attr("ppn", ppn as u64);
        span.set_attr("bytes", bytes);
    }
    let ranks = cluster.num_nodes() * ppn;
    let sched = algorithm.schedule(ranks, bytes);
    let base = RoundSim::with_obs(obs).simulate(cluster, ppn, sched.as_ref());
    span.set_attr("base_us", base);
    let iterations = config.iterations(bytes);

    let mut wall = config.launch_overhead_us;
    for _ in 0..config.warmup {
        wall += noise.perturb(base, rng);
    }
    let mut sum = 0.0;
    for _ in 0..iterations {
        let t = noise.perturb(base, rng);
        sum += t;
        wall += t;
    }
    Measurement {
        mean_us: sum / iterations as f64,
        iterations,
        wall_us: wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Collective;
    use rand::{rngs::StdRng, SeedableRng};

    fn small_cluster() -> Cluster {
        let c = Cluster::bebop_like();
        let alloc = acclaim_netsim::Allocation::contiguous(&c.topology, 8);
        c.with_allocation(alloc)
    }

    #[test]
    fn noiseless_measurement_equals_simulator() {
        let c = small_cluster();
        let mut rng = StdRng::seed_from_u64(1);
        let m = measure(
            &c,
            2,
            Algorithm::BcastBinomial,
            4_096,
            &MicrobenchConfig::fast(),
            &NoiseModel::none(),
            &mut rng,
        );
        let sched = Algorithm::BcastBinomial.schedule(16, 4_096);
        let base = RoundSim::new().simulate(&c, 2, sched.as_ref());
        assert!((m.mean_us - base).abs() < 1e-9);
    }

    #[test]
    fn wall_cost_includes_launch_and_warmup() {
        let c = small_cluster();
        let cfg = MicrobenchConfig::fast();
        let mut rng = StdRng::seed_from_u64(2);
        let m = measure(
            &c,
            1,
            Algorithm::ReduceBinomial,
            1_024,
            &cfg,
            &NoiseModel::none(),
            &mut rng,
        );
        let expected = cfg.launch_overhead_us + (cfg.warmup + m.iterations) as f64 * m.mean_us;
        assert!((m.wall_us - expected).abs() < 1e-6);
        assert!(m.wall_us > m.mean_us * m.iterations as f64);
    }

    #[test]
    fn large_messages_use_fewer_iterations() {
        let cfg = MicrobenchConfig::default();
        assert_eq!(cfg.iterations(1_024), cfg.iterations_small);
        assert_eq!(cfg.iterations(1 << 20), cfg.iterations_large);
    }

    #[test]
    fn measurements_are_deterministic_per_seed() {
        let c = small_cluster();
        let cfg = MicrobenchConfig::fast();
        let noise = NoiseModel::mild();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            measure(&c, 2, Algorithm::AllgatherRing, 8_192, &cfg, &noise, &mut rng)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).mean_us, run(8).mean_us);
    }

    #[test]
    fn every_algorithm_measures_positive_time() {
        let c = small_cluster();
        let cfg = MicrobenchConfig::fast();
        let mut rng = StdRng::seed_from_u64(3);
        for col in Collective::ALL {
            for &a in col.algorithms() {
                let m = measure(&c, 2, a, 4_096, &cfg, &NoiseModel::none(), &mut rng);
                assert!(m.mean_us > 0.0, "{a:?}");
            }
        }
    }
}
