//! The two MPICH `MPI_Reduce` algorithms the paper's Sec. II-B example
//! contrasts.
//!
//! * [`ReduceBinomial`] — a binomial reduction tree of full-size
//!   messages; few, large communications.
//! * [`ReduceScatterGather`] — recursive-halving reduce-scatter followed
//!   by a binomial gather to the root; many, smaller communications that
//!   maximize bandwidth utilization but suffer on high-latency
//!   placements.
//!
//! `bytes` is the full reduction payload; the root is rank 0.

use crate::blocks::{pad_to_power_of_two, prev_power_of_two, Blocks};
use acclaim_netsim::{Msg, Schedule};

/// Binomial-tree reduction to rank 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceBinomial {
    ranks: u32,
    bytes: u64,
}

impl ReduceBinomial {
    /// Reduce `bytes` from `ranks` ranks onto rank 0.
    pub fn new(ranks: u32, bytes: u64) -> Self {
        assert!(ranks >= 1);
        ReduceBinomial { ranks, bytes }
    }
}

impl Schedule for ReduceBinomial {
    fn num_ranks(&self) -> u32 {
        self.ranks
    }

    fn visit_rounds(&self, visit: &mut dyn FnMut(&[Msg])) {
        let n = self.ranks;
        let mut buf = Vec::new();
        let mut s = 1;
        while s < n {
            buf.clear();
            let mut r = s;
            while r < n {
                buf.push(Msg::reducing(r, r - s, self.bytes));
                r += s << 1;
            }
            visit(&buf);
            s <<= 1;
        }
    }
}

/// Recursive-halving reduce-scatter + binomial gather ("scatter_gather").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceScatterGather {
    ranks: u32,
    bytes: u64,
}

impl ReduceScatterGather {
    /// Reduce `bytes` from `ranks` ranks onto rank 0.
    pub fn new(ranks: u32, bytes: u64) -> Self {
        assert!(ranks >= 1);
        ReduceScatterGather { ranks, bytes }
    }
}

impl Schedule for ReduceScatterGather {
    fn num_ranks(&self) -> u32 {
        self.ranks
    }

    fn visit_rounds(&self, visit: &mut dyn FnMut(&[Msg])) {
        let n = self.ranks;
        if n <= 1 {
            return;
        }
        let p = prev_power_of_two(n);
        let r = n - p;
        let blocks = Blocks::new(self.bytes, p);
        let mut buf: Vec<Msg> = Vec::new();

        // Fold: remainder ranks contribute their whole vector up front.
        if r > 0 {
            buf.clear();
            for i in 0..r {
                buf.push(Msg::reducing(p + i, i, self.bytes));
            }
            visit(&buf);
        }

        // Recursive-halving reduce-scatter among 0..p: rank i ends up
        // owning the fully reduced block i.
        let mut lo: Vec<u32> = vec![0; p as usize];
        let mut hi: Vec<u32> = vec![p; p as usize];
        let mut s = p / 2;
        while s >= 1 {
            buf.clear();
            for i in 0..p {
                let iu = i as usize;
                let mid = lo[iu] + (hi[iu] - lo[iu]) / 2;
                let partner = i ^ s;
                // Recursive halving assumes P2 half-blocks; ragged ones
                // travel padded.
                if i & s == 0 {
                    buf.push(Msg::reducing(
                        i,
                        partner,
                        pad_to_power_of_two(blocks.range(mid, hi[iu])),
                    ));
                } else {
                    buf.push(Msg::reducing(
                        i,
                        partner,
                        pad_to_power_of_two(blocks.range(lo[iu], mid)),
                    ));
                }
            }
            visit(&buf);
            for i in 0..p as usize {
                let mid = lo[i] + (hi[i] - lo[i]) / 2;
                if i as u32 & s == 0 {
                    hi[i] = mid;
                } else {
                    lo[i] = mid;
                }
            }
            if s == 1 {
                break;
            }
            s /= 2;
        }

        // Binomial gather of the scattered blocks onto rank 0: after
        // reduce-scatter, rank i holds block [i, i+1); gathering with
        // doubling distance keeps held ranges contiguous.
        let mut ghi: Vec<u32> = (1..=p).collect();
        let mut s = 1;
        while s < p {
            buf.clear();
            let mut i = s;
            while i < p {
                buf.push(Msg::data(i, i - s, blocks.range(i, ghi[i as usize])));
                ghi[(i - s) as usize] = ghi[i as usize];
                i += s << 1;
            }
            visit(&buf);
            s <<= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{received_bytes_per_rank, sent_messages_per_rank};
    use crate::blocks::ceil_log2;
    use acclaim_netsim::Schedule;
    use proptest::prelude::*;

    #[test]
    fn binomial_counts() {
        for n in [2u32, 3, 5, 8, 16, 21] {
            let s = ReduceBinomial::new(n, 999).materialize();
            s.validate().unwrap();
            assert_eq!(s.rounds.len() as u32, ceil_log2(n), "n={n}");
            let msgs: usize = s.rounds.iter().map(Vec::len).sum();
            assert_eq!(msgs as u32, n - 1);
        }
    }

    #[test]
    fn binomial_every_nonroot_sends_exactly_once() {
        for n in [2u32, 5, 9, 16] {
            let s = ReduceBinomial::new(n, 100).materialize();
            let sent = sent_messages_per_rank(&s);
            assert_eq!(sent[0], 0, "root never sends");
            assert!(sent[1..].iter().all(|&c| c == 1), "n={n}: {sent:?}");
        }
    }

    #[test]
    fn binomial_all_messages_reduce_full_payload() {
        let s = ReduceBinomial::new(8, 4_096).materialize();
        for round in &s.rounds {
            for m in round {
                assert_eq!(m.bytes, 4_096);
                assert_eq!(m.reduce_bytes, 4_096);
            }
        }
    }

    #[test]
    fn scatter_gather_p2_round_structure() {
        let s = ReduceScatterGather::new(8, 8_192).materialize();
        s.validate().unwrap();
        // log2(8) reduce-scatter rounds + log2(8) gather rounds.
        assert_eq!(s.rounds.len(), 6);
        // Reduce-scatter rounds halve the exchanged size.
        let first: u64 = s.rounds[0].iter().map(|m| m.bytes).max().unwrap();
        let second: u64 = s.rounds[1].iter().map(|m| m.bytes).max().unwrap();
        assert_eq!(first, 4_096);
        assert_eq!(second, 2_048);
    }

    #[test]
    fn scatter_gather_pads_ragged_halves_binomial_does_not() {
        let s = ReduceScatterGather::new(8, 8_000).materialize();
        let first: u64 = s.rounds[0].iter().map(|m| m.bytes).max().unwrap();
        assert_eq!(first, 4_096, "ragged 4000-byte half pads to 4096");
        let b = ReduceBinomial::new(8, 8_000).materialize();
        assert!(b.rounds.iter().all(|r| r.iter().all(|m| m.bytes == 8_000)));
    }

    #[test]
    fn scatter_gather_root_obtains_full_result() {
        for n in [2u32, 4, 8, 16] {
            let m = 16_000u64;
            let s = ReduceScatterGather::new(n, m).materialize();
            let recv = received_bytes_per_rank(&s);
            let p = prev_power_of_two(n);
            let own = Blocks::new(m, p).size(0);
            // Root gathers every block but its own, and received reduce
            // halves during the scatter phase.
            assert!(recv[0] >= m - own, "n={n}: root saw {} of {m}", recv[0]);
        }
    }

    #[test]
    fn scatter_gather_beats_binomial_for_large_payloads() {
        use acclaim_netsim::{Allocation, Cluster, RoundSim};
        let (n, m) = (16u32, 1u64 << 20);
        let base = Cluster::bebop_like();
        let cluster = base
            .clone()
            .with_allocation(Allocation::contiguous(&base.topology, n));
        let mut sim = RoundSim::new();
        let t_sg = sim.simulate(&cluster, 1, &ReduceScatterGather::new(n, m));
        let t_bin = sim.simulate(&cluster, 1, &ReduceBinomial::new(n, m));
        assert!(t_sg < t_bin, "sg={t_sg} bin={t_bin}");
    }

    #[test]
    fn binomial_gains_ground_on_high_latency_placements() {
        // The paper's Sec. II-B example: high job latency favors the
        // binomial tree's fewer communications. The *gap* between
        // scatter_gather and binomial must shrink (or flip) as the
        // placement latency factor grows.
        use acclaim_netsim::{Allocation, Cluster, RoundSim};
        let (n, m) = (16u32, 262_144u64);
        let base = Cluster::bebop_like();
        let alloc = Allocation::contiguous(&base.topology, n);
        let mut sim = RoundSim::new();
        let mut ratio = |factor: f64| {
            let c = base
                .clone()
                .with_allocation(alloc.clone())
                .with_job_latency_factor(factor);
            let sg = sim.simulate(&c, 1, &ReduceScatterGather::new(n, m));
            let bin = sim.simulate(&c, 1, &ReduceBinomial::new(n, m));
            bin / sg
        };
        let low = ratio(1.0);
        let high = ratio(40.0);
        assert!(
            high < low,
            "binomial should closen under latency: low={low:.3} high={high:.3}"
        );
    }

    #[test]
    fn nonp2_fold_round_reduces_whole_vectors() {
        let s = ReduceScatterGather::new(10, 50_000).materialize();
        // First round: ranks 8 and 9 fold into 0 and 1.
        assert_eq!(s.rounds[0].len(), 2);
        for m in &s.rounds[0] {
            assert_eq!(m.bytes, 50_000);
            assert!(m.reduce_bytes == m.bytes);
            assert!(m.src >= 8 && m.dst <= 1);
        }
    }

    proptest! {
        #[test]
        fn reduce_schedules_validate(n in 1u32..40, m in 0u64..200_000) {
            ReduceBinomial::new(n, m).materialize().validate().unwrap();
            ReduceScatterGather::new(n, m).materialize().validate().unwrap();
        }

        #[test]
        fn every_rank_contributes(n in 2u32..40, m in 1u64..100_000) {
            // Semantics: every non-root rank's contribution must leave it
            // at least once in both algorithms.
            for sched in [
                ReduceBinomial::new(n, m).materialize(),
                ReduceScatterGather::new(n, m).materialize(),
            ] {
                let sent = sent_messages_per_rank(&sched);
                for (rank, &c) in sent.iter().enumerate().skip(1) {
                    prop_assert!(c >= 1, "rank {} never sent (n={})", rank, n);
                }
            }
        }

        #[test]
        fn root_receives_at_least_remainder_of_payload(n in 2u32..40, m in 64u64..100_000) {
            let p = prev_power_of_two(n);
            let own = Blocks::new(m, p).max_size();
            let s = ReduceScatterGather::new(n, m).materialize();
            let recv = received_bytes_per_rank(&s);
            prop_assert!(recv[0] + own >= m, "root got {} of {}", recv[0], m);
        }
    }
}
