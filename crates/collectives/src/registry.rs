//! The collectives and algorithms the paper studies (Sec. II-A: the four
//! most popular collectives from Chunduri et al., 10 algorithms total).

use crate::allgather::{AllgatherBrucks, AllgatherRecursiveDoubling, AllgatherRing};
use crate::allreduce::{AllreduceRecursiveDoubling, AllreduceReduceScatterAllgather};
use crate::bcast::{
    BcastBinomial, BcastScatterRecursiveDoublingAllgather, BcastScatterRingAllgather,
};
use crate::reduce::{ReduceBinomial, ReduceScatterGather};
use acclaim_netsim::Schedule;
use serde::{Deserialize, Serialize};

/// The four MPI collectives under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Collective {
    /// `MPI_Allgather`
    Allgather,
    /// `MPI_Allreduce`
    Allreduce,
    /// `MPI_Bcast`
    Bcast,
    /// `MPI_Reduce`
    Reduce,
}

impl Collective {
    /// All four collectives, in the paper's order.
    pub const ALL: [Collective; 4] = [
        Collective::Allgather,
        Collective::Allreduce,
        Collective::Bcast,
        Collective::Reduce,
    ];

    /// MPI-style lowercase name (as used in MPICH tuning files).
    pub fn name(self) -> &'static str {
        match self {
            Collective::Allgather => "allgather",
            Collective::Allreduce => "allreduce",
            Collective::Bcast => "bcast",
            Collective::Reduce => "reduce",
        }
    }

    /// The algorithms MPICH offers for this collective.
    pub fn algorithms(self) -> &'static [Algorithm] {
        match self {
            Collective::Allgather => &[
                Algorithm::AllgatherRing,
                Algorithm::AllgatherRecursiveDoubling,
                Algorithm::AllgatherBrucks,
            ],
            Collective::Allreduce => &[
                Algorithm::AllreduceRecursiveDoubling,
                Algorithm::AllreduceReduceScatterAllgather,
            ],
            Collective::Bcast => &[
                Algorithm::BcastBinomial,
                Algorithm::BcastScatterRecursiveDoublingAllgather,
                Algorithm::BcastScatterRingAllgather,
            ],
            Collective::Reduce => &[Algorithm::ReduceBinomial, Algorithm::ReduceScatterGather],
        }
    }

    /// Parse a lowercase collective name.
    pub fn parse(name: &str) -> Option<Collective> {
        Collective::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl std::fmt::Display for Collective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The ten collective algorithms (3 allgather + 2 allreduce + 3 bcast +
/// 2 reduce), named after their MPICH counterparts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Ring allgather.
    AllgatherRing,
    /// Recursive-doubling allgather (P2-favoring).
    AllgatherRecursiveDoubling,
    /// Bruck's allgather (log rounds for any n, local rotation).
    AllgatherBrucks,
    /// Recursive-doubling allreduce.
    AllreduceRecursiveDoubling,
    /// Rabenseifner reduce-scatter + allgather allreduce.
    AllreduceReduceScatterAllgather,
    /// Binomial-tree broadcast.
    BcastBinomial,
    /// Scatter + recursive-doubling-allgather broadcast (P2-favoring).
    BcastScatterRecursiveDoublingAllgather,
    /// Scatter + ring-allgather broadcast.
    BcastScatterRingAllgather,
    /// Binomial-tree reduction.
    ReduceBinomial,
    /// Reduce-scatter + gather reduction ("scatter_gather").
    ReduceScatterGather,
}

impl Algorithm {
    /// All ten algorithms.
    pub const ALL: [Algorithm; 10] = [
        Algorithm::AllgatherRing,
        Algorithm::AllgatherRecursiveDoubling,
        Algorithm::AllgatherBrucks,
        Algorithm::AllreduceRecursiveDoubling,
        Algorithm::AllreduceReduceScatterAllgather,
        Algorithm::BcastBinomial,
        Algorithm::BcastScatterRecursiveDoublingAllgather,
        Algorithm::BcastScatterRingAllgather,
        Algorithm::ReduceBinomial,
        Algorithm::ReduceScatterGather,
    ];

    /// The collective this algorithm implements.
    pub fn collective(self) -> Collective {
        match self {
            Algorithm::AllgatherRing
            | Algorithm::AllgatherRecursiveDoubling
            | Algorithm::AllgatherBrucks => Collective::Allgather,
            Algorithm::AllreduceRecursiveDoubling
            | Algorithm::AllreduceReduceScatterAllgather => Collective::Allreduce,
            Algorithm::BcastBinomial
            | Algorithm::BcastScatterRecursiveDoublingAllgather
            | Algorithm::BcastScatterRingAllgather => Collective::Bcast,
            Algorithm::ReduceBinomial | Algorithm::ReduceScatterGather => Collective::Reduce,
        }
    }

    /// MPICH-style algorithm name (as appears in tuning files).
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::AllgatherRing => "ring",
            Algorithm::AllgatherRecursiveDoubling => "recursive_doubling",
            Algorithm::AllgatherBrucks => "brucks",
            Algorithm::AllreduceRecursiveDoubling => "recursive_doubling",
            Algorithm::AllreduceReduceScatterAllgather => "reduce_scatter_allgather",
            Algorithm::BcastBinomial => "binomial",
            Algorithm::BcastScatterRecursiveDoublingAllgather => {
                "scatter_recursive_doubling_allgather"
            }
            Algorithm::BcastScatterRingAllgather => "scatter_ring_allgather",
            Algorithm::ReduceBinomial => "binomial",
            Algorithm::ReduceScatterGather => "reduce_scatter_gather",
        }
    }

    /// Index of this algorithm within its collective's algorithm list
    /// (the "algorithm" feature value in ACCLAiM's per-collective model).
    pub fn index_within_collective(self) -> usize {
        self.collective()
            .algorithms()
            .iter()
            .position(|&a| a == self)
            .expect("algorithm listed under its collective")
    }

    /// Look an algorithm up by collective and MPICH-style name.
    pub fn parse(collective: Collective, name: &str) -> Option<Algorithm> {
        collective
            .algorithms()
            .iter()
            .copied()
            .find(|a| a.name() == name)
    }

    /// Build the communication schedule for `ranks` ranks and `bytes`
    /// message size (per-rank contribution for allgather, total payload
    /// otherwise).
    pub fn schedule(self, ranks: u32, bytes: u64) -> Box<dyn Schedule + Send + Sync> {
        match self {
            Algorithm::AllgatherRing => Box::new(AllgatherRing::new(ranks, bytes)),
            Algorithm::AllgatherRecursiveDoubling => {
                Box::new(AllgatherRecursiveDoubling::new(ranks, bytes))
            }
            Algorithm::AllgatherBrucks => Box::new(AllgatherBrucks::new(ranks, bytes)),
            Algorithm::AllreduceRecursiveDoubling => {
                Box::new(AllreduceRecursiveDoubling::new(ranks, bytes))
            }
            Algorithm::AllreduceReduceScatterAllgather => {
                Box::new(AllreduceReduceScatterAllgather::new(ranks, bytes))
            }
            Algorithm::BcastBinomial => Box::new(BcastBinomial::new(ranks, bytes)),
            Algorithm::BcastScatterRecursiveDoublingAllgather => {
                Box::new(BcastScatterRecursiveDoublingAllgather::new(ranks, bytes))
            }
            Algorithm::BcastScatterRingAllgather => {
                Box::new(BcastScatterRingAllgather::new(ranks, bytes))
            }
            Algorithm::ReduceBinomial => Box::new(ReduceBinomial::new(ranks, bytes)),
            Algorithm::ReduceScatterGather => Box::new(ReduceScatterGather::new(ranks, bytes)),
        }
    }
}

impl std::fmt::Display for Algorithm {
    /// Qualified `collective.name` form, unambiguous across collectives.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.collective().name(), self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_algorithms_across_four_collectives() {
        assert_eq!(Algorithm::ALL.len(), 10);
        let total: usize = Collective::ALL.iter().map(|c| c.algorithms().len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn algorithms_listed_under_their_collective() {
        for a in Algorithm::ALL {
            assert!(a.collective().algorithms().contains(&a), "{a:?}");
        }
    }

    #[test]
    fn index_within_collective_is_consistent() {
        for c in Collective::ALL {
            for (i, &a) in c.algorithms().iter().enumerate() {
                assert_eq!(a.index_within_collective(), i);
            }
        }
    }

    #[test]
    fn parse_round_trips() {
        for c in Collective::ALL {
            assert_eq!(Collective::parse(c.name()), Some(c));
            for &a in c.algorithms() {
                assert_eq!(Algorithm::parse(c, a.name()), Some(a));
            }
        }
        assert_eq!(Collective::parse("gatherv"), None);
        assert_eq!(Algorithm::parse(Collective::Bcast, "ring"), None);
    }

    #[test]
    fn schedules_build_and_validate_for_every_algorithm() {
        for a in Algorithm::ALL {
            for n in [1u32, 2, 5, 8, 13] {
                let s = a.schedule(n, 10_000).materialize();
                s.validate().unwrap_or_else(|e| panic!("{a:?} n={n}: {e}"));
                assert_eq!(s.num_ranks, n);
            }
        }
    }

    #[test]
    fn display_is_qualified() {
        assert_eq!(Algorithm::BcastBinomial.to_string(), "bcast.binomial");
        assert_eq!(Algorithm::AllgatherRing.to_string(), "allgather.ring");
    }
}
