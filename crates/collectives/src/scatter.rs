//! Binomial-tree scatter, shared by the scatter-based bcast algorithms.

use crate::blocks::Blocks;
use acclaim_netsim::Msg;

/// Visit the rounds of a binomial scatter of `blocks` from rank 0.
///
/// The sender of segment `[lo, hi)` is rank `lo`; each round it hands the
/// upper half `[mid, hi)` to rank `mid`. After the final round rank `i`
/// holds exactly block `i`. Rounds = `ceil(log2(n))`.
pub(crate) fn visit_binomial_scatter(blocks: &Blocks, visit: &mut dyn FnMut(&[Msg])) {
    let n = blocks.count();
    if n <= 1 {
        return;
    }
    let mut segments: Vec<(u32, u32)> = vec![(0, n)];
    let mut next: Vec<(u32, u32)> = Vec::new();
    let mut buf: Vec<Msg> = Vec::new();
    while segments.iter().any(|&(lo, hi)| hi - lo > 1) {
        buf.clear();
        next.clear();
        for &(lo, hi) in &segments {
            if hi - lo <= 1 {
                next.push((lo, hi));
                continue;
            }
            let mid = lo + (hi - lo).div_ceil(2);
            buf.push(Msg::data(lo, mid, blocks.range(mid, hi)));
            next.push((lo, mid));
            next.push((mid, hi));
        }
        visit(&buf);
        std::mem::swap(&mut segments, &mut next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::ceil_log2;
    use acclaim_netsim::{MaterializedSchedule, Schedule};

    fn materialize(n: u32, m: u64) -> MaterializedSchedule {
        struct S(Blocks);
        impl Schedule for S {
            fn num_ranks(&self) -> u32 {
                self.0.count()
            }
            fn visit_rounds(&self, visit: &mut dyn FnMut(&[Msg])) {
                visit_binomial_scatter(&self.0, visit);
            }
        }
        S(Blocks::new(m, n)).materialize()
    }

    #[test]
    fn single_rank_has_no_rounds() {
        assert!(materialize(1, 1000).rounds.is_empty());
    }

    #[test]
    fn two_ranks_single_message() {
        let s = materialize(2, 100);
        assert_eq!(s.rounds.len(), 1);
        assert_eq!(s.rounds[0], vec![Msg::data(0, 1, 50)]);
    }

    #[test]
    fn round_count_is_ceil_log2() {
        for n in [2u32, 3, 4, 5, 7, 8, 9, 16, 17, 31, 32, 33] {
            let s = materialize(n, 1 << 16);
            assert_eq!(
                s.rounds.len() as u32,
                ceil_log2(n),
                "wrong depth for n={n}"
            );
        }
    }

    #[test]
    fn every_nonroot_rank_receives_exactly_once() {
        for n in [2u32, 5, 8, 13, 16, 21] {
            let s = materialize(n, 10_000);
            let mut recvs = vec![0u32; n as usize];
            for round in &s.rounds {
                for m in round {
                    recvs[m.dst as usize] += 1;
                }
            }
            assert_eq!(recvs[0], 0, "root must not receive");
            assert!(
                recvs[1..].iter().all(|&r| r == 1),
                "n={n}: each rank receives its sub-buffer once: {recvs:?}"
            );
        }
    }

    #[test]
    fn receiver_gets_bytes_covering_its_own_block() {
        // Every received message carries at least the receiver's block.
        for n in [3u32, 6, 12] {
            let blocks = Blocks::new(9_999, n);
            let s = materialize(n, 9_999);
            for round in &s.rounds {
                for m in round {
                    assert!(m.bytes >= blocks.size(m.dst), "n={n}, msg {m:?}");
                }
            }
        }
    }

    #[test]
    fn total_scattered_bytes_match_theory() {
        // Sum over ranks of (depth into tree) weighted bytes is hard to
        // state exactly; the simplest exact invariant is that the bytes
        // entering each rank equal the sub-buffer it is responsible for
        // distributing (its own block plus its subtree's blocks).
        let n = 8u32;
        let m = 8_000u64;
        let s = materialize(n, m);
        let mut received = vec![0u64; n as usize];
        for round in &s.rounds {
            for msg in round {
                received[msg.dst as usize] += msg.bytes;
            }
        }
        // With n=8, m=8000: rank 4 receives blocks 4..8 = 4000, rank 2
        // receives 2..4 = 2000, etc.
        assert_eq!(received, vec![0, 1000, 2000, 1000, 4000, 1000, 2000, 1000]);
    }
}
