//! Validate every collective algorithm's schedule through the flow-level
//! DES against the round simulator used for dataset generation, across
//! rank counts (P2 and non-P2) and message sizes.

use acclaim_collectives::{Algorithm, Collective};
use acclaim_netsim::{Allocation, Cluster, FlowSim, RoundSim};

fn cluster(nodes: u32) -> Cluster {
    let base = Cluster::bebop_like();
    let alloc = Allocation::contiguous(&base.topology, nodes);
    base.with_allocation(alloc)
}

#[test]
fn engines_agree_for_every_algorithm_and_shape() {
    let mut rs = RoundSim::new();
    let mut des = FlowSim::new();
    for a in Algorithm::ALL {
        for (nodes, ppn) in [(4u32, 1u32), (8, 2), (5, 2), (7, 1)] {
            for bytes in [64u64, 8_192, 262_144] {
                let c = cluster(nodes);
                let ranks = nodes * ppn;
                let sched = a.schedule(ranks, bytes).materialize();
                sched.validate().unwrap();
                let t_rs = rs.simulate(&c, ppn, &sched);
                let t_des = des.simulate(&c, ppn, &sched);
                assert!(t_rs > 0.0 && t_des > 0.0);
                let ratio = t_des / t_rs;
                assert!(
                    (0.25..=2.0).contains(&ratio),
                    "{a:?} n={nodes} ppn={ppn} m={bytes}: roundsim={t_rs:.1} des={t_des:.1}"
                );
            }
        }
    }
}

#[test]
fn relative_ordering_survives_the_engine_swap_for_large_messages() {
    // At bandwidth-dominated sizes, both engines must agree on which
    // algorithm is fastest (or be within a photo-finish margin).
    let mut rs = RoundSim::new();
    let mut des = FlowSim::new();
    let c = cluster(8);
    let m = 1u64 << 19;
    for collective in Collective::ALL {
        let mut times_rs: Vec<(Algorithm, f64)> = Vec::new();
        let mut times_des: Vec<(Algorithm, f64)> = Vec::new();
        for &a in collective.algorithms() {
            let sched = a.schedule(16, m).materialize();
            times_rs.push((a, rs.simulate(&c, 2, &sched)));
            times_des.push((a, des.simulate(&c, 2, &sched)));
        }
        let best_rs = times_rs
            .iter()
            .min_by(|x, y| x.1.total_cmp(&y.1))
            .unwrap()
            .0;
        let best_des = times_des
            .iter()
            .min_by(|x, y| x.1.total_cmp(&y.1))
            .unwrap()
            .0;
        if best_rs != best_des {
            let rs_best_time = times_rs.iter().find(|(a, _)| *a == best_rs).unwrap().1;
            let rs_des_winner = times_rs.iter().find(|(a, _)| *a == best_des).unwrap().1;
            assert!(
                rs_des_winner <= 1.25 * rs_best_time,
                "{collective:?}: engines disagree beyond a photo finish: \
                 {times_rs:?} vs {times_des:?}"
            );
        }
    }
}

#[test]
fn nonp2_rank_counts_cost_more_for_p2_favoring_algorithms() {
    // The structural fold penalty: recursive-doubling allreduce at 9
    // ranks must be slower than at 8 ranks *per the simulator*, while
    // ring allgather grows smoothly.
    let mut rs = RoundSim::new();
    let m = 65_536u64;
    let t8 = rs.simulate(
        &cluster(8),
        1,
        Algorithm::AllreduceRecursiveDoubling.schedule(8, m).as_ref(),
    );
    let t9 = rs.simulate(
        &cluster(9),
        1,
        Algorithm::AllreduceRecursiveDoubling.schedule(9, m).as_ref(),
    );
    assert!(
        t9 > 1.3 * t8,
        "fold rounds must make 9 ranks much slower: {t8} vs {t9}"
    );

    let r8 = rs.simulate(
        &cluster(8),
        1,
        Algorithm::AllgatherRing.schedule(8, m).as_ref(),
    );
    let r9 = rs.simulate(
        &cluster(9),
        1,
        Algorithm::AllgatherRing.schedule(9, m).as_ref(),
    );
    assert!(
        r9 < 1.3 * r8,
        "ring must grow smoothly with rank count: {r8} vs {r9}"
    );
}

#[test]
fn nonp2_message_sizes_penalize_whole_transfers_but_padding_escapes() {
    // A non-P2 payload slows the binomial tree (non-P2 wire transfers),
    // while scatter_rd's padded block exchanges ship P2 blocks — the
    // trade-off that makes the non-P2 winner unlearnable from P2 data.
    let mut rs = RoundSim::new();
    let c = cluster(8);
    let p2 = 262_144u64;
    let nonp2 = 262_144 + 4_096; // 64-aligned but not a power of two
    let bin_ratio = rs.simulate(
        &c,
        1,
        Algorithm::BcastBinomial.schedule(8, nonp2).as_ref(),
    ) / rs.simulate(&c, 1, Algorithm::BcastBinomial.schedule(8, p2).as_ref());
    assert!(
        bin_ratio > 1.2,
        "binomial must pay the non-P2 slow path: ratio {bin_ratio}"
    );
}
