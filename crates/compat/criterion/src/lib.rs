//! Offline subset of `criterion`: enough of the API to compile and run
//! the workspace's `harness = false` bench targets.
//!
//! No statistical machinery — each benchmark is timed with an adaptive
//! iteration count and the mean wall-clock time per iteration is
//! printed. Good for relative comparisons (the only thing the repo's
//! benches assert on), not for rigorous confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark registry / runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 100,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 100, &mut body);
        self
    }
}

/// A group of benchmarks sharing a prefix and sample-size setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Lower/raise the per-benchmark sample budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark `body` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.0, self.sample_size, &mut |b| body(b, input));
        self
    }

    /// Benchmark a closure under a plain name.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, &mut body);
        self
    }

    /// End the group (upstream flushes reports here; a no-op offline).
    pub fn finish(self) {}
}

/// A benchmark identifier (`function/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// An id that is just the parameter rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// The timing handle passed to benchmark bodies.
pub struct Bencher {
    mean_ns: f64,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, adaptively picking an iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(20) && warmup_iters < 1_000 {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let est_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);

        // Size the measured run off the estimate and the sample budget:
        // aim for ~2ms per sample block, `sample_size` blocks, capped to
        // keep slow benchmarks (whole autotuning runs) tractable.
        let block_iters = (2e6 / est_ns).ceil().max(1.0) as u64;
        let blocks = self.sample_size.clamp(1, 100) as u64;
        let total_budget_ns = 2e8; // 200ms ceiling per benchmark
        let max_total = (total_budget_ns / est_ns).ceil().max(1.0) as u64;
        let total_iters = (block_iters * blocks).min(max_total).max(1);

        let start = Instant::now();
        for _ in 0..total_iters {
            std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / total_iters as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, body: &mut F) {
    let mut bencher = Bencher {
        mean_ns: 0.0,
        sample_size,
    };
    body(&mut bencher);
    let mean = bencher.mean_ns;
    if mean >= 1e9 {
        println!("  {name:<48} {:>12.3} s/iter", mean / 1e9);
    } else if mean >= 1e6 {
        println!("  {name:<48} {:>12.3} ms/iter", mean / 1e6);
    } else if mean >= 1e3 {
        println!("  {name:<48} {:>12.3} us/iter", mean / 1e3);
    } else {
        println!("  {name:<48} {:>12.1} ns/iter", mean);
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given group(s).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        let mut measured = 0.0;
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            measured = b.mean_ns;
        });
        group.finish();
        assert!(measured > 0.0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
