//! Collection strategies.

use crate::{Strategy, TestRng};
use rand::Rng;
use std::ops::Range;

/// A strategy producing `Vec`s with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.random_range(self.size.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
