//! Offline subset of `proptest`: deterministic seeded random-case
//! testing with the strategy combinators this workspace uses.
//!
//! Differences from upstream (acceptable for an offline build): no
//! shrinking — a failing case panics with the generated inputs left to
//! the assertion message; the RNG stream is derived from the test's
//! module path, so runs are reproducible but do not match upstream
//! proptest's sequences.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Range;

pub mod collection;
pub mod prelude;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Deterministic per-test RNG, seeded from the test's full path.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h = DefaultHasher::new();
    test_name.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// Runner configuration (`cases` = number of generated inputs per test).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test body runs against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 48 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Transform generated values, rejecting those mapped to `None`.
    /// `whence` names the filter in the panic raised if rejection never
    /// terminates.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMapStrategy {
            inner: self,
            whence,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMapStrategy<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map `{}` rejected 10000 draws in a row", self.whence);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// against `cases` random draws (panicking assertions report failures).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items ($cfg); $($rest)*);
    };
    (@items ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@items ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = test_rng("ranges_respect_bounds");
        for _ in 0..200 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..4.5).generate(&mut rng);
            assert!((-2.0..4.5).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = test_rng("combinators_compose");
        let s = (1u32..10, 1u32..10)
            .prop_filter_map("distinct", |(a, b)| (a != b).then_some((a, b)))
            .prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..=17).contains(&v));
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = test_rng("x");
        let mut b = test_rng("x");
        let va: Vec<u32> = (0..8).map(|_| (0u32..1000).generate(&mut a)).collect();
        let vb: Vec<u32> = (0..8).map(|_| (0u32..1000).generate(&mut b)).collect();
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_loops(n in 1u32..50, xs in crate::collection::vec(0.0f64..1.0, 1..6)) {
            prop_assert!(n >= 1 && n < 50);
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            for x in xs {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(pair in (0u8..4, 0u8..4)) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.1 < 4, true);
        }
    }
}
