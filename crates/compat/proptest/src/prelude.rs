//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
