//! Uniform sampling from ranges and standard distributions.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Uniform value below `n` (exclusive), unbiased via rejection.
#[inline]
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Largest multiple of n that fits in u64, minus one.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// A range that can be sampled uniformly, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::fill(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.start.max(f64_prev(self.end))
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::fill(rng) as f32;
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[inline]
fn f64_prev(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

/// Types samplable by `Rng::random` (the `StandardUniform`
/// distribution in upstream terms).
pub trait Fill: Sized {
    /// Draw one standard-uniform value.
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Fill for f64 {
    /// Uniform in `[0, 1)` with 53 random bits.
    #[inline]
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Fill for f32 {
    #[inline]
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Fill for u64 {
    #[inline]
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Fill for u32 {
    #[inline]
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Fill for bool {
    #[inline]
    fn fill<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
