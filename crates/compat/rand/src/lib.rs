//! Offline, dependency-free subset of the `rand` 0.9 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the exact surface the autotuner uses: a deterministic
//! `StdRng` (splitmix64-seeded xoshiro256**), `SeedableRng::seed_from_u64`,
//! `Rng::{random, random_range}` over integer and float ranges, and
//! `seq::SliceRandom::shuffle`. Streams are stable across runs and
//! platforms — reproducibility is load-bearing for the incremental-refit
//! equivalence guarantees — but they intentionally do NOT match upstream
//! `rand`'s streams.

pub mod rngs;
pub mod seq;

mod distr;

pub use distr::{Fill as StandardFill, SampleRange};

/// Core random-number source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction; only the `seed_from_u64` entry point is
/// provided (the only one the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// Panics on empty ranges, like upstream `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample a value of a type with a standard uniform distribution
    /// (`f64` in `[0, 1)`, full-width integers, fair `bool`).
    fn random<T>(&mut self) -> T
    where
        T: distr::Fill,
    {
        T::fill(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.random_range(5..=5);
            assert_eq!(w, 5);
            let x: i64 = rng.random_range(-10..=10);
            assert!((-10..=10).contains(&x));
            let f: f64 = rng.random_range(-2.5..4.0);
            assert!((-2.5..4.0).contains(&f));
        }
    }

    #[test]
    fn random_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean of 1000 uniforms is ~0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: u32 = rng.random_range(5..5);
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        use crate::seq::SliceRandom;
        let mut v: Vec<u32> = (0..20).collect();
        let mut w = v.clone();
        v.shuffle(&mut StdRng::seed_from_u64(9));
        w.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(v, w);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements virtually never shuffle to identity");
    }
}
