//! Sequence helpers (`SliceRandom`).

use crate::distr::uniform_below;
use crate::Rng;

/// In-place slice shuffling, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }
}
