//! Offline subset of the `rayon` API over `std::thread::scope`.
//!
//! The build environment has no crates.io access, so this crate vendors
//! the surface the workspace uses: `into_par_iter().map(..).collect()`.
//! Unlike a sequential shim it is genuinely parallel — items are split
//! into per-core chunks and mapped on scoped threads, preserving input
//! order. The eager model (each adapter runs to completion) is fine for
//! the coarse-grained work the autotuner parallelizes: tree fits and
//! microbenchmark simulations, each far heavier than a thread handoff.

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParChunksMut, ParIter, ParallelSliceMut};
}

/// `par_chunks_mut` over mutable slices (subset of rayon's
/// `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `chunk_size` (the last may be
    /// shorter) to be processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Eager parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> EnumeratedParChunksMut<'a, T> {
        EnumeratedParChunksMut(self)
    }

    /// Run `f` over every chunk on scoped threads.
    pub fn for_each<F: Fn(&mut [T]) + Sync>(self, f: F) {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// [`ParChunksMut`] with chunk indices attached.
pub struct EnumeratedParChunksMut<'a, T: Send>(ParChunksMut<'a, T>);

impl<T: Send> EnumeratedParChunksMut<'_, T> {
    /// Run `f` over every `(index, chunk)` pair on scoped threads.
    /// Chunks are distributed contiguously over the worker threads, so
    /// the callback sees each chunk exactly once, in no particular
    /// order across threads.
    pub fn for_each<F: Fn((usize, &mut [T])) + Sync>(self, f: F) {
        let chunk_size = self.0.chunk_size;
        let chunks: Vec<(usize, &mut [T])> =
            self.0.slice.chunks_mut(chunk_size).enumerate().collect();
        let len = chunks.len();
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(len.max(1));
        if threads <= 1 || len <= 1 {
            for pair in chunks {
                f(pair);
            }
            return;
        }
        let per_thread = len.div_ceil(threads);
        let mut groups: Vec<Vec<(usize, &mut [T])>> = Vec::new();
        let mut it = chunks.into_iter();
        loop {
            let group: Vec<_> = it.by_ref().take(per_thread).collect();
            if group.is_empty() {
                break;
            }
            groups.push(group);
        }
        std::thread::scope(|scope| {
            for group in groups {
                scope.spawn(|| {
                    for pair in group {
                        f(pair);
                    }
                });
            }
        });
    }
}

/// Conversion into an (eager) parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Convert; the returned [`ParIter`] owns the materialized items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Item = u32;
    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// An eager, order-preserving parallel pipeline over owned items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map: runs `f` over all items on scoped threads, keeping
    /// the input order in the output.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: par_map(self.items, &f),
        }
    }

    /// Gather the results.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items in the pipeline.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the pipeline holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

fn par_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let len = items.len();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(len.max(1));
    if threads <= 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(len).collect();
    std::thread::scope(|scope| {
        for (input, output) in slots.chunks_mut(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (slot, dst) in input.iter_mut().zip(output.iter_mut()) {
                    *dst = Some(f(slot.take().expect("slot filled once")));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("all chunks completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_and_empty_inputs_work() {
        let out: Vec<String> = vec!["a", "bb", "ccc"]
            .into_par_iter()
            .map(|s| s.to_uppercase())
            .collect();
        assert_eq!(out, vec!["A", "BB", "CCC"]);
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..256)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::yield_now();
            })
            .collect();
        let n = seen.lock().unwrap().len();
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert!(n >= 1 && n <= cores.max(1));
        if cores > 1 {
            assert!(n > 1, "expected parallel execution on a multi-core host");
        }
    }
}
