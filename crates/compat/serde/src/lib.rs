//! Offline subset of `serde`: a JSON-shaped value tree plus
//! `Serialize`/`Deserialize` traits and derive macros.
//!
//! The build environment has no crates.io access. Upstream serde's
//! visitor architecture is far more than this workspace needs, so the
//! vendored subset maps every serializable type to a [`Value`] tree
//! (the same data model `serde_json` exposes) and derives trait impls
//! with a hand-rolled proc macro. Representations follow serde's JSON
//! conventions: structs are objects, unit enum variants are strings,
//! data-carrying variants are single-entry `{"Variant": ...}` objects,
//! `Option` is `null`/value, and newtype structs are transparent.

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Serialization to the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {}", got.kind()))
    }

    /// A missing-field error.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range")))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = match v {
            Value::Array(items) => items,
            other => return Err(Error::expected("array", other)),
        };
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected {N} elements, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Array(items) => items,
                    other => return Err(Error::expected("tuple array", other)),
                };
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(Error::custom(format!(
                        "expected {expect}-tuple, got {} elements", items.len())));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Option::<u8>::from_value(&None::<u8>.to_value()).unwrap(),
            None
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            <(u8, f64)>::from_value(&(7u8, 0.5f64).to_value()).unwrap(),
            (7, 0.5)
        );
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u32::from_value(&Value::Bool(true)).is_err());
        assert!(bool::from_value(&Value::Null).is_err());
        assert!(u8::from_value(&300u64.to_value()).is_err());
    }
}
