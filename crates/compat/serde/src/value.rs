//! The JSON-shaped value tree shared by `serde` and `serde_json`.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, when numeric and exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `i64`, when numeric and exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as an `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

macro_rules! impl_value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::from_u64(v as u64)) }
        }
    )*};
}
impl_value_from_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::from_i64(v as i64)) }
        }
    )*};
}
impl_value_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::from_f64(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// From an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number::PosInt(v)
    }

    /// From a signed integer (kept exact either way).
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number::PosInt(v as u64)
        } else {
            Number::NegInt(v)
        }
    }

    /// From a float.
    pub fn from_f64(v: f64) -> Self {
        Number::Float(v)
    }

    /// As `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) => None,
            Number::Float(f) => {
                if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 {
                    Some(f as u64)
                } else {
                    None
                }
            }
        }
    }

    /// As `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }

    /// As `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(f) => f,
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert (or replace) a key.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Look a key up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// The single `(key, value)` entry, when the map has exactly one —
    /// the shape of an externally tagged enum variant.
    pub fn single_entry(&self) -> Option<(&str, &Value)> {
        match self.entries.as_slice() {
            [(k, v)] => Some((k.as_str(), v)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_get_and_replace() {
        let mut m = Map::new();
        m.insert("a".into(), Value::from(1u32));
        m.insert("b".into(), Value::from("x"));
        m.insert("a".into(), Value::from(2u32));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("a").unwrap().as_u64(), Some(2));
        assert_eq!(m.get("b").unwrap().as_str(), Some("x"));
        assert!(m.get("c").is_none());
    }

    #[test]
    fn number_conversions() {
        assert_eq!(Number::from_i64(-3).as_i64(), Some(-3));
        assert_eq!(Number::from_i64(3).as_u64(), Some(3));
        assert_eq!(Number::from_u64(7).as_f64(), 7.0);
        assert_eq!(Number::from_f64(2.0).as_u64(), Some(2));
        assert_eq!(Number::from_f64(2.5).as_u64(), None);
        assert_eq!(Number::from_f64(-2.0).as_i64(), Some(-2));
    }

    #[test]
    fn single_entry_detects_enum_shape() {
        let mut m = Map::new();
        m.insert("Variant".into(), Value::Null);
        assert_eq!(m.single_entry().unwrap().0, "Variant");
        m.insert("Other".into(), Value::Null);
        assert!(m.single_entry().is_none());
    }
}
