//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline
//! serde subset.
//!
//! The build environment has no crates.io access, so these macros are
//! written against `proc_macro` alone — no `syn`, no `quote`. A small
//! token-walker extracts the item shape (struct with named / tuple /
//! unit fields, or enum with unit / tuple / struct variants) and the
//! impls are emitted as formatted source strings. Generics are not
//! supported (nothing in the workspace derives on a generic type); the
//! `#[serde(default)]` field attribute is honored on named fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct FieldDef {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<FieldDef>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct VariantDef {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<VariantDef> },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => emit_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => emit_deserialize(&item).parse().expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("literal parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i).map(|_| ())?;

    let keyword = ident_at(&tokens, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&tokens, i).ok_or("expected item name")?;
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde compat derive: generic type `{name}` unsupported"));
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())?
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                _ => return Err("unsupported struct body".into()),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => return Err("expected enum body".into()),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Skip leading `#[...]` attributes and a `pub` / `pub(...)` visibility;
/// returns whether any skipped attribute was `#[serde(default)]`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<bool, String> {
    let mut has_default = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let group = match tokens.get(*i + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                    _ => return Err("malformed attribute".into()),
                };
                if attr_is_serde_default(group.stream()) {
                    has_default = true;
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return Ok(has_default),
        }
    }
}

fn attr_is_serde_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Fields, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = skip_attrs_and_vis(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).ok_or("expected field name")?;
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type_until_comma(&tokens, &mut i);
        fields.push(FieldDef { name, default });
    }
    Ok(Fields::Named(fields))
}

/// Advance past a type, stopping after the field-separating comma (or at
/// end of stream). Tracks `<`/`>` nesting so commas inside generics
/// don't split fields.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<VariantDef>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = ident_at(&tokens, i).ok_or("expected variant name")?;
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g.stream())?
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        variants.push(VariantDef { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------

fn emit_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, serialize_struct_body(fields)),
        Item::Enum { name, variants } => (name, serialize_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn serialize_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Named(fs) => {
            let mut out = String::from("let mut m = ::serde::Map::new();\n");
            for f in fs {
                out.push_str(&format!(
                    "m.insert(::std::string::String::from({n:?}), \
                     ::serde::Serialize::to_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            out.push_str("::serde::Value::Object(m)");
            out
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".into(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".into(),
    }
}

fn serialize_enum_body(name: &str, variants: &[VariantDef]) -> String {
    let mut arms = String::new();
    for v in variants {
        let tag = &v.name;
        match &v.fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{tag} => ::serde::Value::String(::std::string::String::from({tag:?})),\n"
            )),
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let payload = if *n == 1 {
                    "::serde::Serialize::to_value(f0)".to_string()
                } else {
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{tag}({binds}) => {{\n\
                         let mut m = ::serde::Map::new();\n\
                         m.insert(::std::string::String::from({tag:?}), {payload});\n\
                         ::serde::Value::Object(m)\n\
                     }}\n",
                    binds = binders.join(", ")
                ));
            }
            Fields::Named(fs) => {
                let binders: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                for f in fs {
                    inner.push_str(&format!(
                        "inner.insert(::std::string::String::from({n:?}), \
                         ::serde::Serialize::to_value({n}));\n",
                        n = f.name
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{tag} {{ {binds} }} => {{\n\
                         {inner}\
                         let mut m = ::serde::Map::new();\n\
                         m.insert(::std::string::String::from({tag:?}), ::serde::Value::Object(inner));\n\
                         ::serde::Value::Object(m)\n\
                     }}\n",
                    binds = binders.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

// ---------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------

fn emit_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, deserialize_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, deserialize_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn named_fields_constructor(path: &str, fs: &[FieldDef], source: &str) -> String {
    let mut out = format!("::core::result::Result::Ok({path} {{\n");
    for f in fs {
        let missing = if f.default {
            "::core::default::Default::default()".to_string()
        } else {
            format!(
                "return ::core::result::Result::Err(::serde::Error::missing_field({:?}))",
                f.name
            )
        };
        out.push_str(&format!(
            "{n}: match {source}.get({n:?}) {{\n\
                 ::core::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                 ::core::option::Option::None => {missing},\n\
             }},\n",
            n = f.name
        ));
    }
    out.push_str("})");
    out
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Named(fs) => format!(
            "let m = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", v))?;\n{}",
            named_fields_constructor(name, fs, "m")
        ),
        Fields::Tuple(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Fields::Tuple(n) => {
            let mut out = format!(
                "let a = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", v))?;\n\
                 if a.len() != {n} {{\n\
                     return ::core::result::Result::Err(::serde::Error::custom(\
                         format!(\"expected {n} elements, got {{}}\", a.len())));\n\
                 }}\n\
                 ::core::result::Result::Ok({name}(",
            );
            for i in 0..*n {
                out.push_str(&format!("::serde::Deserialize::from_value(&a[{i}])?, "));
            }
            out.push_str("))");
            out
        }
        Fields::Unit => format!(
            "if v.is_null() {{ ::core::result::Result::Ok({name}) }} else {{\n\
                 ::core::result::Result::Err(::serde::Error::expected(\"null\", v))\n\
             }}"
        ),
    }
}

fn deserialize_enum_body(name: &str, variants: &[VariantDef]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let tag = &v.name;
        match &v.fields {
            Fields::Unit => unit_arms.push_str(&format!(
                "{tag:?} => ::core::result::Result::Ok({name}::{tag}),\n"
            )),
            Fields::Tuple(1) => tagged_arms.push_str(&format!(
                "{tag:?} => ::core::result::Result::Ok({name}::{tag}(\
                 ::serde::Deserialize::from_value(val)?)),\n"
            )),
            Fields::Tuple(n) => {
                let mut arm = format!(
                    "{tag:?} => {{\n\
                         let a = val.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", val))?;\n\
                         if a.len() != {n} {{\n\
                             return ::core::result::Result::Err(::serde::Error::custom(\
                                 format!(\"expected {n} elements, got {{}}\", a.len())));\n\
                         }}\n\
                         ::core::result::Result::Ok({name}::{tag}(",
                );
                for i in 0..*n {
                    arm.push_str(&format!("::serde::Deserialize::from_value(&a[{i}])?, "));
                }
                arm.push_str("))\n}\n");
                tagged_arms.push_str(&arm);
            }
            Fields::Named(fs) => {
                let ctor = named_fields_constructor(&format!("{name}::{tag}"), fs, "inner");
                tagged_arms.push_str(&format!(
                    "{tag:?} => {{\n\
                         let inner = val.as_object().ok_or_else(|| \
                             ::serde::Error::expected(\"object\", val))?;\n\
                         {ctor}\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "match v {{\n\
             ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown unit variant `{{other}}` for {name}\"))),\n\
             }},\n\
             ::serde::Value::Object(m) => {{\n\
                 let (tag, val) = m.single_entry().ok_or_else(|| ::serde::Error::custom(\
                     \"expected single-entry object for enum {name}\"))?;\n\
                 match tag {{\n\
                     {tagged_arms}\
                     other => ::core::result::Result::Err(::serde::Error::custom(\
                         format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                 }}\n\
             }}\n\
             other => ::core::result::Result::Err(::serde::Error::expected(\"enum value\", other)),\n\
         }}"
    )
}
