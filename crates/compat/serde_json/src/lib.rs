//! Offline subset of `serde_json`: JSON text ⇄ the [`Value`] tree from
//! the vendored `serde` crate, plus typed entry points over its
//! `Serialize`/`Deserialize` traits and a `json!` macro.

mod parser;
mod writer;

pub use serde::{Map, Number, Value};

use serde::{Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub(crate) fn msg(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(writer::write(&value.to_value(), None))
}

/// Serialize a value to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(writer::write(&value.to_value(), Some(0)))
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parser::parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Build a [`Value`] from JSON-like syntax.
///
/// Supports the object / array / expression forms the workspace uses;
/// keys must be string literals and values any `Into<Value>` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert(::std::string::String::from($key), $crate::Value::from($val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = json!({
            "name": "acclaim",
            "nodes": 64u32,
            "ratio": 1.5f64,
            "tags": json!(["a", "b"]),
            "inner": json!({ "x": 1u8 }),
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);

        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_literals_and_nesting() {
        let v: Value = from_str(r#"{"a": [1, -2, 3.5, true, false, null], "b": "x\ny"}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_i64(), Some(-2));
        assert_eq!(a[2].as_f64(), Some(3.5));
        assert_eq!(a[3].as_bool(), Some(true));
        assert_eq!(a[4].as_bool(), Some(false));
        assert!(a[5].is_null());
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[0.1, 1e-9, 123456.789, -2.5e30, 1.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode \u{1F600} control \u{1}";
        let text = to_string(s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
