//! Recursive-descent JSON parser producing the shared [`Value`] tree.

use crate::Error;
use serde::{Map, Number, Value};

pub(crate) fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: must pair with a following \uXXXX low half.
            if !self.eat_keyword("\\u") {
                return Err(self.err("unpaired surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(self.err("unpaired low surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v == 0 {
                        return Ok(Value::Number(Number::from_u64(0)));
                    }
                }
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::from_i64(v)));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(v)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}
