//! JSON text emission (compact and two-space pretty printing).

use serde::{Number, Value};

/// Render `value` as JSON text. `indent` is `None` for compact output
/// or `Some(level)` for pretty output indented two spaces per level.
pub(crate) fn write(value: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    emit(value, indent, &mut out);
    out
}

fn emit(value: &Value, indent: Option<usize>, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => emit_number(*n, out),
        Value::String(s) => emit_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent.map(|l| l + 1), out);
                emit(item, indent.map(|l| l + 1), out);
            }
            newline_indent(indent, out);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent.map(|l| l + 1), out);
                emit_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(val, indent.map(|l| l + 1), out);
            }
            newline_indent(indent, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, out: &mut String) {
    if let Some(level) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str("  ");
        }
    }
}

fn emit_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                // `Display` for f64 is shortest-round-trip; force a
                // fractional marker so the text parses back as a float.
                let text = f.to_string();
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json convention: non-finite floats become null.
                out.push_str("null");
            }
        }
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
