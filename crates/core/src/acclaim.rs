//! The end-to-end ACCLAiM pipeline (paper Sec. V, Fig. 1b).
//!
//! A user submits a job through ACCLAiM with one extra input: the list
//! of collectives the application predominantly uses. Before the
//! application runs, ACCLAiM trains one model per listed collective
//! (parallel data collection, variance convergence), writes the MPICH
//! JSON tuning file, and the application then executes under the tuned
//! selections. The training time is charged against the job, so the
//! report tracks it explicitly (Fig. 14/15).

use crate::collector::FaultStats;
use crate::learner::{ActiveLearner, LearnerConfig, TrainingOutcome, WarmStart};
use crate::rules::{generate_rules, TunedSelector, TuningFile};
use acclaim_collectives::{mpich_default, Collective};
use acclaim_dataset::{traces::AppTrace, BenchmarkDatabase, FeatureSpace};
use acclaim_obs::Obs;
use serde::{Deserialize, Serialize};

/// Pipeline configuration. Serializable so remote clients (the
/// `acclaim-serve` wire protocol) can ship a full tuning request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcclaimConfig {
    /// Active-learning configuration (defaults to the paper's ACCLAiM).
    pub learner: LearnerConfig,
    /// The P2 grid models are trained over (bounded by the job size).
    pub space: FeatureSpace,
}

impl AcclaimConfig {
    /// The paper's configuration over a given feature space.
    pub fn new(space: FeatureSpace) -> Self {
        AcclaimConfig {
            learner: LearnerConfig::acclaim(),
            space,
        }
    }
}

/// The result of tuning one job.
#[derive(Debug, Clone)]
pub struct JobTuning {
    /// The generated MPICH tuning file.
    pub tuning_file: TuningFile,
    /// Per-collective training outcomes, in input order.
    pub reports: Vec<(Collective, TrainingOutcome)>,
}

impl JobTuning {
    /// Total machine time spent training, including any test sets (µs).
    /// Simulated cluster clock; excludes host-CPU model updates — see
    /// [`JobTuning::training_cost_us`].
    pub fn training_wall_us(&self) -> f64 {
        self.reports.iter().map(|(_, o)| o.total_wall_us()).sum()
    }

    /// Machine time spent collecting training data only (µs).
    pub fn collection_wall_us(&self) -> f64 {
        self.reports.iter().map(|(_, o)| o.stats.wall_us).sum()
    }

    /// Machine time spent collecting test sets, when the criterion
    /// required them (µs).
    pub fn test_wall_us(&self) -> f64 {
        self.reports.iter().map(|(_, o)| o.test_wall_us).sum()
    }

    /// Host CPU time spent on model updates — forest fits/refits and
    /// variance scans (µs, real clock, not simulated).
    pub fn model_update_wall_us(&self) -> f64 {
        self.reports.iter().map(|(_, o)| o.model_update_wall_us).sum()
    }

    /// All-in training cost: machine time plus model-update CPU time
    /// (µs). The terms tick on different clocks; see
    /// [`TrainingOutcome::total_cost_us`].
    pub fn training_cost_us(&self) -> f64 {
        self.reports.iter().map(|(_, o)| o.total_cost_us()).sum()
    }

    /// A runtime selector over the generated file.
    pub fn selector(&self) -> TunedSelector {
        TunedSelector::new(self.tuning_file.clone())
    }

    /// Fault-handling counters merged across all collectives' training
    /// runs (all zero when faults were disabled).
    pub fn fault_stats(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for (_, o) in &self.reports {
            total.merge(&o.faults);
        }
        total
    }

    /// Human-readable per-collective summary (minutes, points, waves).
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (c, o) in &self.reports {
            let _ = writeln!(
                s,
                "{:<10} {:>4} points  {:>4} waves  {:>6.2} min  (parallel speedup {:.2}x, {})",
                c.name(),
                o.stats.points,
                o.stats.waves,
                o.stats.wall_us / 60e6,
                o.stats.speedup(),
                if o.converged { "converged" } else { "budget hit" },
            );
        }
        let _ = writeln!(
            s,
            "total training time: {:.2} min",
            self.training_wall_us() / 60e6
        );
        // Three-way cost split. Collection and test-set figures are
        // simulated machine (allocation) time; model updates are host
        // CPU time measured on the real clock.
        let _ = writeln!(
            s,
            "cost split: collection {:.2} min, test sets {:.2} min (machine), model updates {:.2} s (host CPU)",
            self.collection_wall_us() / 60e6,
            self.test_wall_us() / 60e6,
            self.model_update_wall_us() / 1e6,
        );
        // Fault summary, only when something fault-related happened.
        let f = self.fault_stats();
        if !f.is_quiet() {
            let _ = writeln!(
                s,
                "faults: {} retries, {} timeouts, {} failed runs, {} outliers rejected",
                f.retries, f.timeouts, f.failures, f.outliers_rejected,
            );
            if f.node_evictions + f.points_abandoned + f.candidates_dropped > 0 {
                let _ = writeln!(
                    s,
                    "degraded: {} nodes evicted, {} points abandoned, {} candidates dropped",
                    f.node_evictions, f.points_abandoned, f.candidates_dropped,
                );
            }
        }
        s
    }
}

/// The ACCLAiM autotuner.
#[derive(Debug, Clone)]
pub struct Acclaim {
    config: AcclaimConfig,
}

impl Acclaim {
    /// An autotuner with the given configuration.
    pub fn new(config: AcclaimConfig) -> Self {
        Acclaim { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcclaimConfig {
        &self.config
    }

    /// Train models for the user's collective list and emit the tuning
    /// file. `db` stands in for the job's allocation: its cluster is
    /// where the microbenchmarks run.
    pub fn tune(&self, db: &BenchmarkDatabase, collectives: &[Collective]) -> JobTuning {
        self.tune_with_obs(db, collectives, &Obs::disabled())
    }

    /// [`Acclaim::tune`] with tracing: each collective's training runs
    /// under the learner's span tree on `obs`, and rule generation gets
    /// its own `learner/generate_rules` span. Identical results to
    /// [`Acclaim::tune`].
    pub fn tune_with_obs(
        &self,
        db: &BenchmarkDatabase,
        collectives: &[Collective],
        obs: &Obs,
    ) -> JobTuning {
        self.tune_with_warm(db, collectives, obs, |_| None)
    }

    /// [`Acclaim::tune_with_obs`] with per-collective warm starts: the
    /// `warm_for` callback supplies prior measurements (typically probed
    /// from a persistent tuning store) for each collective before its
    /// training run. Returning `None` everywhere is bit-identical to
    /// [`Acclaim::tune_with_obs`]. The callback keeps this crate
    /// store-agnostic — `acclaim-store` plugs in here.
    pub fn tune_with_warm(
        &self,
        db: &BenchmarkDatabase,
        collectives: &[Collective],
        obs: &Obs,
        warm_for: impl Fn(Collective) -> Option<WarmStart>,
    ) -> JobTuning {
        self.tune_while(db, collectives, obs, warm_for, || true).0
    }

    /// [`Acclaim::tune_with_warm`] with a cooperative cancellation
    /// hook: `keep_going` is consulted before each collective trains,
    /// and a `false` stops the job at that collective boundary —
    /// training one collective is the unit of work, never torn apart
    /// mid-run. Returns the (possibly partial) tuning — reports and
    /// rule tables only for the collectives that completed — plus
    /// whether the whole list ran. An always-`true` hook is
    /// bit-identical to [`Acclaim::tune_with_warm`].
    ///
    /// This is the hook long-running callers (the `acclaim-serve` job
    /// queue) cancel through; the learner itself stays oblivious.
    pub fn tune_while(
        &self,
        db: &BenchmarkDatabase,
        collectives: &[Collective],
        obs: &Obs,
        warm_for: impl Fn(Collective) -> Option<WarmStart>,
        mut keep_going: impl FnMut() -> bool,
    ) -> (JobTuning, bool) {
        assert!(!collectives.is_empty(), "the user must list collectives");
        let learner = ActiveLearner::new(self.config.learner.clone());
        let mut reports = Vec::with_capacity(collectives.len());
        let mut tables = Vec::with_capacity(collectives.len());
        let mut completed = true;
        for &c in collectives {
            if !keep_going() {
                completed = false;
                break;
            }
            let warm = warm_for(c);
            let outcome =
                learner.train_warm(db, c, &self.config.space, None, obs, warm.as_ref());
            {
                let _span = obs.span("learner", "generate_rules");
                tables.push(generate_rules(&outcome.model, &self.config.space));
            }
            reports.push((c, outcome));
        }
        (
            JobTuning {
                tuning_file: TuningFile {
                    collectives: tables,
                },
                reports,
            },
            completed,
        )
    }
}

/// Application-level effect of a tuning (used by the examples and
/// Fig. 15): per-iteration collective time under the MPICH defaults vs.
/// the tuned selections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApplicationImpact {
    /// Collective time per iteration under the default heuristic (µs).
    pub default_us: f64,
    /// Collective time per iteration under the tuned selections (µs).
    pub tuned_us: f64,
}

impl ApplicationImpact {
    /// Collective-phase speedup from tuning.
    pub fn collective_speedup(&self) -> f64 {
        self.default_us / self.tuned_us
    }

    /// Whole-application speedup when collectives are `fraction` of the
    /// untuned runtime (Amdahl).
    pub fn app_speedup(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction));
        let saved = fraction * (1.0 - self.tuned_us / self.default_us);
        1.0 / (1.0 - saved)
    }
}

/// Measure a tuning's impact on an application trace at a job shape.
pub fn application_impact(
    db: &BenchmarkDatabase,
    trace: &AppTrace,
    nodes: u32,
    ppn: u32,
    selector: &TunedSelector,
) -> ApplicationImpact {
    let default_us = trace.collective_time_per_iteration(db, nodes, ppn, |c, p| {
        mpich_default(c, p.ranks(), p.msg_bytes)
    });
    let tuned_us =
        trace.collective_time_per_iteration(db, nodes, ppn, |c, p| selector.select(c, p));
    ApplicationImpact {
        default_us,
        tuned_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectionPolicy;
    use crate::convergence::VarianceConvergence;
    use crate::learner::{CollectionStrategy, CriterionConfig, SelectionPolicy};
    use acclaim_dataset::DatasetConfig;
    use acclaim_ml::ForestConfig;

    fn fast_config() -> AcclaimConfig {
        AcclaimConfig {
            learner: LearnerConfig {
                forest: ForestConfig {
                    n_trees: 16,
                    ..ForestConfig::for_n_features(4)
                },
                policy: SelectionPolicy::OwnVariance,
                strategy: CollectionStrategy::Parallel,
                criterion: CriterionConfig::CumulativeVariance(VarianceConvergence::relative(
                    3, 0.1,
                )),
                nonp2_every: Some(5),
                explore_every: None,
                max_iterations: 40,
                seed: 5,
                incremental: true,
                flat: true,
                collection: CollectionPolicy::default(),
                analytic_priors: Default::default(),
            },
            space: FeatureSpace::tiny(),
        }
    }

    #[test]
    fn tune_produces_a_table_per_collective() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let tuning = Acclaim::new(fast_config())
            .tune(&db, &[Collective::Bcast, Collective::Reduce]);
        assert_eq!(tuning.reports.len(), 2);
        assert_eq!(tuning.tuning_file.collectives.len(), 2);
        assert!(tuning.training_wall_us() > 0.0);
        let summary = tuning.summary();
        assert!(summary.contains("bcast") && summary.contains("reduce"));
    }

    #[test]
    fn tuned_selector_answers_for_tuned_and_untuned_collectives() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let tuning = Acclaim::new(fast_config()).tune(&db, &[Collective::Bcast]);
        let sel = tuning.selector();
        let p = acclaim_dataset::Point::new(4, 2, 1_024);
        assert_eq!(sel.select(Collective::Bcast, p).collective(), Collective::Bcast);
        // Untuned collective falls back to the heuristic.
        assert_eq!(
            sel.select(Collective::Allgather, p),
            mpich_default(Collective::Allgather, p.ranks(), p.msg_bytes)
        );
    }

    #[test]
    fn tuned_selections_do_not_lose_to_defaults() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let space = FeatureSpace::tiny();
        let tuning = Acclaim::new(fast_config()).tune(&db, &[Collective::Bcast]);
        let sel = tuning.selector();
        let pts = space.points();
        let tuned = db.average_slowdown(Collective::Bcast, &pts, |p| {
            sel.select(Collective::Bcast, p)
        });
        let default = db.average_slowdown(Collective::Bcast, &pts, |p| {
            mpich_default(Collective::Bcast, p.ranks(), p.msg_bytes)
        });
        // The tiny space trains in a handful of waves with a loose
        // criterion; allow a modest margin over the (often already
        // optimal) default.
        assert!(
            tuned <= default + 0.08,
            "tuned {tuned} should not lose to default {default}"
        );
    }

    #[test]
    fn tune_while_is_identical_when_not_cancelled_and_partial_when_cancelled() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let both = [Collective::Bcast, Collective::Reduce];
        let full = Acclaim::new(fast_config()).tune(&db, &both);
        let (same, done) = Acclaim::new(fast_config()).tune_while(
            &db,
            &both,
            &Obs::disabled(),
            |_| None,
            || true,
        );
        assert!(done);
        assert_eq!(full.tuning_file, same.tuning_file);
        // Cancelling after the first check stops at the collective
        // boundary: one completed report, one completed rule table.
        let mut checks = 0;
        let (partial, done) = Acclaim::new(fast_config()).tune_while(
            &db,
            &both,
            &Obs::disabled(),
            |_| None,
            || {
                checks += 1;
                checks <= 1
            },
        );
        assert!(!done);
        assert_eq!(partial.reports.len(), 1);
        assert_eq!(partial.reports[0].0, Collective::Bcast);
        assert_eq!(partial.tuning_file.collectives.len(), 1);
        assert_eq!(partial.tuning_file.collectives[0], full.tuning_file.collectives[0]);
    }

    #[test]
    fn application_impact_math() {
        let i = ApplicationImpact {
            default_us: 200.0,
            tuned_us: 100.0,
        };
        assert_eq!(i.collective_speedup(), 2.0);
        // 50% of runtime in collectives, halved: saves 25% => 1.333x.
        assert!((i.app_speedup(0.5) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(i.app_speedup(0.0), 1.0);
    }

    #[test]
    fn application_impact_runs_on_a_trace() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let tuning = Acclaim::new(fast_config())
            .tune(&db, &[Collective::Allreduce, Collective::Bcast]);
        let trace = acclaim_dataset::traces::synthetic_trace("AMG", 64, 4_096).unwrap();
        let impact = application_impact(&db, &trace, 8, 2, &tuning.selector());
        assert!(impact.default_us > 0.0 && impact.tuned_us > 0.0);
        // The tuned selection can't be catastrophically worse.
        assert!(impact.collective_speedup() > 0.8);
    }
}
