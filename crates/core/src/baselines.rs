//! The prior-art autotuners the paper compares against (Sec. II-C).
//!
//! * **Hunold et al. [CLUSTER'20]** — one random forest *per algorithm*
//!   over the three raw inputs, predicting execution time in
//!   microseconds directly (the original design — without the log-time
//!   target and derived features the later systems benefit from),
//!   trained on a uniformly random sample of the feature space.
//!   Reproduced here directly ([`HunoldAutotuner`]).
//! * **FACT [ExaMPI'21]** — active learning with a DeepHyper surrogate.
//!   Reproduced as a [`crate::learner::LearnerConfig::fact`] preset of
//!   the shared loop (surrogate-variance selection, sequential
//!   collection, test-set slowdown convergence).

use acclaim_collectives::{Algorithm, Collective};
use acclaim_dataset::{splits, BenchmarkDatabase, FeatureSpace, Point};
use acclaim_ml::{FeatureMatrix, ForestConfig, RandomForest};
use rand::{rngs::StdRng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The Hunold et al. baseline: per-algorithm forests over a random
/// training sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HunoldAutotuner {
    /// Forest hyperparameters (features: raw msg bytes, nodes, ppn).
    pub forest: ForestConfig,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for HunoldAutotuner {
    fn default() -> Self {
        HunoldAutotuner {
            forest: ForestConfig::for_n_features(4),
            seed: 0x4151,
        }
    }
}

/// A trained per-algorithm ensemble.
#[derive(Debug, Clone)]
pub struct HunoldModel {
    collective: Collective,
    forests: Vec<RandomForest>,
    /// Wall-clock cost of collecting the training sample (µs).
    pub collection_wall_us: f64,
    /// Number of (point, algorithm) benchmarks collected.
    pub samples: usize,
}

impl HunoldAutotuner {
    /// Train on a uniformly random `fraction` of the feature space
    /// (every algorithm benchmarked at every sampled point, as in the
    /// original work).
    pub fn train_with_fraction(
        &self,
        db: &BenchmarkDatabase,
        collective: Collective,
        space: &FeatureSpace,
        fraction: f64,
    ) -> HunoldModel {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let points = splits::random_fraction(space, fraction, &mut rng);
        self.train_on_points(db, collective, &points)
    }

    /// Train on explicit points.
    pub fn train_on_points(
        &self,
        db: &BenchmarkDatabase,
        collective: Collective,
        points: &[Point],
    ) -> HunoldModel {
        assert!(!points.is_empty(), "need at least one training point");
        let mut wall = 0.0;
        let mut samples = 0usize;
        let forests = collective
            .algorithms()
            .iter()
            .map(|&a| {
                let mut x = FeatureMatrix::new(3);
                let mut y = Vec::with_capacity(points.len());
                for &p in points {
                    let s = db.sample(a, p);
                    // The original model: raw inputs, raw microseconds.
                    x.push_row(&[p.msg_bytes as f64, p.nodes as f64, p.ppn as f64]);
                    y.push(s.mean_us);
                    wall += s.wall_us;
                    samples += 1;
                }
                RandomForest::fit(&self.forest, &x, &y)
            })
            .collect();
        HunoldModel {
            collective,
            forests,
            collection_wall_us: wall,
            samples,
        }
    }
}

impl HunoldModel {
    /// Predicted time (µs) of one algorithm at a point.
    pub fn predict(&self, point: Point, algorithm: Algorithm) -> f64 {
        assert_eq!(algorithm.collective(), self.collective);
        self.forests[algorithm.index_within_collective()]
            .predict(&[point.msg_bytes as f64, point.nodes as f64, point.ppn as f64])
    }

    /// The algorithm whose model predicts the lowest time (the original
    /// design: "selects the algorithm of the model with the lowest
    /// predicted time").
    pub fn select(&self, point: Point) -> Algorithm {
        self.collective
            .algorithms()
            .iter()
            .copied()
            .min_by(|&a, &b| self.predict(point, a).total_cmp(&self.predict(point, b)))
            .expect("collectives have algorithms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acclaim_dataset::DatasetConfig;

    fn tiny() -> (BenchmarkDatabase, FeatureSpace) {
        (
            BenchmarkDatabase::new(DatasetConfig::tiny()),
            FeatureSpace::tiny(),
        )
    }

    fn fast() -> HunoldAutotuner {
        HunoldAutotuner {
            forest: ForestConfig {
                n_trees: 16,
                ..ForestConfig::for_n_features(4)
            },
            ..HunoldAutotuner::default()
        }
    }

    #[test]
    fn full_fraction_trains_near_optimal_selector() {
        let (db, space) = tiny();
        let m = fast().train_with_fraction(&db, Collective::Bcast, &space, 1.0);
        let s = db.average_slowdown(Collective::Bcast, &space.points(), |p| m.select(p));
        assert!(s < 1.1, "full-data Hunold should be near-optimal: {s}");
        assert_eq!(m.samples, space.len() * 3);
    }

    #[test]
    fn collection_cost_scales_with_fraction() {
        let (db, space) = tiny();
        let half = fast().train_with_fraction(&db, Collective::Reduce, &space, 0.5);
        let full = fast().train_with_fraction(&db, Collective::Reduce, &space, 1.0);
        assert!(half.collection_wall_us < full.collection_wall_us);
        assert_eq!(half.samples * 2, full.samples);
    }

    #[test]
    fn selection_respects_collective() {
        let (db, space) = tiny();
        let m = fast().train_with_fraction(&db, Collective::Allgather, &space, 0.5);
        for p in space.points() {
            assert_eq!(m.select(p).collective(), Collective::Allgather);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let (db, space) = tiny();
        let a = fast().train_with_fraction(&db, Collective::Bcast, &space, 0.4);
        let b = fast().train_with_fraction(&db, Collective::Bcast, &space, 0.4);
        for p in space.points() {
            assert_eq!(a.select(p), b.select(p));
        }
    }

    #[test]
    #[should_panic(expected = "at least one training point")]
    fn empty_training_rejected() {
        let (db, _) = tiny();
        fast().train_on_points(&db, Collective::Bcast, &[]);
    }
}
