//! Topology-aware parallel data collection (paper Sec. IV-D).
//!
//! Previous autotuners benchmark points one at a time to avoid network
//! congestion. ACCLAiM instead packs multiple benchmarks onto disjoint
//! congestion domains of the job's allocation with a greedy algorithm:
//!
//! 1. take the highest-variance uncollected point `p` needing `n` nodes;
//! 2. try to place it on the next `n` *sequential* unused nodes;
//! 3. on success, mark those nodes — and any remaining nodes in the same
//!    racks — as used, and repeat;
//! 4. on the first failure, stop and run the scheduled wave in parallel.
//!
//! Disallowing shared racks prevents layer-1 congestion; sequential
//! placement prevents two runs from straddling the same rack pair
//! (layer 2). Only the fat layer-3 links may see incidental sharing.

use crate::selection::Candidate;
use acclaim_netsim::{Allocation, Topology};
use serde::{Deserialize, Serialize};

/// One benchmark placed within a wave.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Index into the priority-ordered candidate list handed to the
    /// scheduler.
    pub candidate_index: usize,
    /// First logical node of the run.
    pub start_node: u32,
    /// Node count of the run.
    pub node_count: u32,
}

/// A set of benchmarks that run concurrently.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Wave {
    /// The placements in scheduling order.
    pub placements: Vec<Placement>,
}

impl Wave {
    /// Number of benchmarks running in parallel.
    pub fn parallelism(&self) -> usize {
        self.placements.len()
    }
}

/// Schedule one wave over `allocation` from a priority-ordered candidate
/// list (highest variance first). Returns an empty wave only when
/// `ordered` is empty.
///
/// Panics if the first candidate needs more nodes than the whole
/// allocation (the feature space must be bounded by the job size).
pub fn schedule_wave(
    topology: &Topology,
    allocation: &Allocation,
    ordered: &[Candidate],
) -> Wave {
    let total = allocation.len();
    let mut wave = Wave::default();
    let mut next_free: u32 = 0;

    for (idx, cand) in ordered.iter().enumerate() {
        let n = cand.point.nodes;
        assert!(
            n <= total,
            "candidate needs {n} nodes but the job holds {total}"
        );
        if next_free + n > total {
            break; // paper step 4: first misfit ends the wave
        }
        wave.placements.push(Placement {
            candidate_index: idx,
            start_node: next_free,
            node_count: n,
        });
        next_free += n;
        // Step 3: burn the rest of every rack the run touched.
        if next_free < total {
            let last_rack = topology.rack_of(allocation.node(next_free - 1));
            while next_free < total && topology.rack_of(allocation.node(next_free)) == last_rack
            {
                next_free += 1;
            }
        }
    }
    wave
}

/// Wall-clock statistics of a collection run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CollectionStats {
    /// Total wall time (µs): sum of per-wave maxima for parallel
    /// collection, plain sum for sequential.
    pub wall_us: f64,
    /// Wall time the same points would cost sequentially.
    pub sequential_wall_us: f64,
    /// Number of waves executed.
    pub waves: usize,
    /// Number of points collected.
    pub points: usize,
}

impl CollectionStats {
    /// Speedup of parallel collection over sequential (≥ 1 in theory;
    /// greedy choices can occasionally lose, see Fig. 13's discussion).
    pub fn speedup(&self) -> f64 {
        if self.wall_us == 0.0 {
            1.0
        } else {
            self.sequential_wall_us / self.wall_us
        }
    }

    /// Mean benchmarks per wave.
    pub fn average_parallelism(&self) -> f64 {
        if self.waves == 0 {
            0.0
        } else {
            self.points as f64 / self.waves as f64
        }
    }

    /// Fold one wave's point costs (µs) into the statistics.
    pub fn add_wave(&mut self, costs: &[f64]) {
        assert!(!costs.is_empty(), "waves cannot be empty");
        self.wall_us += costs.iter().copied().fold(f64::MIN, f64::max);
        self.sequential_wall_us += costs.iter().sum::<f64>();
        self.waves += 1;
        self.points += costs.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acclaim_collectives::Algorithm;
    use acclaim_dataset::Point;

    fn cand(nodes: u32) -> Candidate {
        Candidate {
            point: Point::new(nodes, 1, 1_024),
            algorithm: Algorithm::BcastBinomial,
        }
    }

    /// 4 racks of 4 nodes.
    fn topo() -> Topology {
        Topology::new(4, 4)
    }

    #[test]
    fn single_rack_allocation_runs_one_benchmark_per_wave() {
        let t = Topology::new(16, 4);
        let alloc = Allocation::single_rack(&t, 16);
        let w = schedule_wave(&t, &alloc, &[cand(2), cand(2), cand(2)]);
        // First run takes 2 nodes and burns the rest of the rack.
        assert_eq!(w.parallelism(), 1);
    }

    #[test]
    fn separate_racks_host_parallel_benchmarks() {
        let t = topo();
        let alloc = Allocation::contiguous(&t, 16); // all 4 racks
        let w = schedule_wave(&t, &alloc, &[cand(2), cand(2), cand(2), cand(2), cand(2)]);
        // Each 2-node run burns its 4-node rack: 4 racks -> 4 runs.
        assert_eq!(w.parallelism(), 4);
        // Runs land on distinct racks.
        let racks: Vec<u32> = w
            .placements
            .iter()
            .map(|p| t.rack_of(alloc.node(p.start_node)))
            .collect();
        let set: std::collections::HashSet<u32> = racks.iter().copied().collect();
        assert_eq!(set.len(), racks.len(), "no two runs share a rack");
    }

    #[test]
    fn exact_rack_fill_does_not_burn_the_next_rack() {
        let t = topo();
        let alloc = Allocation::contiguous(&t, 16);
        let w = schedule_wave(&t, &alloc, &[cand(4), cand(4), cand(4), cand(4)]);
        assert_eq!(w.parallelism(), 4);
        assert_eq!(
            w.placements.iter().map(|p| p.start_node).collect::<Vec<_>>(),
            vec![0, 4, 8, 12]
        );
    }

    #[test]
    fn multi_rack_run_blocks_its_racks() {
        let t = topo();
        let alloc = Allocation::contiguous(&t, 16);
        // 6-node run spans racks 0 and 1; the rest of rack 1 burns, so
        // the next run starts at rack 2 and the third fills rack 3.
        let w = schedule_wave(&t, &alloc, &[cand(6), cand(4), cand(4)]);
        assert_eq!(w.parallelism(), 3);
        assert_eq!(w.placements[1].start_node, 8, "next run starts at rack 2");
        assert_eq!(w.placements[2].start_node, 12);
    }

    #[test]
    fn first_misfit_ends_the_wave_even_if_later_points_fit() {
        let t = topo();
        let alloc = Allocation::contiguous(&t, 16);
        // 8-node run (racks 0-1), then a 12-node run cannot fit (only
        // 8 nodes remain) — the wave stops, ignoring the fitting 4-node
        // candidate behind it (greedy per the paper).
        let w = schedule_wave(&t, &alloc, &[cand(8), cand(12), cand(4)]);
        assert_eq!(w.parallelism(), 1);
    }

    #[test]
    fn max_parallel_allocation_hosts_many_single_node_runs() {
        let t = Topology::new(4, 8);
        let alloc = Allocation::max_parallel(&t, 4);
        let w = schedule_wave(&t, &alloc, &[cand(1), cand(1), cand(1), cand(1)]);
        assert_eq!(w.parallelism(), 4, "distinct pairs never conflict");
    }

    #[test]
    #[should_panic(expected = "job holds")]
    fn oversized_candidate_rejected() {
        let t = topo();
        let alloc = Allocation::contiguous(&t, 8);
        schedule_wave(&t, &alloc, &[cand(9)]);
    }

    #[test]
    fn empty_candidates_empty_wave() {
        let t = topo();
        let alloc = Allocation::contiguous(&t, 8);
        assert_eq!(schedule_wave(&t, &alloc, &[]).parallelism(), 0);
    }

    #[test]
    fn stats_accumulate_speedup_and_parallelism() {
        let mut s = CollectionStats::default();
        s.add_wave(&[10.0, 6.0]);
        s.add_wave(&[4.0]);
        assert_eq!(s.wall_us, 14.0);
        assert_eq!(s.sequential_wall_us, 20.0);
        assert_eq!(s.waves, 2);
        assert_eq!(s.points, 3);
        assert!((s.speedup() - 20.0 / 14.0).abs() < 1e-12);
        assert!((s.average_parallelism() - 1.5).abs() < 1e-12);
    }
}
