//! Topology-aware parallel data collection (paper Sec. IV-D).
//!
//! Previous autotuners benchmark points one at a time to avoid network
//! congestion. ACCLAiM instead packs multiple benchmarks onto disjoint
//! congestion domains of the job's allocation with a greedy algorithm:
//!
//! 1. take the highest-variance uncollected point `p` needing `n` nodes;
//! 2. try to place it on the next `n` *sequential* unused nodes;
//! 3. on success, mark those nodes — and any remaining nodes in the same
//!    racks — as used, and repeat;
//! 4. on the first failure, stop and run the scheduled wave in parallel.
//!
//! Disallowing shared racks prevents layer-1 congestion; sequential
//! placement prevents two runs from straddling the same rack pair
//! (layer 2). Only the fat layer-3 links may see incidental sharing.

use crate::selection::Candidate;
use acclaim_netsim::{Allocation, BenchFault, FaultModel, Topology};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One benchmark placed within a wave.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Index into the priority-ordered candidate list handed to the
    /// scheduler.
    pub candidate_index: usize,
    /// First logical node of the run.
    pub start_node: u32,
    /// Node count of the run.
    pub node_count: u32,
}

/// A set of benchmarks that run concurrently.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Wave {
    /// The placements in scheduling order.
    pub placements: Vec<Placement>,
}

impl Wave {
    /// Number of benchmarks running in parallel.
    pub fn parallelism(&self) -> usize {
        self.placements.len()
    }
}

/// Schedule one wave over `allocation` from a priority-ordered candidate
/// list (highest variance first). Returns an empty wave only when
/// `ordered` is empty.
///
/// Panics if the first candidate needs more nodes than the whole
/// allocation (the feature space must be bounded by the job size).
pub fn schedule_wave(
    topology: &Topology,
    allocation: &Allocation,
    ordered: &[Candidate],
) -> Wave {
    let total = allocation.len();
    let mut wave = Wave::default();
    let mut next_free: u32 = 0;

    for (idx, cand) in ordered.iter().enumerate() {
        let n = cand.point.nodes;
        if n > total {
            // Only the *first* candidate being oversized is a hard error
            // (the feature space must be bounded by the job size); a
            // mid-list oversized candidate is just a misfit that ends
            // the wave, like any other.
            assert!(
                idx > 0,
                "candidate needs {n} nodes but the job holds {total}"
            );
            break;
        }
        if next_free + n > total {
            break; // paper step 4: first misfit ends the wave
        }
        wave.placements.push(Placement {
            candidate_index: idx,
            start_node: next_free,
            node_count: n,
        });
        next_free += n;
        // Step 3: burn the rest of every rack the run touched.
        if next_free < total {
            let last_rack = topology.rack_of(allocation.node(next_free - 1));
            while next_free < total && topology.rack_of(allocation.node(next_free)) == last_rack
            {
                next_free += 1;
            }
        }
    }
    wave
}

/// Wall-clock statistics of a collection run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CollectionStats {
    /// Total wall time (µs): sum of per-wave maxima for parallel
    /// collection, plain sum for sequential.
    pub wall_us: f64,
    /// Wall time the same points would cost sequentially.
    pub sequential_wall_us: f64,
    /// Number of waves executed.
    pub waves: usize,
    /// Number of points collected.
    pub points: usize,
}

impl CollectionStats {
    /// Speedup of parallel collection over sequential (≥ 1 in theory;
    /// greedy choices can occasionally lose, see Fig. 13's discussion).
    pub fn speedup(&self) -> f64 {
        if self.wall_us == 0.0 {
            // A degenerate run with nonzero sequential cost but zero
            // parallel cost is infinitely sped up, not neutral; only
            // the empty run (both zero) reports 1.0.
            if self.sequential_wall_us == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.sequential_wall_us / self.wall_us
        }
    }

    /// Mean benchmarks per wave.
    pub fn average_parallelism(&self) -> f64 {
        if self.waves == 0 {
            0.0
        } else {
            self.points as f64 / self.waves as f64
        }
    }

    /// Fold one wave's point costs (µs) into the statistics.
    pub fn add_wave(&mut self, costs: &[f64]) {
        self.add_wave_counting(costs, costs.len());
    }

    /// [`CollectionStats::add_wave`] for fault-injected collection,
    /// where some slots burn wall time without yielding a point:
    /// `collected_points` is the number of slots that actually produced
    /// a training sample (≤ `costs.len()`).
    pub fn add_wave_counting(&mut self, costs: &[f64], collected_points: usize) {
        assert!(!costs.is_empty(), "waves cannot be empty");
        debug_assert!(collected_points <= costs.len());
        self.wall_us += costs.iter().copied().fold(f64::MIN, f64::max);
        self.sequential_wall_us += costs.iter().sum::<f64>();
        self.waves += 1;
        self.points += collected_points;
    }
}

/// How an attempt's repeated measurements are folded into one training
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RobustAgg {
    /// Plain mean of the valid measurements (fault-sensitive: one
    /// under-timeout straggler contaminates the value).
    Mean,
    /// Lower median with MAD outlier rejection, then the mean of the
    /// survivors. The lower median is deliberate: stragglers only
    /// inflate measurements, so ties break toward the uncontaminated
    /// side. With a majority of clean repeats this recovers the clean
    /// value exactly.
    Median,
}

impl RobustAgg {
    /// Parse a CLI spelling (`median` | `mean`).
    pub fn parse(s: &str) -> Option<RobustAgg> {
        match s {
            "mean" => Some(RobustAgg::Mean),
            "median" => Some(RobustAgg::Median),
            _ => None,
        }
    }
}

/// Outliers are rejected beyond this many (floored) MADs from the
/// median.
const MAD_REJECTION_K: f64 = 3.0;

/// Aggregate one attempt's valid measurements. Returns the value and
/// the number of rejected outliers.
pub fn robust_aggregate(values: &[f64], agg: RobustAgg) -> (f64, u32) {
    assert!(!values.is_empty(), "cannot aggregate zero measurements");
    let mean = |vs: &[f64]| vs.iter().sum::<f64>() / vs.len() as f64;
    match agg {
        RobustAgg::Mean => (mean(values), 0),
        RobustAgg::Median => {
            let lower_median = |vs: &mut Vec<f64>| {
                vs.sort_by(f64::total_cmp);
                vs[(vs.len() - 1) / 2]
            };
            let med = lower_median(&mut values.to_vec());
            let mut deviations: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
            let mad = lower_median(&mut deviations);
            // Repeated lookups of a memoized simulator sample are
            // identical, collapsing the MAD to zero; a relative floor
            // keeps the rejection band meaningful in that degenerate
            // case (and harmless in the realistic spread case).
            let scale = mad.max(1e-9 * med.abs()).max(f64::MIN_POSITIVE);
            let kept: Vec<f64> = values
                .iter()
                .copied()
                .filter(|v| (v - med).abs() <= MAD_REJECTION_K * scale)
                .collect();
            ((mean(&kept)), (values.len() - kept.len()) as u32)
        }
    }
}

/// Policy for fault-tolerant collection, threaded through
/// [`crate::LearnerConfig`]. With `faults` disabled the collector takes
/// the plain path and every other knob is inert, so the default policy
/// is behaviorally identical to pre-fault-model builds (the
/// `fault_golden` integration test proves bit-identity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectionPolicy {
    /// Fault injection model (disabled by default).
    pub faults: FaultModel,
    /// Re-attempts allowed per point after a failed attempt; a point
    /// exceeding this is abandoned (never collected).
    pub max_retries: u32,
    /// Per-benchmark timeout as a multiple of the benchmark's predicted
    /// fault-free wall cost (the wave's predicted slot cost). A run
    /// exceeding it is killed at the timeout and its measurement
    /// discarded.
    pub bench_timeout_factor: f64,
    /// Back-to-back measurements per attempt; a majority must survive
    /// the timeout for the attempt to succeed (the paper measures each
    /// point multiple times on the shared machine).
    pub repeats: u32,
    /// Cap on the exponential retry backoff, in waves.
    pub backoff_cap_waves: u32,
    /// Aggregation across an attempt's valid measurements.
    pub agg: RobustAgg,
}

impl Default for CollectionPolicy {
    fn default() -> Self {
        CollectionPolicy {
            faults: FaultModel::none(),
            max_retries: 3,
            bench_timeout_factor: 3.0,
            repeats: 1,
            backoff_cap_waves: 8,
            agg: RobustAgg::Median,
        }
    }
}

impl CollectionPolicy {
    /// Production-grade resilience: [`FaultModel::production`] injection,
    /// triple measurements with median+MAD aggregation, 3x timeouts, and
    /// up to 4 retries with capped exponential backoff.
    pub fn production() -> Self {
        CollectionPolicy {
            faults: FaultModel::production(),
            max_retries: 4,
            bench_timeout_factor: 3.0,
            repeats: 3,
            backoff_cap_waves: 8,
            agg: RobustAgg::Median,
        }
    }

    /// True when the fault-tolerant path is active.
    pub fn is_enabled(&self) -> bool {
        self.faults.is_enabled()
    }

    /// Waves to wait before re-attempting a point that has failed
    /// `attempts` times: capped exponential backoff (1, 2, 4, …).
    pub fn backoff_waves(&self, attempts: u32) -> u64 {
        let exp = attempts.saturating_sub(1).min(63);
        (1u64 << exp).min(self.backoff_cap_waves.max(1) as u64)
    }
}

/// Fraction of the predicted wall cost a failed (crashed) run burns
/// before the failure is detected.
const FAILED_RUN_COST_FRACTION: f64 = 0.5;

/// The result of executing one collection slot (one attempt) under a
/// fault policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptOutcome {
    /// Wall cost the slot charged to the wave (µs), including timed-out
    /// and failed repeats.
    pub wall_us: f64,
    /// The aggregated measurement, if a majority of repeats survived.
    pub value_us: Option<f64>,
    /// Repeats that produced a (possibly contaminated) measurement.
    pub valid: u32,
    /// Repeats killed at the timeout.
    pub timeouts: u32,
    /// Repeats that failed outright.
    pub failures: u32,
    /// Valid measurements rejected by MAD screening.
    pub outliers_rejected: u32,
}

/// Execute one attempt: `repeats` back-to-back measurements of a point
/// whose fault-free measurement is (`clean_mean_us`, `clean_wall_us`),
/// under `policy`'s fault model, driven by a deterministic per-
/// (point, attempt) RNG. The attempt succeeds when a strict majority of
/// repeats yields a measurement; the value is then the policy's robust
/// aggregate of those measurements.
pub fn run_attempt<R: Rng + ?Sized>(
    clean_mean_us: f64,
    clean_wall_us: f64,
    policy: &CollectionPolicy,
    rng: &mut R,
) -> AttemptOutcome {
    let repeats = policy.repeats.max(1);
    let timeout_us = policy.bench_timeout_factor.max(1.0) * clean_wall_us;
    let mut out = AttemptOutcome {
        wall_us: 0.0,
        value_us: None,
        valid: 0,
        timeouts: 0,
        failures: 0,
        outliers_rejected: 0,
    };
    let mut values = Vec::with_capacity(repeats as usize);
    for _ in 0..repeats {
        match policy.faults.draw(rng) {
            BenchFault::Fail => {
                out.wall_us += clean_wall_us * FAILED_RUN_COST_FRACTION;
                out.failures += 1;
            }
            BenchFault::Straggle(factor) => {
                let wall = clean_wall_us * factor;
                if wall > timeout_us {
                    out.wall_us += timeout_us;
                    out.timeouts += 1;
                } else {
                    out.wall_us += wall;
                    values.push(clean_mean_us * factor);
                }
            }
            BenchFault::None => {
                out.wall_us += clean_wall_us;
                values.push(clean_mean_us);
            }
        }
    }
    out.valid = values.len() as u32;
    if out.valid * 2 > repeats {
        let (value, rejected) = robust_aggregate(&values, policy.agg);
        out.value_us = Some(value);
        out.outliers_rejected = rejected;
    }
    out
}

/// Aggregate fault-handling counters for one training run. All zero
/// when faults are disabled; each field is mirrored into an
/// `acclaim-obs` counter (`collect.*`) during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Points re-queued after a failed attempt.
    pub retries: u64,
    /// Individual benchmark runs killed at the timeout.
    pub timeouts: u64,
    /// Individual benchmark runs that failed outright.
    pub failures: u64,
    /// Valid measurements rejected by MAD screening.
    pub outliers_rejected: u64,
    /// Nodes evicted from the allocation after hard failures.
    pub node_evictions: u64,
    /// Points abandoned after exhausting their retries.
    pub points_abandoned: u64,
    /// Candidates dropped because the degraded allocation can no longer
    /// host them.
    pub candidates_dropped: u64,
}

impl FaultStats {
    /// True when nothing fault-related happened.
    pub fn is_quiet(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Fold another run's counters in (per-collective → job totals).
    pub fn merge(&mut self, other: &FaultStats) {
        self.retries += other.retries;
        self.timeouts += other.timeouts;
        self.failures += other.failures;
        self.outliers_rejected += other.outliers_rejected;
        self.node_evictions += other.node_evictions;
        self.points_abandoned += other.points_abandoned;
        self.candidates_dropped += other.candidates_dropped;
    }
}

/// One entry of the fault event log kept in
/// [`crate::TrainingOutcome`] — the retry schedule and allocation
/// history, recorded so that runs can be compared event-for-event
/// (the determinism tests) and summarized for the user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A point's attempt failed; it re-enters collection at
    /// `eligible_wave`.
    Retry {
        /// Wave in which the attempt ran.
        wave: u64,
        /// The point (pool identity).
        candidate: Candidate,
        /// Attempts made so far, including this one.
        attempt: u32,
        /// First wave the point may be rescheduled in.
        eligible_wave: u64,
    },
    /// A point exhausted its retries and leaves the pool uncollected.
    Abandoned {
        /// Wave of the final failed attempt.
        wave: u64,
        /// The abandoned point.
        candidate: Candidate,
        /// Total attempts made.
        attempts: u32,
    },
    /// A node hard-failed and was evicted from the allocation.
    NodeEvicted {
        /// Wave before which the eviction took effect.
        wave: u64,
        /// Global node id.
        node: u32,
    },
    /// Candidates left the pool because the degraded allocation can no
    /// longer host them.
    CandidatesDropped {
        /// Wave before which the drop happened.
        wave: u64,
        /// Number of candidates dropped.
        count: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use acclaim_collectives::Algorithm;
    use acclaim_dataset::Point;
    use rand::{rngs::StdRng, SeedableRng};

    fn cand(nodes: u32) -> Candidate {
        Candidate {
            point: Point::new(nodes, 1, 1_024),
            algorithm: Algorithm::BcastBinomial,
        }
    }

    /// 4 racks of 4 nodes.
    fn topo() -> Topology {
        Topology::new(4, 4)
    }

    #[test]
    fn single_rack_allocation_runs_one_benchmark_per_wave() {
        let t = Topology::new(16, 4);
        let alloc = Allocation::single_rack(&t, 16);
        let w = schedule_wave(&t, &alloc, &[cand(2), cand(2), cand(2)]);
        // First run takes 2 nodes and burns the rest of the rack.
        assert_eq!(w.parallelism(), 1);
    }

    #[test]
    fn separate_racks_host_parallel_benchmarks() {
        let t = topo();
        let alloc = Allocation::contiguous(&t, 16); // all 4 racks
        let w = schedule_wave(&t, &alloc, &[cand(2), cand(2), cand(2), cand(2), cand(2)]);
        // Each 2-node run burns its 4-node rack: 4 racks -> 4 runs.
        assert_eq!(w.parallelism(), 4);
        // Runs land on distinct racks.
        let racks: Vec<u32> = w
            .placements
            .iter()
            .map(|p| t.rack_of(alloc.node(p.start_node)))
            .collect();
        let set: std::collections::HashSet<u32> = racks.iter().copied().collect();
        assert_eq!(set.len(), racks.len(), "no two runs share a rack");
    }

    #[test]
    fn exact_rack_fill_does_not_burn_the_next_rack() {
        let t = topo();
        let alloc = Allocation::contiguous(&t, 16);
        let w = schedule_wave(&t, &alloc, &[cand(4), cand(4), cand(4), cand(4)]);
        assert_eq!(w.parallelism(), 4);
        assert_eq!(
            w.placements.iter().map(|p| p.start_node).collect::<Vec<_>>(),
            vec![0, 4, 8, 12]
        );
    }

    #[test]
    fn multi_rack_run_blocks_its_racks() {
        let t = topo();
        let alloc = Allocation::contiguous(&t, 16);
        // 6-node run spans racks 0 and 1; the rest of rack 1 burns, so
        // the next run starts at rack 2 and the third fills rack 3.
        let w = schedule_wave(&t, &alloc, &[cand(6), cand(4), cand(4)]);
        assert_eq!(w.parallelism(), 3);
        assert_eq!(w.placements[1].start_node, 8, "next run starts at rack 2");
        assert_eq!(w.placements[2].start_node, 12);
    }

    #[test]
    fn first_misfit_ends_the_wave_even_if_later_points_fit() {
        let t = topo();
        let alloc = Allocation::contiguous(&t, 16);
        // 8-node run (racks 0-1), then a 12-node run cannot fit (only
        // 8 nodes remain) — the wave stops, ignoring the fitting 4-node
        // candidate behind it (greedy per the paper).
        let w = schedule_wave(&t, &alloc, &[cand(8), cand(12), cand(4)]);
        assert_eq!(w.parallelism(), 1);
    }

    #[test]
    fn max_parallel_allocation_hosts_many_single_node_runs() {
        let t = Topology::new(4, 8);
        let alloc = Allocation::max_parallel(&t, 4);
        let w = schedule_wave(&t, &alloc, &[cand(1), cand(1), cand(1), cand(1)]);
        assert_eq!(w.parallelism(), 4, "distinct pairs never conflict");
    }

    #[test]
    #[should_panic(expected = "job holds")]
    fn oversized_candidate_rejected() {
        let t = topo();
        let alloc = Allocation::contiguous(&t, 8);
        schedule_wave(&t, &alloc, &[cand(9)]);
    }

    #[test]
    fn mid_list_oversized_candidate_ends_the_wave_without_panicking() {
        let t = topo();
        let alloc = Allocation::contiguous(&t, 16);
        // Regression: the assert used to fire on ANY oversized candidate,
        // so [cand(4), cand(20)] panicked instead of ending the wave.
        let w = schedule_wave(&t, &alloc, &[cand(4), cand(20), cand(4)]);
        assert_eq!(w.parallelism(), 1, "wave ends at the oversized misfit");
        assert_eq!(w.placements[0].node_count, 4);
    }

    #[test]
    fn empty_candidates_empty_wave() {
        let t = topo();
        let alloc = Allocation::contiguous(&t, 8);
        assert_eq!(schedule_wave(&t, &alloc, &[]).parallelism(), 0);
    }

    #[test]
    fn stats_accumulate_speedup_and_parallelism() {
        let mut s = CollectionStats::default();
        s.add_wave(&[10.0, 6.0]);
        s.add_wave(&[4.0]);
        assert_eq!(s.wall_us, 14.0);
        assert_eq!(s.sequential_wall_us, 20.0);
        assert_eq!(s.waves, 2);
        assert_eq!(s.points, 3);
        assert!((s.speedup() - 20.0 / 14.0).abs() < 1e-12);
        assert!((s.average_parallelism() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn degenerate_speedups_are_reported_honestly() {
        // Regression: zero parallel wall with nonzero sequential wall
        // used to report a silent 1.0.
        let degenerate = CollectionStats {
            wall_us: 0.0,
            sequential_wall_us: 5.0,
            waves: 1,
            points: 1,
        };
        assert_eq!(degenerate.speedup(), f64::INFINITY);
        let empty = CollectionStats::default();
        assert_eq!(empty.speedup(), 1.0);
    }

    #[test]
    fn add_wave_counting_separates_cost_from_points() {
        let mut s = CollectionStats::default();
        s.add_wave_counting(&[10.0, 6.0, 3.0], 2); // one slot failed
        assert_eq!(s.points, 2);
        assert_eq!(s.wall_us, 10.0);
        assert_eq!(s.sequential_wall_us, 19.0);
    }

    #[test]
    fn median_aggregation_rejects_straggler_contamination() {
        // Two clean repeats and one under-timeout straggler: the median
        // path recovers the clean value exactly; the mean path does not.
        let values = [100.0, 100.0, 250.0];
        let (med, rejected) = robust_aggregate(&values, RobustAgg::Median);
        assert_eq!(med, 100.0);
        assert_eq!(rejected, 1);
        let (mean, r0) = robust_aggregate(&values, RobustAgg::Mean);
        assert!((mean - 150.0).abs() < 1e-9);
        assert_eq!(r0, 0);
    }

    #[test]
    fn median_aggregation_keeps_identical_values() {
        let (v, rejected) = robust_aggregate(&[42.0, 42.0, 42.0], RobustAgg::Median);
        assert_eq!(v, 42.0);
        assert_eq!(rejected, 0);
    }

    #[test]
    fn clean_attempt_returns_the_clean_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let policy = CollectionPolicy::default(); // faults disabled
        let out = run_attempt(100.0, 1_000.0, &policy, &mut rng);
        assert_eq!(out.value_us, Some(100.0));
        assert_eq!(out.wall_us, 1_000.0);
        assert_eq!((out.timeouts, out.failures), (0, 0));
    }

    #[test]
    fn always_failing_attempt_burns_partial_wall_and_yields_nothing() {
        let mut rng = StdRng::seed_from_u64(2);
        let policy = CollectionPolicy {
            faults: FaultModel {
                failure_probability: 1.0,
                straggler_probability: 0.0,
                straggler_factor: 1.0,
                node_failures: Vec::new(),
            },
            repeats: 3,
            ..CollectionPolicy::default()
        };
        let out = run_attempt(100.0, 1_000.0, &policy, &mut rng);
        assert_eq!(out.value_us, None);
        assert_eq!(out.failures, 3);
        assert!((out.wall_us - 1_500.0).abs() < 1e-9, "3 x half wall");
    }

    #[test]
    fn extreme_stragglers_are_killed_at_the_timeout() {
        let mut rng = StdRng::seed_from_u64(3);
        let policy = CollectionPolicy {
            faults: FaultModel {
                failure_probability: 0.0,
                straggler_probability: 1.0,
                // Log-uniform in [64, 64] is degenerate only at the top;
                // force the extreme by a huge factor so every draw lands
                // far above the 3x timeout.
                straggler_factor: 1e9,
                node_failures: Vec::new(),
            },
            repeats: 2,
            bench_timeout_factor: 3.0,
            ..CollectionPolicy::default()
        };
        let out = run_attempt(100.0, 1_000.0, &policy, &mut rng);
        // Virtually certain: both repeats time out (P(ok) ≈ ln3/ln1e9).
        assert!(out.timeouts >= 1);
        assert!(out.wall_us <= 2.0 * 3.0 * 1_000.0 + 1e-9);
        if out.timeouts == 2 {
            assert_eq!(out.value_us, None);
        }
    }

    #[test]
    fn attempts_are_deterministic_per_rng_seed() {
        let policy = CollectionPolicy::production();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32)
                .map(|_| run_attempt(100.0, 1_000.0, &policy, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let policy = CollectionPolicy {
            backoff_cap_waves: 8,
            ..CollectionPolicy::default()
        };
        assert_eq!(policy.backoff_waves(1), 1);
        assert_eq!(policy.backoff_waves(2), 2);
        assert_eq!(policy.backoff_waves(3), 4);
        assert_eq!(policy.backoff_waves(4), 8);
        assert_eq!(policy.backoff_waves(10), 8, "cap holds");
    }

    #[test]
    fn fault_stats_merge_and_quietness() {
        let mut a = FaultStats::default();
        assert!(a.is_quiet());
        let b = FaultStats {
            retries: 2,
            timeouts: 3,
            ..FaultStats::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.retries, 4);
        assert_eq!(a.timeouts, 6);
        assert!(!a.is_quiet());
    }
}
