//! Convergence criteria (paper Sec. III-C and IV-C).
//!
//! The previous state of the art stops training when *average slowdown*
//! on a held-out test set drops to 1.03 — but collecting that test set
//! costs 6–11x the training data itself (Fig. 6). ACCLAiM replaces it
//! with a free signal: the cumulative jackknife variance over all
//! candidates, declaring convergence when four consecutive iterations
//! change it by less than a threshold.

use serde::{Deserialize, Serialize};

/// Test-set-free convergence on cumulative variance (Sec. IV-C).
///
/// The paper uses an absolute threshold of 1e-9 tuned to its machines;
/// our variance lives in log-time space with a different scale, so the
/// detector supports both absolute and relative thresholds (relative is
/// the default and is scale-free).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarianceConvergence {
    /// Consecutive small-change iterations required (the paper uses 4).
    pub window: usize,
    /// Change threshold.
    pub epsilon: f64,
    /// Interpret `epsilon` relative to the current variance magnitude.
    pub relative: bool,
    streak: usize,
    last: Option<f64>,
}

impl VarianceConvergence {
    /// Relative-threshold detector (scale-free).
    pub fn relative(window: usize, epsilon: f64) -> Self {
        assert!(window >= 1 && epsilon > 0.0);
        VarianceConvergence {
            window,
            epsilon,
            relative: true,
            streak: 0,
            last: None,
        }
    }

    /// Absolute-threshold detector (the paper's 1e-9 form).
    pub fn absolute(window: usize, epsilon: f64) -> Self {
        assert!(window >= 1 && epsilon > 0.0);
        VarianceConvergence {
            window,
            epsilon,
            relative: false,
            streak: 0,
            last: None,
        }
    }

    /// The paper's configuration adapted to this codebase's scale.
    pub fn paper_default() -> Self {
        VarianceConvergence::relative(4, 0.02)
    }

    /// Record one iteration's cumulative variance; returns true once the
    /// window of consecutive small changes is full.
    pub fn push(&mut self, cumulative_variance: f64) -> bool {
        if let Some(last) = self.last {
            let delta = (cumulative_variance - last).abs();
            let bound = if self.relative {
                // Symmetric scale: using `last` alone judges a series
                // collapsing toward zero against its stale (larger)
                // magnitude while judging the mirrored rising series
                // against the smaller one, so the two converge at
                // different times. max(|last|, |current|) treats both
                // directions identically.
                let scale = last.abs().max(cumulative_variance.abs());
                self.epsilon * scale.max(f64::MIN_POSITIVE)
            } else {
                self.epsilon
            };
            if delta < bound {
                self.streak += 1;
            } else {
                self.streak = 0;
            }
        }
        self.last = Some(cumulative_variance);
        self.converged()
    }

    /// True once convergence has been declared.
    pub fn converged(&self) -> bool {
        self.streak >= self.window
    }

    /// Reset the detector for a new training run.
    pub fn reset(&mut self) {
        self.streak = 0;
        self.last = None;
    }
}

/// Test-set convergence on average slowdown (the previous state of the
/// art, Sec. II-C-2): stop when slowdown ≤ `threshold` (1.03).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowdownThreshold {
    /// Convergence bound on average slowdown.
    pub threshold: f64,
}

impl SlowdownThreshold {
    /// The paper's 1.03 criterion.
    pub fn paper_default() -> Self {
        SlowdownThreshold {
            threshold: acclaim_ml::CONVERGENCE_SLOWDOWN,
        }
    }

    /// Is this measured slowdown converged?
    pub fn check(&self, average_slowdown: f64) -> bool {
        average_slowdown <= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_after_window_of_flat_values() {
        let mut c = VarianceConvergence::absolute(4, 1e-3);
        assert!(!c.push(1.0));
        assert!(!c.push(1.0)); // streak 1
        assert!(!c.push(1.0)); // 2
        assert!(!c.push(1.0)); // 3
        assert!(c.push(1.0)); // 4 -> converged
        assert!(c.converged());
    }

    #[test]
    fn big_change_resets_the_streak() {
        let mut c = VarianceConvergence::absolute(2, 1e-3);
        assert!(!c.push(1.0));
        assert!(!c.push(1.0)); // streak 1
        assert!(!c.push(2.0)); // reset
        assert!(!c.push(2.0)); // streak 1
        assert!(c.push(2.0)); // streak 2 -> converged
    }

    #[test]
    fn relative_threshold_scales_with_magnitude() {
        let mut c = VarianceConvergence::relative(1, 0.01);
        assert!(!c.push(1000.0));
        // A change of 5 is 0.5% of 1000: converged.
        assert!(c.push(1005.0));

        let mut d = VarianceConvergence::relative(1, 0.01);
        assert!(!d.push(1.0));
        // The same absolute change of 5 is 500% of 1: not converged.
        assert!(!d.push(6.0));
    }

    #[test]
    fn decreasing_variance_converges_once_flat() {
        let mut c = VarianceConvergence::relative(3, 0.05);
        // Deltas: reset, reset, reset, 1%, 0.5%, 0.1% -> streak fills at
        // the third consecutive small change (index 6).
        let series = [10.0, 5.0, 2.0, 1.0, 0.99, 0.985, 0.984, 0.984];
        let converged_at = series
            .iter()
            .position(|&v| c.push(v))
            .expect("series flattens");
        assert_eq!(converged_at, 6);
    }

    #[test]
    fn relative_bound_is_symmetric_in_direction() {
        // A geometric collapse and its time-reversed rise must make the
        // same converged/not-converged call at every step, since each
        // step's relative change is identical under the symmetric scale.
        let falling = [8.0, 4.0, 2.0, 1.0, 0.5];
        let rising: Vec<f64> = falling.iter().rev().copied().collect();
        let verdicts = |series: &[f64]| {
            let mut c = VarianceConvergence::relative(1, 0.6);
            series.iter().map(|&v| c.push(v)).collect::<Vec<bool>>()
        };
        assert_eq!(
            verdicts(&falling),
            verdicts(&rising),
            "mirrored series must converge identically"
        );
        // And a 50% step is judged against the larger magnitude: with
        // epsilon 0.6 every halving/doubling step converges (delta/max
        // = 0.5 < 0.6), which the old last-only scale denied for the
        // rising series (delta/last = 1.0).
        assert!(verdicts(&rising)[1..].iter().all(|&v| v));
    }

    #[test]
    fn reset_clears_history() {
        let mut c = VarianceConvergence::absolute(1, 1e-3);
        assert!(!c.push(1.0));
        assert!(c.push(1.0));
        c.reset();
        assert!(!c.converged());
        assert!(!c.push(1.0), "no prior value after reset");
    }

    #[test]
    fn slowdown_threshold_checks() {
        let s = SlowdownThreshold::paper_default();
        assert!(s.check(1.0));
        assert!(s.check(1.03));
        assert!(!s.check(1.031));
    }
}
