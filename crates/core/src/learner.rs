//! The active-learning training loop (paper Fig. 2b).
//!
//! One loop serves ACCLAiM and both prior-art baselines through a
//! [`SelectionPolicy`]:
//!
//! * [`SelectionPolicy::OwnVariance`] — ACCLAiM: rank candidates by the
//!   *primary* model's jackknife variance (Sec. IV-A).
//! * [`SelectionPolicy::SurrogateVariance`] — FACT: a second, separately
//!   seeded surrogate forest picks points (emulating DeepHyper), with
//!   batched exploration among the top-k — selections tuned to the
//!   surrogate, not the deployed model (Sec. III-A).
//! * [`SelectionPolicy::Random`] — Hunold et al.: random sampling.
//!
//! Collection is sequential or wave-parallel (Sec. IV-D), convergence is
//! cumulative-variance (Sec. IV-C), test-set slowdown (prior art), or a
//! fixed point budget (for sweeps).

use crate::collector::{
    run_attempt, schedule_wave, AttemptOutcome, CollectionPolicy, CollectionStats, FaultEvent,
    FaultStats, Placement,
};
use crate::convergence::{SlowdownThreshold, VarianceConvergence};
use crate::model::{PerfModel, TrainingSample};
use crate::selection::{all_candidates, Candidate, NonP2Injector, VarianceScanCache};
use acclaim_collectives::Collective;
use acclaim_dataset::{splits, BenchmarkDatabase, FeatureSpace, Point};
use acclaim_ml::{ForestConfig, TreeUpdate};
use acclaim_netsim::Allocation;
use acclaim_obs::{AttrValue, Counter, Obs};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::time::Instant;

/// How the next training point is chosen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// ACCLAiM: argmax jackknife variance of the primary model.
    OwnVariance,
    /// FACT: a surrogate forest ranks candidates; pick uniformly among
    /// its `top_k` (DeepHyper-style asynchronous batch exploration), and
    /// the surrogate is only retrained every `refresh` iterations (batch
    /// staleness — selections lag the data, and are tuned to the
    /// surrogate rather than the deployed model).
    SurrogateVariance {
        /// Surrogate forest hyperparameters.
        surrogate: ForestConfig,
        /// Exploration width.
        top_k: usize,
        /// Iterations between surrogate retrains.
        refresh: usize,
    },
    /// Hunold et al.: uniformly random uncollected candidate.
    Random,
}

/// Sequential or topology-aware parallel collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectionStrategy {
    /// One benchmark at a time (prior art).
    Sequential,
    /// Greedy wave scheduling over disjoint congestion domains.
    Parallel,
}

/// When to stop training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CriterionConfig {
    /// ACCLAiM: cumulative-variance plateau, no test set.
    CumulativeVariance(VarianceConvergence),
    /// Prior art: average slowdown on a freshly collected test set
    /// (whose collection cost is charged to `test_wall_us`).
    TestSlowdown {
        /// Slowdown bound (the paper's 1.03).
        threshold: SlowdownThreshold,
        /// Fraction of the feature space benchmarked as the test set
        /// (the paper reports 20%).
        test_fraction: f64,
    },
    /// Fixed budget of collected points (for sweep experiments).
    MaxPoints(usize),
}

/// Complete learner configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnerConfig {
    /// Primary forest hyperparameters.
    pub forest: ForestConfig,
    /// Point-selection policy.
    pub policy: SelectionPolicy,
    /// Collection strategy.
    pub strategy: CollectionStrategy,
    /// Stop criterion.
    pub criterion: CriterionConfig,
    /// Substitute every N-th point with a non-P2 message size
    /// (ACCLAiM uses `Some(5)`; prior art `None`).
    pub nonp2_every: Option<usize>,
    /// Guided sampling (the paper's Sec. I contribution wording):
    /// every N-th selection is drawn uniformly from the uncollected
    /// candidates instead of by variance. Random forests report
    /// unwarranted confidence in regions they interpolate smoothly but
    /// wrongly; a stratified random draw keeps such regions from
    /// starving. `None` disables exploration.
    pub explore_every: Option<usize>,
    /// Hard iteration cap (safety net).
    pub max_iterations: usize,
    /// RNG seed for seeding, exploration, and non-P2 draws.
    pub seed: u64,
    /// Warm-start model refits between iterations: append the new
    /// samples and rebuild only the trees whose hashed bootstrap drew
    /// them, updating only their columns of the cached variance scan.
    /// Decision-identical to scratch refits (same selections, same
    /// convergence stop) — `false` exists to prove exactly that and to
    /// measure the speedup.
    #[serde(default)]
    pub incremental: bool,
    /// Evaluate variance scans through the flat SoA forest
    /// ([`acclaim_ml::FlatForest`]): the fitted trees are flattened
    /// into contiguous node arrays and candidate blocks stream through
    /// them tree-major with the jackknife fused into the same pass.
    /// Bit-identical to the pointer-chasing path (enforced by the
    /// `flat_equivalence` suite) — `false` exists to prove that and to
    /// let the `bench` runner track the speedup.
    #[serde(default)]
    pub flat: bool,
    /// Fault-tolerant collection: fault injection, per-benchmark
    /// timeouts, retries with capped backoff, and robust aggregation.
    /// The default injects nothing, in which case the collection path
    /// is bit-identical to fault-unaware configurations.
    #[serde(default)]
    pub collection: CollectionPolicy,
    /// Analytical cost-model priors (crate `acclaim-analytic`): seed
    /// cold runs with Hockney/LogGP predictions for every candidate
    /// and retire candidates that violate self-consistency guidelines.
    /// The core stays analytic-agnostic — this is plain configuration
    /// data read by the orchestration layers (store, serve, CLI) that
    /// build the actual [`WarmStart`]. The default is disabled, in
    /// which case no prior rows exist and runs are bit-identical to
    /// configurations predating this field.
    #[serde(default)]
    pub analytic_priors: AnalyticPriorsConfig,
}

/// Configuration for analytical cost-model priors and guideline
/// pruning. Plain data: `acclaim-core` never computes a prediction —
/// the `acclaim-analytic` crate reads this config in the orchestration
/// layers and translates it into [`WarmStart`] rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticPriorsConfig {
    /// Master switch. `false` (the default) makes every other field
    /// inert and keeps runs bit-identical to pre-analytic behavior.
    #[serde(default)]
    pub enabled: bool,
    /// Fraction of the analytical prior rows to keep, thinned
    /// deterministically by candidate fingerprint (1.0 = the full
    /// sketch of the candidate grid). Mirrors the store's
    /// `thin_priors` deweighting semantics.
    #[serde(default = "default_analytic_weight")]
    pub weight: f64,
    /// Whether guideline violations retire candidates from the
    /// selection pool (they still receive prior rows either way).
    #[serde(default = "default_analytic_prune")]
    pub prune: bool,
    /// A candidate is pruned only when its analytical cost exceeds the
    /// guideline's reference cost by this factor. Margins well above
    /// 1.0 keep pruning conservative: model error has to be larger
    /// than the margin before the true optimum could be at risk.
    #[serde(default = "default_analytic_margin")]
    pub prune_margin: f64,
}

fn default_analytic_weight() -> f64 {
    1.0
}

fn default_analytic_prune() -> bool {
    true
}

fn default_analytic_margin() -> f64 {
    3.0
}

impl Default for AnalyticPriorsConfig {
    fn default() -> Self {
        AnalyticPriorsConfig {
            enabled: false,
            weight: default_analytic_weight(),
            prune: default_analytic_prune(),
            prune_margin: default_analytic_margin(),
        }
    }
}

impl LearnerConfig {
    /// ACCLAiM as evaluated in Sec. VI: own-model variance selection,
    /// every-5th non-P2 substitution, parallel collection, cumulative-
    /// variance convergence.
    pub fn acclaim() -> Self {
        LearnerConfig {
            forest: ForestConfig::for_n_features(4),
            policy: SelectionPolicy::OwnVariance,
            strategy: CollectionStrategy::Parallel,
            criterion: CriterionConfig::CumulativeVariance(VarianceConvergence::paper_default()),
            nonp2_every: Some(5),
            explore_every: Some(4),
            max_iterations: 400,
            seed: 0xACC,
            incremental: true,
            flat: true,
            collection: CollectionPolicy::default(),
            analytic_priors: AnalyticPriorsConfig::default(),
        }
    }

    /// ACCLAiM with sequential collection (used to isolate the point-
    /// selection contribution in Fig. 10).
    pub fn acclaim_sequential() -> Self {
        LearnerConfig {
            strategy: CollectionStrategy::Sequential,
            ..LearnerConfig::acclaim()
        }
    }

    /// The FACT baseline: surrogate-driven selection, P2 only,
    /// sequential collection, test-set slowdown convergence.
    pub fn fact() -> Self {
        LearnerConfig {
            forest: ForestConfig::for_n_features(4),
            policy: SelectionPolicy::SurrogateVariance {
                surrogate: ForestConfig {
                    n_trees: 24,
                    seed: 0xFAC7,
                    ..ForestConfig::for_n_features(4)
                },
                top_k: 8,
                refresh: 5,
            },
            strategy: CollectionStrategy::Sequential,
            criterion: CriterionConfig::TestSlowdown {
                threshold: SlowdownThreshold::paper_default(),
                test_fraction: 0.2,
            },
            nonp2_every: None,
            explore_every: None,
            max_iterations: 400,
            seed: 0xFAC7,
            incremental: true,
            flat: true,
            collection: CollectionPolicy::default(),
            analytic_priors: AnalyticPriorsConfig::default(),
        }
    }

    /// Replace the stop criterion with a fixed point budget.
    pub fn with_budget(mut self, points: usize) -> Self {
        self.criterion = CriterionConfig::MaxPoints(points);
        self
    }
}

/// One iteration's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration number (0 = after seeding).
    pub iteration: usize,
    /// Training samples collected so far.
    pub samples: usize,
    /// Cumulative training-data collection wall time (µs), excluding
    /// any test set.
    pub wall_us: f64,
    /// Cumulative jackknife variance over the remaining candidates.
    pub cumulative_variance: f64,
    /// Wall time (µs, real clock) this iteration spent updating the
    /// model and the variance scan — the paper's "model update" cost,
    /// reported separately from (simulated) collection time so the
    /// training-time split of Fig. 14 can be shown.
    #[serde(default)]
    pub model_update_us: f64,
    /// Average slowdown on the caller's evaluation set (oracle quality,
    /// free of charge), if one was provided.
    pub oracle_slowdown: Option<f64>,
    /// Benchmarks executed in parallel in the wave that *preceded* this
    /// record (0 for the seeding record).
    pub wave_parallelism: usize,
}

/// Prior measurements injected into a training run before the corner
/// seeding phase — the mechanism behind cross-job warm starts.
///
/// `exact` rows were measured under an *identical* cluster signature
/// (same topology, network parameters, feature-space axes, and fault
/// preset): they are trusted as-is, enter the training set at zero
/// collection cost, and retire their candidates from the selection
/// pool. `priors` rows come from a *near* signature (same machine,
/// different node/ppn axes): they also enter the training set for free,
/// but their candidates stay in the pool — the learner may re-measure
/// them, and a fresh measurement simply outvotes the prior inside the
/// forest. Non-P2 rows (whose candidate is not in the current pool)
/// inform the model without retiring anything.
///
/// An empty warm start — or passing `None` to
/// [`ActiveLearner::train_warm`] — leaves the run bit-identical to
/// [`ActiveLearner::train`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WarmStart {
    /// Trusted measurements from an identical cluster signature.
    pub exact: Vec<TrainingSample>,
    /// Deweighted measurements from a near (compatible) signature.
    pub priors: Vec<TrainingSample>,
    /// Candidates retired from the selection pool without a trusted
    /// measurement — guideline pruning (`acclaim-analytic`). Pruned
    /// candidates are never benchmarked but usually still carry a
    /// prior row, so the forest keeps evidence about them and the
    /// rules generator can still rank them at prediction time.
    #[serde(default)]
    pub pruned: Vec<Candidate>,
}

impl WarmStart {
    /// A warm start whose rows are all trusted (exact-key store hit).
    pub fn from_exact(samples: Vec<TrainingSample>) -> Self {
        WarmStart {
            exact: samples,
            priors: Vec::new(),
            pruned: Vec::new(),
        }
    }

    /// A warm start whose rows are all priors (near-key store hit).
    pub fn from_priors(samples: Vec<TrainingSample>) -> Self {
        WarmStart {
            exact: Vec::new(),
            priors: samples,
            pruned: Vec::new(),
        }
    }

    /// Total number of injected rows (pruned candidates carry no rows
    /// of their own and are not counted).
    pub fn len(&self) -> usize {
        self.exact.len() + self.priors.len()
    }

    /// Whether the warm start would be a no-op: no rows to inject and
    /// no candidates to retire.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.priors.is_empty() && self.pruned.is_empty()
    }
}

/// The result of a training run.
#[derive(Debug, Clone)]
pub struct TrainingOutcome {
    /// The final fitted model.
    pub model: PerfModel,
    /// Per-iteration log.
    pub log: Vec<IterationRecord>,
    /// Every collected training sample, in collection order.
    pub collected: Vec<TrainingSample>,
    /// Whether the configured criterion fired (vs. hitting the cap).
    pub converged: bool,
    /// Collection statistics (training points only).
    pub stats: CollectionStats,
    /// Wall time spent collecting the test set, when the criterion
    /// required one (µs).
    pub test_wall_us: f64,
    /// Total real wall time spent on model updates (fits/refits plus
    /// variance scans), across all iterations (µs).
    pub model_update_wall_us: f64,
    /// Aggregate fault-handling counters (all zero when faults are
    /// disabled).
    pub faults: FaultStats,
    /// Chronological fault event log: retries, abandonments, node
    /// evictions, and candidate drops.
    pub fault_events: Vec<FaultEvent>,
    /// Trusted measurements injected by a warm start (0 on cold runs).
    /// These are the leading rows of `collected` after any priors.
    pub reused_points: usize,
    /// Foreign prior rows injected by a near-key warm start (0 on cold
    /// and exact-key runs). These are the first rows of `collected` and
    /// belong to a *different* cluster signature — persistence layers
    /// must not re-store them under this run's key.
    pub prior_points: usize,
}

impl TrainingOutcome {
    /// Total *machine* time consumed: training-data collection plus
    /// test-set collection (µs). Both terms are simulated cluster wall
    /// time — what the job allocation is billed for. Model-update time
    /// is deliberately excluded: fits run on the host CPU while no
    /// benchmark occupies the allocation. Use
    /// [`TrainingOutcome::total_cost_us`] for the all-in figure.
    pub fn total_wall_us(&self) -> f64 {
        self.stats.wall_us + self.test_wall_us
    }

    /// Total training cost (µs): machine time
    /// ([`TrainingOutcome::total_wall_us`], simulated cluster clock)
    /// plus host CPU time spent on model updates
    /// (`model_update_wall_us`, real `Instant` clock — forest
    /// fits/refits and variance scans). The two terms tick on
    /// different clocks; their sum is the end-to-end cost a user
    /// waits for, the quantity the paper's training-time comparisons
    /// charge.
    pub fn total_cost_us(&self) -> f64 {
        self.total_wall_us() + self.model_update_wall_us
    }

    /// The first record whose oracle slowdown is at or below `bound`,
    /// if oracle evaluation was enabled — used to compare methodologies
    /// at the paper's 1.03 criterion regardless of their own stop rule.
    pub fn time_to_slowdown(&self, bound: f64) -> Option<f64> {
        self.log
            .iter()
            .find(|r| r.oracle_slowdown.is_some_and(|s| s <= bound))
            .map(|r| r.wall_us)
    }
}

/// The active learner.
#[derive(Debug, Clone)]
pub struct ActiveLearner {
    config: LearnerConfig,
}

impl ActiveLearner {
    /// A learner with the given configuration.
    pub fn new(config: LearnerConfig) -> Self {
        assert!(config.max_iterations >= 1);
        ActiveLearner { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LearnerConfig {
        &self.config
    }

    /// Train a model for `collective` over the P2 grid `space`, drawing
    /// measurements from `db`. `eval_points` enables free oracle
    /// tracking in the log (used by the figure harnesses; a real
    /// deployment has no oracle).
    pub fn train(
        &self,
        db: &BenchmarkDatabase,
        collective: Collective,
        space: &FeatureSpace,
        eval_points: Option<&[Point]>,
    ) -> TrainingOutcome {
        self.train_with_obs(db, collective, space, eval_points, &Obs::disabled())
    }

    /// [`ActiveLearner::train`] with tracing: every phase of the loop
    /// opens a span on `obs` (`learner/train` → `seed` / `iteration` →
    /// `fit`, `variance_scan`, `convergence_check`, `select`,
    /// `collect`), each collection slot emits a sim-timeline span on a
    /// `nodes A-B` lane, and counters track non-P2 injections, explore
    /// promotions, tree reuse, and DirtyRegion cell recomputes.
    /// Instrumentation is behaviorally inert: it never touches the RNG
    /// or any ordering, so the outcome is bit-identical to
    /// [`ActiveLearner::train`] (the `obs_golden` integration test
    /// proves it).
    pub fn train_with_obs(
        &self,
        db: &BenchmarkDatabase,
        collective: Collective,
        space: &FeatureSpace,
        eval_points: Option<&[Point]>,
        obs: &Obs,
    ) -> TrainingOutcome {
        self.train_warm(db, collective, space, eval_points, obs, None)
    }

    /// [`ActiveLearner::train_with_obs`] with an optional [`WarmStart`]:
    /// prior measurements enter the training set before corner seeding,
    /// at zero collection cost. Exact rows replace the cold bootstrap
    /// (their candidates — including the corners they cover — are
    /// retired from the pool), the forest warm-refits on them through
    /// the usual fit path, and active learning runs only for the
    /// residual variance. With `None` (or an empty warm start) the run
    /// is bit-identical to [`ActiveLearner::train_with_obs`] — every
    /// warm-start branch is gated, the pattern the fault and tracing
    /// layers also follow.
    pub fn train_warm(
        &self,
        db: &BenchmarkDatabase,
        collective: Collective,
        space: &FeatureSpace,
        eval_points: Option<&[Point]>,
        obs: &Obs,
        warm: Option<&WarmStart>,
    ) -> TrainingOutcome {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let candidates = all_candidates(collective, space);
        assert!(
            space.max_nodes() <= db.config().cluster.num_nodes(),
            "feature space exceeds the job allocation"
        );
        let mut train_span = obs.span("learner", "train");
        if obs.is_enabled() {
            train_span.set_attr("collective", format!("{collective:?}"));
            train_span.set_attr("candidates", candidates.len() as u64);
        }
        let m_nonp2 = obs.counter("learner.non_p2_injections");
        let m_explore = obs.counter("learner.explore_promotions");
        let m_trees_refitted = obs.counter("learner.trees_refitted");
        let m_trees_reused = obs.counter("learner.trees_reused");
        let m_cells_recomputed = obs.counter("learner.scan_cells_recomputed");
        let m_cells_reused = obs.counter("learner.scan_cells_reused");
        let m_flat_refreshes = obs.counter("learner.flat_scan_refreshes");
        let g_cumvar = obs.gauge("learner.cumulative_variance");
        let g_samples = obs.gauge("learner.samples");

        let mut remaining: Vec<Candidate> = candidates.clone();
        let mut collected_set: HashSet<Candidate> = HashSet::new();
        let mut collected: Vec<TrainingSample> = Vec::new();
        let mut stats = CollectionStats::default();
        let mut injector = cfg.nonp2_every.map(NonP2Injector::new);

        // Warm start: store-provided rows enter the training set before
        // any benchmark runs, at zero collection cost. Priors go first
        // so persistence layers can slice them off `collected` by count
        // (`fit_incremental` is append-only, so order is fixed here for
        // the run's lifetime). Only exact rows whose candidate exists in
        // the current pool retire it; priors and non-P2 rows are model
        // evidence only. The whole block is a no-op when `warm` is
        // `None`, keeping cold runs bit-identical.
        let warm = warm.filter(|w| !w.is_empty());
        let mut reused_points = 0usize;
        let mut prior_points = 0usize;
        if let Some(w) = warm {
            let pool: HashSet<Candidate> = candidates.iter().copied().collect();
            for s in &w.priors {
                collected.push(*s);
                prior_points += 1;
            }
            for s in &w.exact {
                let c = Candidate {
                    point: s.point,
                    algorithm: s.algorithm,
                };
                collected.push(*s);
                reused_points += 1;
                if pool.contains(&c) {
                    collected_set.insert(c);
                }
            }
            // Guideline-pruned candidates are retired exactly like
            // exact-row candidates — inserted into `collected_set` so
            // both the corner seeding and the selection loop skip them
            // — but contribute no training row here (their prior rows,
            // if any, ride in `w.priors` above).
            for c in &w.pruned {
                if pool.contains(c) {
                    collected_set.insert(*c);
                }
            }
            obs.counter("store.points_reused").add(reused_points as u64);
            obs.counter("store.prior_points").add(prior_points as u64);
        }

        // Fault-tolerant collection state. `fault_rt` is `None` when the
        // policy injects nothing, and every fault-path branch below is
        // gated on it, keeping the plain path identical to fault-unaware
        // configurations. The local allocation starts as the job's and
        // shrinks when nodes hard-fail.
        let mut alloc = db.config().cluster.allocation.clone();
        let mut fault_rt = cfg
            .collection
            .is_enabled()
            .then(|| FaultRuntime::new(cfg.collection.clone(), cfg.seed, obs));
        let mut wave_index: u64 = 0;
        let mut last_wave_completed = usize::MAX;

        // Criterion state.
        let mut variance_conv = match &cfg.criterion {
            CriterionConfig::CumulativeVariance(v) => Some(v.clone()),
            _ => None,
        };
        let (test_points, test_wall_us, slowdown_threshold, budget) = match &cfg.criterion {
            CriterionConfig::TestSlowdown {
                threshold,
                test_fraction,
            } => {
                let pts = splits::random_fraction(space, *test_fraction, &mut rng);
                // Benchmark every algorithm at every test point; the
                // paper's Fig. 6 charges this cost explicitly.
                let mut cost = 0.0;
                for &p in &pts {
                    for &a in collective.algorithms() {
                        cost += db.sample(a, p).wall_us;
                    }
                }
                (Some(pts), cost, Some(*threshold), usize::MAX)
            }
            CriterionConfig::MaxPoints(n) => (None, 0.0, None, *n),
            CriterionConfig::CumulativeVariance(_) => (None, 0.0, None, usize::MAX),
        };

        // Seed: the corners of the feature-space box, per algorithm.
        // Random forests cannot extrapolate — outside the convex hull of
        // the samples every tree lands in the same boundary leaf, so the
        // jackknife reports (unwarranted) confidence and variance-driven
        // selection never looks there. Sampling the 8 corners first
        // bounds the hull and is the standard space-filling
        // initialization for active learning.
        let seed_points: Vec<Candidate> = {
            let corner = |v: &[u32]| [v[0], *v.last().expect("non-empty axis")];
            let nodes = corner(&space.nodes);
            let ppns = corner(&space.ppns);
            let msgs = [
                space.msg_sizes[0],
                *space.msg_sizes.last().expect("non-empty axis"),
            ];
            let mut seeds = Vec::new();
            for &a in collective.algorithms() {
                for &n in &nodes {
                    for &p in &ppns {
                        for &m in &msgs {
                            let c = Candidate {
                                point: Point::new(n, p, m),
                                algorithm: a,
                            };
                            if !seeds.contains(&c) {
                                seeds.push(c);
                            }
                        }
                    }
                }
            }
            seeds
        };
        {
            let mut seed_span = obs.span("learner", "seed");
            let mut pending = seed_points;
            // A warm start replaces the cold bootstrap: corners already
            // covered by trusted rows are not re-measured. (Gated so the
            // cold path is untouched, though the filter would be inert
            // there anyway — `collected_set` starts empty.)
            if warm.is_some() {
                pending.retain(|c| !collected_set.contains(c));
            }
            if obs.is_enabled() {
                seed_span.set_attr("points", pending.len() as u64);
            }
            while !pending.is_empty() {
                if let Some(rt) = fault_rt.as_mut() {
                    if rt.evict_dead(stats.wall_us, &mut alloc, wave_index) {
                        // Prune the whole candidate pool, not just the
                        // seed points: the training loop below must
                        // never try to schedule a misfit either.
                        rt.drop_oversized(
                            alloc.len(),
                            wave_index,
                            &mut [&mut pending, &mut remaining],
                            &mut collected_set,
                        );
                        if pending.is_empty() {
                            break;
                        }
                    }
                }
                let (wave, placements): (Vec<Candidate>, Vec<Placement>) = match cfg.strategy {
                    CollectionStrategy::Sequential => (vec![pending.remove(0)], Vec::new()),
                    CollectionStrategy::Parallel => {
                        let cluster = &db.config().cluster;
                        let w = schedule_wave(&cluster.topology, &alloc, &pending);
                        // The greedy scheduler consumes a prefix of the list.
                        let wave = pending.drain(..w.parallelism().max(1)).collect();
                        (wave, w.placements)
                    }
                };
                let wave_start_us = stats.wall_us;
                let mut costs = Vec::with_capacity(wave.len());
                let mut completed = 0usize;
                for (slot, c) in wave.into_iter().enumerate() {
                    let s = db.sample(c.algorithm, c.point);
                    match fault_rt.as_mut() {
                        Some(rt) => {
                            // Failed seed points re-enter through the
                            // training loop's retry queue: the seeding
                            // phase never blocks on one point.
                            let (cost, ok) = faulty_slot(
                                rt,
                                obs,
                                c,
                                c,
                                s.mean_us,
                                s.wall_us,
                                &placements,
                                slot,
                                wave_index,
                                wave_start_us,
                                &mut collected,
                                &mut collected_set,
                            );
                            costs.push(cost);
                            completed += ok as usize;
                        }
                        None => {
                            collected.push(TrainingSample {
                                point: c.point,
                                algorithm: c.algorithm,
                                time_us: s.mean_us,
                            });
                            collected_set.insert(c);
                            if obs.is_enabled() {
                                slot_span(
                                    obs,
                                    &placements,
                                    slot,
                                    c,
                                    wave_start_us,
                                    s.wall_us,
                                    Vec::new(),
                                );
                            }
                            costs.push(s.wall_us);
                            completed += 1;
                        }
                    }
                }
                stats.add_wave_counting(&costs, completed);
                wave_index += 1;
            }
        }
        remaining.retain(|c| !collected_set.contains(c));

        let mut log: Vec<IterationRecord> = Vec::new();
        let mut converged = false;
        let mut last_parallelism = 0usize;
        let mut explore_counter = 0usize;
        let mut surrogate_order: Vec<Candidate> = Vec::new();
        let mut surrogate_age = 0usize;
        let mut model: Option<PerfModel> = None;
        let mut cache = VarianceScanCache::new(remaining.clone()).with_flat(cfg.flat);
        let mut surrogate_model: Option<PerfModel> = None;
        let mut surrogate_cache: Option<VarianceScanCache> = None;
        let mut model_update_wall_us = 0.0f64;

        for iteration in 0..cfg.max_iterations {
            let mut iter_span = obs.span("learner", "iteration");
            if obs.is_enabled() {
                iter_span.set_attr("iteration", iteration as u64);
            }
            // Node hard failures take effect between waves: shrink the
            // local allocation and retire the candidates it can no
            // longer host before this iteration's ranking is computed,
            // so subsequent waves are scheduled on the survivors only.
            if let Some(rt) = fault_rt.as_mut() {
                if rt.evict_dead(stats.wall_us, &mut alloc, wave_index) {
                    rt.drop_oversized(
                        alloc.len(),
                        wave_index,
                        &mut [&mut remaining],
                        &mut collected_set,
                    );
                }
            }
            // Model update. With `incremental` the model warm-starts
            // (only trees whose bootstrap drew a new sample refit) and
            // the cached variance scan recomputes only their columns;
            // otherwise everything rebuilds from scratch through the
            // same cache, so both paths produce identical rankings.
            let update_start = Instant::now();
            let changed = {
                let mut fit_span = obs.span("learner", "fit");
                let changed = match model.as_mut().filter(|_| cfg.incremental) {
                    Some(m) => m.fit_incremental(&collected, &cfg.forest),
                    None => {
                        model = Some(PerfModel::fit(collective, &collected, &cfg.forest));
                        TreeUpdate::full_refit(cfg.forest.n_trees)
                    }
                };
                m_trees_refitted.add(changed.len() as u64);
                m_trees_reused.add(cfg.forest.n_trees.saturating_sub(changed.len()) as u64);
                if obs.is_enabled() {
                    fit_span.set_attr("samples", collected.len() as u64);
                    fit_span.set_attr("trees_refitted", changed.len() as u64);
                    fit_span.set_attr("trees_total", cfg.forest.n_trees as u64);
                }
                changed
            };
            let model = model.as_ref().expect("model fitted above");

            // Primary-model ranking always feeds the convergence signal;
            // the *selection* order depends on the policy.
            let primary_ranking = {
                let mut scan_span = obs.span("learner", "variance_scan");
                cache.retain(|c| !collected_set.contains(c));
                let rs = cache.refresh(model, &changed);
                m_cells_recomputed.add(rs.cells_recomputed as u64);
                m_cells_reused.add(rs.cells_reused() as u64);
                if cfg.flat {
                    m_flat_refreshes.incr();
                }
                if obs.is_enabled() {
                    scan_span.set_attr("cells_total", rs.cells_total as u64);
                    scan_span.set_attr("cells_recomputed", rs.cells_recomputed as u64);
                    scan_span.set_attr("full", rs.full);
                    scan_span.set_attr("flat", cfg.flat);
                }
                cache.ranking()
            };
            let model_update_us = update_start.elapsed().as_secs_f64() * 1e6;
            model_update_wall_us += model_update_us;
            g_cumvar.set(primary_ranking.cumulative);
            g_samples.set(collected.len() as f64);
            let oracle_slowdown = eval_points
                .map(|pts| db.average_slowdown(collective, pts, |p| model.select(p)));
            log.push(IterationRecord {
                iteration,
                samples: collected.len(),
                wall_us: stats.wall_us,
                cumulative_variance: primary_ranking.cumulative,
                model_update_us,
                oracle_slowdown,
                wave_parallelism: last_parallelism,
            });

            // Stop checks. Structured as a single decision so the span
            // guard closes before the loop breaks; the check order and
            // short-circuiting match the original cascade exactly. The
            // variance detector is only fed when the previous wave made
            // progress: a wave whose every slot failed leaves the
            // cumulative variance untouched, and counting that repeat
            // toward the plateau streak would declare convergence from
            // faults rather than from information. Fault-free waves
            // always complete every slot, so the gate is inert there.
            let stop = {
                let mut conv_span = obs.span("learner", "convergence_check");
                let stop = if collected.len() >= budget {
                    converged = matches!(cfg.criterion, CriterionConfig::MaxPoints(_));
                    true
                } else if (last_wave_completed != 0
                    && variance_conv
                        .as_mut()
                        .is_some_and(|v| v.push(primary_ranking.cumulative)))
                    || slowdown_threshold
                        .zip(test_points.as_ref())
                        .is_some_and(|(th, pts)| {
                            th.check(db.average_slowdown(collective, pts, |p| model.select(p)))
                        })
                {
                    converged = true;
                    true
                } else {
                    remaining.is_empty()
                };
                if obs.is_enabled() {
                    conv_span.set_attr("cumulative_variance", primary_ranking.cumulative);
                    conv_span.set_attr("stop", stop);
                }
                stop
            };
            if stop {
                break;
            }

            // Selection order for this iteration.
            let mut select_span = obs.span("learner", "select");
            let mut ordered: Vec<Candidate> = match &cfg.policy {
                SelectionPolicy::OwnVariance => {
                    primary_ranking.ranked.iter().map(|&(c, _)| c).collect()
                }
                SelectionPolicy::SurrogateVariance {
                    surrogate,
                    top_k,
                    refresh,
                } => {
                    let refresh = (*refresh).max(1);
                    if surrogate_order.is_empty() || surrogate_age.is_multiple_of(refresh) {
                        // The surrogate refits (warm-started when
                        // `incremental`) and keeps its own scan cache.
                        let sur_start = Instant::now();
                        let sur_changed =
                            match surrogate_model.as_mut().filter(|_| cfg.incremental) {
                                Some(m) => m.fit_incremental(&collected, surrogate),
                                None => {
                                    surrogate_model =
                                        Some(PerfModel::fit(collective, &collected, surrogate));
                                    TreeUpdate::full_refit(surrogate.n_trees)
                                }
                            };
                        let sm = surrogate_model.as_ref().expect("surrogate fitted above");
                        let sc = surrogate_cache
                            .get_or_insert_with(|| {
                                VarianceScanCache::new(remaining.clone()).with_flat(cfg.flat)
                            });
                        sc.retain(|c| !collected_set.contains(c));
                        sc.refresh(sm, &sur_changed);
                        let sr = sc.ranking();
                        model_update_wall_us += sur_start.elapsed().as_secs_f64() * 1e6;
                        surrogate_order = sr.ranked.iter().map(|&(c, _)| c).collect();
                        // DeepHyper-style exploration: shuffle the head.
                        let k = (*top_k).min(surrogate_order.len());
                        surrogate_order[..k].shuffle(&mut rng);
                    } else {
                        // Stale batch: drop candidates collected since.
                        surrogate_order.retain(|c| !collected_set.contains(c));
                    }
                    surrogate_age += 1;
                    surrogate_order.clone()
                }
                SelectionPolicy::Random => {
                    let mut order = remaining.clone();
                    order.shuffle(&mut rng);
                    order
                }
            };

            // Retry scheduling: points whose backoff elapsed re-enter at
            // the head of the order (they are known-uncertain — their
            // attempt failed outright rather than measuring anything);
            // points still backing off sit this wave out. When *every*
            // remaining point is backing off, jump the wave clock to the
            // next eligibility instead of spinning empty waves.
            if let Some(rt) = fault_rt.as_mut() {
                let mut ready = rt.take_ready(wave_index);
                let waiting = rt.backing_off();
                ordered.retain(|c| !waiting.contains(c) && !ready.contains(c));
                if ordered.is_empty() && ready.is_empty() {
                    if let Some(w) = rt.next_eligible_wave() {
                        wave_index = w;
                        ready = rt.take_ready(wave_index);
                    }
                }
                for c in ready.into_iter().rev() {
                    ordered.insert(0, c);
                }
            }
            debug_assert!(!ordered.is_empty(), "selection produced no candidates");

            // Guided sampling: periodically promote a uniformly random
            // candidate to the head of the order.
            if let Some(every) = cfg.explore_every {
                explore_counter += 1;
                if every > 0 && explore_counter.is_multiple_of(every) && !ordered.is_empty() {
                    let pick = rng.random_range(0..ordered.len());
                    ordered.swap(0, pick);
                    m_explore.incr();
                }
            }
            if obs.is_enabled() {
                select_span.set_attr("candidates", ordered.len() as u64);
            }

            // Build the wave (one point for sequential collection).
            let (wave_candidates, wave_placements): (Vec<Candidate>, Vec<Placement>) =
                match cfg.strategy {
                    CollectionStrategy::Sequential => (vec![ordered[0]], Vec::new()),
                    CollectionStrategy::Parallel => {
                        let cluster = &db.config().cluster;
                        let wave = schedule_wave(&cluster.topology, &alloc, &ordered);
                        let cands = wave
                            .placements
                            .iter()
                            .map(|p| ordered[p.candidate_index])
                            .collect();
                        (cands, wave.placements)
                    }
                };
            drop(select_span);
            debug_assert!(!wave_candidates.is_empty());
            last_parallelism = wave_candidates.len();

            // Collect the wave (with every-5th non-P2 substitution).
            let wave_start_us = stats.wall_us;
            let mut costs = Vec::with_capacity(wave_candidates.len());
            let mut completed = 0usize;
            {
                let mut collect_span = obs.span("learner", "collect");
                if obs.is_enabled() {
                    collect_span.set_attr("parallelism", wave_candidates.len() as u64);
                }
                for (slot, anchor) in wave_candidates.into_iter().enumerate() {
                    let actual = match injector.as_mut() {
                        Some(inj) => inj.apply(anchor, &mut rng),
                        None => anchor,
                    };
                    if actual != anchor {
                        m_nonp2.incr();
                    }
                    let s = db.sample(actual.algorithm, actual.point);
                    match fault_rt.as_mut() {
                        Some(rt) => {
                            // Retries key on the P2 anchor (the pool
                            // identity); the measurement itself is of
                            // the possibly-substituted candidate.
                            let (cost, ok) = faulty_slot(
                                rt,
                                obs,
                                anchor,
                                actual,
                                s.mean_us,
                                s.wall_us,
                                &wave_placements,
                                slot,
                                wave_index,
                                wave_start_us,
                                &mut collected,
                                &mut collected_set,
                            );
                            costs.push(cost);
                            completed += ok as usize;
                        }
                        None => {
                            collected.push(TrainingSample {
                                point: actual.point,
                                algorithm: actual.algorithm,
                                time_us: s.mean_us,
                            });
                            if obs.is_enabled() {
                                slot_span(
                                    obs,
                                    &wave_placements,
                                    slot,
                                    actual,
                                    wave_start_us,
                                    s.wall_us,
                                    Vec::new(),
                                );
                            }
                            costs.push(s.wall_us);
                            completed += 1;
                            // The P2 anchor leaves the pool either way: it was
                            // either collected or represented by its non-P2 variant.
                            collected_set.insert(anchor);
                        }
                    }
                }
            }
            remaining.retain(|c| !collected_set.contains(c));
            stats.add_wave_counting(&costs, completed);
            last_wave_completed = completed;
            wave_index += 1;
        }

        // Final model. The warm-started model is bit-identical to a
        // scratch fit on the full collection, so reuse it (catching up
        // on any wave collected after the last in-loop refit).
        let final_start = Instant::now();
        let model = {
            let _fit_span = obs.span("learner", "final_fit");
            match model {
                Some(mut m) if cfg.incremental => {
                    m.fit_incremental(&collected, &cfg.forest);
                    m
                }
                _ => PerfModel::fit(collective, &collected, &cfg.forest),
            }
        };
        model_update_wall_us += final_start.elapsed().as_secs_f64() * 1e6;
        if obs.is_enabled() {
            train_span.set_attr("converged", converged);
            train_span.set_attr("points", collected.len() as u64);
        }
        let (faults, fault_events) = match fault_rt {
            Some(rt) => (rt.stats, rt.events),
            None => (FaultStats::default(), Vec::new()),
        };
        TrainingOutcome {
            model,
            log,
            collected,
            converged,
            stats,
            test_wall_us,
            model_update_wall_us,
            faults,
            fault_events,
            reused_points,
            prior_points,
        }
    }
}

/// Salt folded into the learner seed to derive the fault RNG streams,
/// keeping fault draws independent of the selection RNG (whose stream
/// must be untouched for the faults-disabled path to stay
/// bit-identical).
const FAULT_SEED_SALT: u64 = 0xFA01_7FA0;

/// A point waiting out its retry backoff.
struct DeferredPoint {
    cand: Candidate,
    eligible_wave: u64,
}

/// Per-run fault-handling state: the retry queue with capped
/// exponential backoff, per-point attempt counts, node-eviction
/// bookkeeping, aggregate [`FaultStats`] (mirrored into `collect.*`
/// obs counters), and the chronological [`FaultEvent`] log.
struct FaultRuntime {
    policy: CollectionPolicy,
    seed: u64,
    stats: FaultStats,
    events: Vec<FaultEvent>,
    deferred: Vec<DeferredPoint>,
    attempts: HashMap<Candidate, u32>,
    m_retries: Counter,
    m_timeouts: Counter,
    m_failures: Counter,
    m_outliers: Counter,
    m_evictions: Counter,
    m_abandoned: Counter,
    m_dropped: Counter,
}

impl FaultRuntime {
    fn new(policy: CollectionPolicy, seed: u64, obs: &Obs) -> Self {
        FaultRuntime {
            policy,
            seed: seed ^ FAULT_SEED_SALT,
            stats: FaultStats::default(),
            events: Vec::new(),
            deferred: Vec::new(),
            attempts: HashMap::new(),
            m_retries: obs.counter("collect.retries"),
            m_timeouts: obs.counter("collect.timeouts"),
            m_failures: obs.counter("collect.failures"),
            m_outliers: obs.counter("collect.outliers_rejected"),
            m_evictions: obs.counter("collect.node_evictions"),
            m_abandoned: obs.counter("collect.points_abandoned"),
            m_dropped: obs.counter("collect.candidates_dropped"),
        }
    }

    /// Attempts already charged against `c` (0 for a fresh point).
    fn attempt_index(&self, c: &Candidate) -> u32 {
        self.attempts.get(c).copied().unwrap_or(0)
    }

    /// The deterministic fault RNG for `c`'s next attempt. Identity-
    /// seeded per (candidate, attempt) — the same style as the
    /// benchmark database's per-sample streams — so fault draws are
    /// independent of collection order and of the selection RNG.
    fn attempt_rng(&self, c: &Candidate) -> StdRng {
        let mut h = DefaultHasher::new();
        c.hash(&mut h);
        self.attempt_index(c).hash(&mut h);
        StdRng::seed_from_u64(self.seed ^ h.finish())
    }

    /// Fold one attempt's repeat-level outcomes into the counters.
    fn record_attempt(&mut self, out: &AttemptOutcome) {
        self.stats.timeouts += out.timeouts as u64;
        self.stats.failures += out.failures as u64;
        self.stats.outliers_rejected += out.outliers_rejected as u64;
        self.m_timeouts.add(out.timeouts as u64);
        self.m_failures.add(out.failures as u64);
        self.m_outliers.add(out.outliers_rejected as u64);
    }

    /// The point was collected; clear its attempt history.
    fn on_success(&mut self, c: &Candidate) {
        self.attempts.remove(c);
    }

    /// The attempt produced nothing: queue a retry with capped
    /// exponential backoff, or abandon the point once its retries are
    /// exhausted. Returns true when the point is abandoned.
    fn on_failure(&mut self, c: Candidate, wave: u64) -> bool {
        let attempts = self.attempt_index(&c) + 1;
        if attempts > self.policy.max_retries {
            self.attempts.remove(&c);
            self.stats.points_abandoned += 1;
            self.m_abandoned.incr();
            self.events.push(FaultEvent::Abandoned {
                wave,
                candidate: c,
                attempts,
            });
            true
        } else {
            self.attempts.insert(c, attempts);
            let eligible_wave = wave + self.policy.backoff_waves(attempts);
            self.deferred.push(DeferredPoint {
                cand: c,
                eligible_wave,
            });
            self.stats.retries += 1;
            self.m_retries.incr();
            self.events.push(FaultEvent::Retry {
                wave,
                candidate: c,
                attempt: attempts,
                eligible_wave,
            });
            false
        }
    }

    /// Drain the points whose backoff has elapsed by `wave`, in
    /// queueing order.
    fn take_ready(&mut self, wave: u64) -> Vec<Candidate> {
        let mut ready = Vec::new();
        self.deferred.retain(|d| {
            if d.eligible_wave <= wave {
                ready.push(d.cand);
                false
            } else {
                true
            }
        });
        ready
    }

    /// The points still waiting out a backoff.
    fn backing_off(&self) -> HashSet<Candidate> {
        self.deferred.iter().map(|d| d.cand).collect()
    }

    /// Earliest wave at which any deferred point becomes eligible.
    fn next_eligible_wave(&self) -> Option<u64> {
        self.deferred.iter().map(|d| d.eligible_wave).min()
    }

    /// Evict the nodes whose hard failure has onset by `now_us` from
    /// the allocation. Returns true when the allocation shrank.
    fn evict_dead(&mut self, now_us: f64, alloc: &mut Allocation, wave: u64) -> bool {
        let dead: Vec<u32> = self
            .policy
            .faults
            .dead_nodes_at(now_us)
            .into_iter()
            .filter(|n| alloc.nodes().contains(n))
            .collect();
        if dead.is_empty() {
            return false;
        }
        *alloc = alloc.excluding(&dead);
        for node in dead {
            self.stats.node_evictions += 1;
            self.m_evictions.incr();
            self.events.push(FaultEvent::NodeEvicted { wave, node });
        }
        true
    }

    /// Drop every candidate the degraded allocation can no longer host
    /// from each pool and from the retry queue, retiring each through
    /// `collected_set` so the ranking caches and later pool filters all
    /// agree that it is off the table. A candidate present in several
    /// pools is counted once.
    fn drop_oversized(
        &mut self,
        max_nodes: u32,
        wave: u64,
        pools: &mut [&mut Vec<Candidate>],
        collected_set: &mut HashSet<Candidate>,
    ) {
        let mut count = 0u32;
        let mut retire = |c: Candidate, collected_set: &mut HashSet<Candidate>| {
            if collected_set.insert(c) {
                count += 1;
            }
        };
        for pool in pools.iter_mut() {
            pool.retain(|c| {
                if c.point.nodes <= max_nodes {
                    true
                } else {
                    retire(*c, collected_set);
                    false
                }
            });
        }
        self.deferred.retain(|d| {
            if d.cand.point.nodes <= max_nodes {
                true
            } else {
                retire(d.cand, collected_set);
                false
            }
        });
        if count > 0 {
            self.stats.candidates_dropped += count as u64;
            self.m_dropped.add(count as u64);
            self.events.push(FaultEvent::CandidatesDropped { wave, count });
        }
    }
}

/// Execute one collection slot under the fault policy: draw the
/// attempt's faults from its identity-seeded RNG, charge the slot's
/// wall cost, and either record the robust aggregate as a training
/// sample (retiring `anchor` from the pool) or queue a retry /
/// abandonment. Returns the slot's wall cost and whether a training
/// point was produced.
#[allow(clippy::too_many_arguments)]
fn faulty_slot(
    rt: &mut FaultRuntime,
    obs: &Obs,
    anchor: Candidate,
    actual: Candidate,
    clean_mean_us: f64,
    clean_wall_us: f64,
    placements: &[Placement],
    slot: usize,
    wave_index: u64,
    wave_start_us: f64,
    collected: &mut Vec<TrainingSample>,
    collected_set: &mut HashSet<Candidate>,
) -> (f64, bool) {
    let attempt = rt.attempt_index(&anchor) + 1;
    let mut rng = rt.attempt_rng(&anchor);
    let out = run_attempt(clean_mean_us, clean_wall_us, &rt.policy, &mut rng);
    rt.record_attempt(&out);
    let ok = out.value_us.is_some();
    let outcome = match out.value_us {
        Some(value) => {
            collected.push(TrainingSample {
                point: actual.point,
                algorithm: actual.algorithm,
                time_us: value,
            });
            collected_set.insert(anchor);
            rt.on_success(&anchor);
            "ok"
        }
        None => {
            if rt.on_failure(anchor, wave_index) {
                // An abandoned point leaves the pool uncollected.
                collected_set.insert(anchor);
                "abandoned"
            } else {
                "retry"
            }
        }
    };
    if obs.is_enabled() {
        slot_span(
            obs,
            placements,
            slot,
            actual,
            wave_start_us,
            out.wall_us,
            vec![
                ("attempt".to_string(), AttrValue::from(attempt as u64)),
                (
                    "valid_repeats".to_string(),
                    AttrValue::from(out.valid as u64),
                ),
                ("timeouts".to_string(), AttrValue::from(out.timeouts as u64)),
                ("failures".to_string(), AttrValue::from(out.failures as u64)),
                ("outcome".to_string(), AttrValue::from(outcome.to_string())),
            ],
        );
    }
    (out.wall_us, ok)
}

/// Emit one closed sim-timeline span for a collection slot, on a
/// display lane named after the node range the benchmark occupied
/// (`"nodes A-B"`). Parallel waves have a [`Placement`] per slot (the
/// scheduler consumes a prefix of the candidate list, so placements
/// align with wave slots by index); sequential collection synthesizes
/// a run starting at node 0. Chrome's trace viewer renders these lanes
/// as concurrent rows, making wave parallelism visible.
#[allow(clippy::too_many_arguments)]
fn slot_span(
    obs: &Obs,
    placements: &[Placement],
    slot: usize,
    c: Candidate,
    wave_start_us: f64,
    cost_us: f64,
    extra: Vec<(String, AttrValue)>,
) {
    let (start_node, node_count) = match placements.get(slot) {
        Some(p) => (p.start_node, p.node_count.max(1)),
        None => (0, c.point.nodes.max(1)),
    };
    let track = format!("nodes {}-{}", start_node, start_node + node_count - 1);
    let mut attrs = vec![
        (
            "algorithm".to_string(),
            AttrValue::from(format!("{:?}", c.algorithm)),
        ),
        ("nodes".to_string(), AttrValue::from(c.point.nodes as u64)),
        ("ppn".to_string(), AttrValue::from(c.point.ppn as u64)),
        ("msg_bytes".to_string(), AttrValue::from(c.point.msg_bytes)),
    ];
    attrs.extend(extra);
    obs.span_at(
        "collect",
        "slot",
        &track,
        wave_start_us,
        wave_start_us + cost_us,
        attrs,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::RobustAgg;
    use acclaim_dataset::DatasetConfig;

    fn tiny_db() -> BenchmarkDatabase {
        BenchmarkDatabase::new(DatasetConfig::tiny())
    }

    fn fast_forest() -> ForestConfig {
        ForestConfig {
            n_trees: 16,
            ..ForestConfig::for_n_features(4)
        }
    }

    fn budget_config(policy: SelectionPolicy, points: usize) -> LearnerConfig {
        LearnerConfig {
            forest: fast_forest(),
            policy,
            strategy: CollectionStrategy::Sequential,
            criterion: CriterionConfig::MaxPoints(points),
            nonp2_every: None,
            explore_every: None,
            max_iterations: 100,
            seed: 42,
            incremental: true,
            flat: true,
            collection: CollectionPolicy::default(),
            analytic_priors: Default::default(),
        }
    }

    #[test]
    fn budget_run_collects_exactly_the_budget() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        // Bcast seeds 8 corner points per algorithm (24); the budget
        // must exceed that to exercise the iterative phase.
        let cfg = budget_config(SelectionPolicy::OwnVariance, 30);
        let out = ActiveLearner::new(cfg).train(&db, Collective::Bcast, &space, None);
        assert_eq!(out.collected.len(), 30);
        assert!(out.converged);
        assert!(out.stats.wall_us > 0.0);
        assert_eq!(out.test_wall_us, 0.0);
    }

    #[test]
    fn log_is_monotone_in_samples_and_wall_time() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let cfg = budget_config(SelectionPolicy::OwnVariance, 30);
        let out = ActiveLearner::new(cfg).train(&db, Collective::Reduce, &space, None);
        assert!(out.log.len() >= 2);
        for w in out.log.windows(2) {
            assert!(w[1].samples > w[0].samples);
            assert!(w[1].wall_us >= w[0].wall_us);
        }
    }

    #[test]
    fn oracle_tracking_improves_with_data() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let pts = space.points();
        let cfg = budget_config(SelectionPolicy::OwnVariance, 30);
        let out = ActiveLearner::new(cfg).train(&db, Collective::Bcast, &space, Some(&pts));
        let first = out.log.first().unwrap().oracle_slowdown.unwrap();
        let last = out.log.last().unwrap().oracle_slowdown.unwrap();
        assert!(
            last <= first,
            "more data should not hurt on average: {first} -> {last}"
        );
        assert!(last < 1.15, "near-exhaustive training should be good: {last}");
    }

    #[test]
    fn variance_criterion_stops_before_exhausting_the_space() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let cfg = LearnerConfig {
            forest: fast_forest(),
            policy: SelectionPolicy::OwnVariance,
            strategy: CollectionStrategy::Sequential,
            criterion: CriterionConfig::CumulativeVariance(VarianceConvergence::relative(3, 0.2)),
            nonp2_every: None,
            explore_every: None,
            max_iterations: 200,
            seed: 7,
            incremental: true,
            flat: true,
            collection: CollectionPolicy::default(),
            analytic_priors: Default::default(),
        };
        let out = ActiveLearner::new(cfg).train(&db, Collective::Allreduce, &space, None);
        let total_candidates = space.len() * 2;
        assert!(out.converged, "loose criterion should fire");
        assert!(
            out.collected.len() < total_candidates,
            "collected {} of {}",
            out.collected.len(),
            total_candidates
        );
    }

    #[test]
    fn test_slowdown_criterion_charges_test_collection() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let cfg = LearnerConfig {
            forest: fast_forest(),
            policy: SelectionPolicy::SurrogateVariance {
                surrogate: ForestConfig {
                    n_trees: 8,
                    seed: 99,
                    ..ForestConfig::for_n_features(4)
                },
                top_k: 4,
                refresh: 3,
            },
            strategy: CollectionStrategy::Sequential,
            criterion: CriterionConfig::TestSlowdown {
                threshold: SlowdownThreshold::paper_default(),
                test_fraction: 0.2,
            },
            nonp2_every: None,
            explore_every: None,
            max_iterations: 60,
            seed: 13,
            incremental: true,
            flat: true,
            collection: CollectionPolicy::default(),
            analytic_priors: Default::default(),
        };
        let out = ActiveLearner::new(cfg).train(&db, Collective::Bcast, &space, None);
        assert!(out.test_wall_us > 0.0, "test set must cost machine time");
        assert!(out.total_wall_us() > out.stats.wall_us);
    }

    #[test]
    fn nonp2_injection_produces_nonp2_samples() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let cfg = LearnerConfig {
            nonp2_every: Some(5),
            ..budget_config(SelectionPolicy::OwnVariance, 60)
        };
        let out = ActiveLearner::new(cfg).train(&db, Collective::Bcast, &space, None);
        let nonp2 = out
            .collected
            .iter()
            .filter(|s| !s.point.msg_bytes.is_power_of_two())
            .count();
        // 36 post-seed selections at every=5 give ~7 substitutions.
        assert!(nonp2 >= 4, "expected non-P2 samples, got {nonp2}");
        assert!(nonp2 <= out.collected.len() / 3);
    }

    #[test]
    fn parallel_collection_is_never_slower_sequentially_counted() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let cfg = LearnerConfig {
            strategy: CollectionStrategy::Parallel,
            ..budget_config(SelectionPolicy::OwnVariance, 16)
        };
        let out = ActiveLearner::new(cfg).train(&db, Collective::Reduce, &space, None);
        assert!(out.stats.wall_us <= out.stats.sequential_wall_us + 1e-9);
        assert!(out.stats.average_parallelism() >= 1.0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let cfg = budget_config(SelectionPolicy::Random, 30);
        let a = ActiveLearner::new(cfg.clone()).train(&db, Collective::Bcast, &space, None);
        let b = ActiveLearner::new(cfg).train(&db, Collective::Bcast, &space, None);
        assert_eq!(a.collected, b.collected);
    }

    #[test]
    fn different_policies_choose_different_points() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let own = ActiveLearner::new(budget_config(SelectionPolicy::OwnVariance, 40))
            .train(&db, Collective::Bcast, &space, None);
        let random = ActiveLearner::new(budget_config(SelectionPolicy::Random, 40))
            .train(&db, Collective::Bcast, &space, None);
        assert_ne!(own.collected, random.collected);
    }

    /// A harsh policy whose per-attempt failure odds are high enough
    /// that a short run reliably exercises retries, timeouts, and
    /// outlier rejection.
    fn harsh_policy() -> CollectionPolicy {
        CollectionPolicy {
            faults: acclaim_netsim::FaultModel {
                failure_probability: 0.25,
                straggler_probability: 0.25,
                straggler_factor: 8.0,
                node_failures: Vec::new(),
            },
            repeats: 3,
            ..CollectionPolicy::default()
        }
    }

    #[test]
    fn faulty_collection_retries_and_still_trains() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let cfg = LearnerConfig {
            strategy: CollectionStrategy::Parallel,
            collection: harsh_policy(),
            ..budget_config(SelectionPolicy::OwnVariance, 40)
        };
        let out = ActiveLearner::new(cfg).train(&db, Collective::Bcast, &space, None);
        assert!(!out.collected.is_empty());
        assert_eq!(out.stats.points, out.collected.len());
        let f = &out.faults;
        assert!(f.retries > 0, "harsh faults must force retries: {f:?}");
        assert!(f.timeouts + f.failures > 0, "fault counters empty: {f:?}");
        assert!(
            !out.fault_events.is_empty(),
            "retries must be logged as events"
        );
        // Failed slots burn wall time without yielding points, so the
        // sequential-equivalent cost must exceed a clean run's.
        assert!(out.stats.wall_us > 0.0);
    }

    #[test]
    fn faulty_runs_are_deterministic_per_seed() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let cfg = LearnerConfig {
            strategy: CollectionStrategy::Parallel,
            collection: harsh_policy(),
            ..budget_config(SelectionPolicy::OwnVariance, 40)
        };
        let a = ActiveLearner::new(cfg.clone()).train(&db, Collective::Bcast, &space, None);
        let b = ActiveLearner::new(cfg).train(&db, Collective::Bcast, &space, None);
        assert_eq!(a.collected, b.collected);
        assert_eq!(a.fault_events, b.fault_events);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn node_failure_shrinks_the_allocation_and_drops_misfits() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        // Node 0 dies at t=0: the 8-node allocation degrades to 7
        // before the first wave, so every 8-node candidate (including
        // seed corners) must be dropped, and training must complete on
        // the survivors.
        let cfg = LearnerConfig {
            strategy: CollectionStrategy::Parallel,
            collection: CollectionPolicy {
                faults: acclaim_netsim::FaultModel::none().with_node_failure(0, 0.0),
                ..CollectionPolicy::default()
            },
            ..budget_config(SelectionPolicy::OwnVariance, 30)
        };
        let out = ActiveLearner::new(cfg).train(&db, Collective::Bcast, &space, None);
        assert_eq!(out.faults.node_evictions, 1);
        assert!(out.faults.candidates_dropped > 0);
        assert!(out
            .fault_events
            .iter()
            .any(|e| matches!(e, FaultEvent::NodeEvicted { node: 0, .. })));
        assert!(
            out.collected.iter().all(|s| s.point.nodes < 8),
            "no 8-node point can run on a 7-node allocation"
        );
        assert!(!out.collected.is_empty());
    }

    #[test]
    fn disabled_fault_policy_is_bit_identical_to_default() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let base = LearnerConfig {
            strategy: CollectionStrategy::Parallel,
            ..budget_config(SelectionPolicy::OwnVariance, 30)
        };
        // Non-fault knobs of the policy must be inert while faults are
        // disabled.
        let tweaked = LearnerConfig {
            collection: CollectionPolicy {
                faults: acclaim_netsim::FaultModel::none(),
                max_retries: 9,
                bench_timeout_factor: 1.5,
                repeats: 7,
                backoff_cap_waves: 2,
                agg: RobustAgg::Mean,
            },
            ..base.clone()
        };
        let a = ActiveLearner::new(base).train(&db, Collective::Reduce, &space, None);
        let b = ActiveLearner::new(tweaked).train(&db, Collective::Reduce, &space, None);
        assert_eq!(a.collected, b.collected);
        assert_eq!(a.stats, b.stats);
        assert!(b.faults.is_quiet());
        assert!(b.fault_events.is_empty());
    }

    #[test]
    fn no_candidate_is_collected_twice() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let out = ActiveLearner::new(budget_config(SelectionPolicy::OwnVariance, 40))
            .train(&db, Collective::Allreduce, &space, None);
        let mut seen = HashSet::new();
        for s in &out.collected {
            assert!(
                seen.insert((s.point, s.algorithm)),
                "duplicate sample {:?}",
                (s.point, s.algorithm)
            );
        }
    }
}
