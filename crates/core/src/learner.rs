//! The active-learning training loop (paper Fig. 2b).
//!
//! One loop serves ACCLAiM and both prior-art baselines through a
//! [`SelectionPolicy`]:
//!
//! * [`SelectionPolicy::OwnVariance`] — ACCLAiM: rank candidates by the
//!   *primary* model's jackknife variance (Sec. IV-A).
//! * [`SelectionPolicy::SurrogateVariance`] — FACT: a second, separately
//!   seeded surrogate forest picks points (emulating DeepHyper), with
//!   batched exploration among the top-k — selections tuned to the
//!   surrogate, not the deployed model (Sec. III-A).
//! * [`SelectionPolicy::Random`] — Hunold et al.: random sampling.
//!
//! Collection is sequential or wave-parallel (Sec. IV-D), convergence is
//! cumulative-variance (Sec. IV-C), test-set slowdown (prior art), or a
//! fixed point budget (for sweeps).

use crate::collector::{schedule_wave, CollectionStats, Placement};
use crate::convergence::{SlowdownThreshold, VarianceConvergence};
use crate::model::{PerfModel, TrainingSample};
use crate::selection::{all_candidates, Candidate, NonP2Injector, VarianceScanCache};
use acclaim_collectives::Collective;
use acclaim_dataset::{splits, BenchmarkDatabase, FeatureSpace, Point};
use acclaim_ml::{ForestConfig, TreeUpdate};
use acclaim_obs::{AttrValue, Obs};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::time::Instant;

/// How the next training point is chosen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// ACCLAiM: argmax jackknife variance of the primary model.
    OwnVariance,
    /// FACT: a surrogate forest ranks candidates; pick uniformly among
    /// its `top_k` (DeepHyper-style asynchronous batch exploration), and
    /// the surrogate is only retrained every `refresh` iterations (batch
    /// staleness — selections lag the data, and are tuned to the
    /// surrogate rather than the deployed model).
    SurrogateVariance {
        /// Surrogate forest hyperparameters.
        surrogate: ForestConfig,
        /// Exploration width.
        top_k: usize,
        /// Iterations between surrogate retrains.
        refresh: usize,
    },
    /// Hunold et al.: uniformly random uncollected candidate.
    Random,
}

/// Sequential or topology-aware parallel collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectionStrategy {
    /// One benchmark at a time (prior art).
    Sequential,
    /// Greedy wave scheduling over disjoint congestion domains.
    Parallel,
}

/// When to stop training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CriterionConfig {
    /// ACCLAiM: cumulative-variance plateau, no test set.
    CumulativeVariance(VarianceConvergence),
    /// Prior art: average slowdown on a freshly collected test set
    /// (whose collection cost is charged to `test_wall_us`).
    TestSlowdown {
        /// Slowdown bound (the paper's 1.03).
        threshold: SlowdownThreshold,
        /// Fraction of the feature space benchmarked as the test set
        /// (the paper reports 20%).
        test_fraction: f64,
    },
    /// Fixed budget of collected points (for sweep experiments).
    MaxPoints(usize),
}

/// Complete learner configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnerConfig {
    /// Primary forest hyperparameters.
    pub forest: ForestConfig,
    /// Point-selection policy.
    pub policy: SelectionPolicy,
    /// Collection strategy.
    pub strategy: CollectionStrategy,
    /// Stop criterion.
    pub criterion: CriterionConfig,
    /// Substitute every N-th point with a non-P2 message size
    /// (ACCLAiM uses `Some(5)`; prior art `None`).
    pub nonp2_every: Option<usize>,
    /// Guided sampling (the paper's Sec. I contribution wording):
    /// every N-th selection is drawn uniformly from the uncollected
    /// candidates instead of by variance. Random forests report
    /// unwarranted confidence in regions they interpolate smoothly but
    /// wrongly; a stratified random draw keeps such regions from
    /// starving. `None` disables exploration.
    pub explore_every: Option<usize>,
    /// Hard iteration cap (safety net).
    pub max_iterations: usize,
    /// RNG seed for seeding, exploration, and non-P2 draws.
    pub seed: u64,
    /// Warm-start model refits between iterations: append the new
    /// samples and rebuild only the trees whose hashed bootstrap drew
    /// them, updating only their columns of the cached variance scan.
    /// Decision-identical to scratch refits (same selections, same
    /// convergence stop) — `false` exists to prove exactly that and to
    /// measure the speedup.
    #[serde(default)]
    pub incremental: bool,
}

impl LearnerConfig {
    /// ACCLAiM as evaluated in Sec. VI: own-model variance selection,
    /// every-5th non-P2 substitution, parallel collection, cumulative-
    /// variance convergence.
    pub fn acclaim() -> Self {
        LearnerConfig {
            forest: ForestConfig::for_n_features(4),
            policy: SelectionPolicy::OwnVariance,
            strategy: CollectionStrategy::Parallel,
            criterion: CriterionConfig::CumulativeVariance(VarianceConvergence::paper_default()),
            nonp2_every: Some(5),
            explore_every: Some(4),
            max_iterations: 400,
            seed: 0xACC,
            incremental: true,
        }
    }

    /// ACCLAiM with sequential collection (used to isolate the point-
    /// selection contribution in Fig. 10).
    pub fn acclaim_sequential() -> Self {
        LearnerConfig {
            strategy: CollectionStrategy::Sequential,
            ..LearnerConfig::acclaim()
        }
    }

    /// The FACT baseline: surrogate-driven selection, P2 only,
    /// sequential collection, test-set slowdown convergence.
    pub fn fact() -> Self {
        LearnerConfig {
            forest: ForestConfig::for_n_features(4),
            policy: SelectionPolicy::SurrogateVariance {
                surrogate: ForestConfig {
                    n_trees: 24,
                    seed: 0xFAC7,
                    ..ForestConfig::for_n_features(4)
                },
                top_k: 8,
                refresh: 5,
            },
            strategy: CollectionStrategy::Sequential,
            criterion: CriterionConfig::TestSlowdown {
                threshold: SlowdownThreshold::paper_default(),
                test_fraction: 0.2,
            },
            nonp2_every: None,
            explore_every: None,
            max_iterations: 400,
            seed: 0xFAC7,
            incremental: true,
        }
    }

    /// Replace the stop criterion with a fixed point budget.
    pub fn with_budget(mut self, points: usize) -> Self {
        self.criterion = CriterionConfig::MaxPoints(points);
        self
    }
}

/// One iteration's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationRecord {
    /// Iteration number (0 = after seeding).
    pub iteration: usize,
    /// Training samples collected so far.
    pub samples: usize,
    /// Cumulative training-data collection wall time (µs), excluding
    /// any test set.
    pub wall_us: f64,
    /// Cumulative jackknife variance over the remaining candidates.
    pub cumulative_variance: f64,
    /// Wall time (µs, real clock) this iteration spent updating the
    /// model and the variance scan — the paper's "model update" cost,
    /// reported separately from (simulated) collection time so the
    /// training-time split of Fig. 14 can be shown.
    #[serde(default)]
    pub model_update_us: f64,
    /// Average slowdown on the caller's evaluation set (oracle quality,
    /// free of charge), if one was provided.
    pub oracle_slowdown: Option<f64>,
    /// Benchmarks executed in parallel in the wave that *preceded* this
    /// record (0 for the seeding record).
    pub wave_parallelism: usize,
}

/// The result of a training run.
#[derive(Debug, Clone)]
pub struct TrainingOutcome {
    /// The final fitted model.
    pub model: PerfModel,
    /// Per-iteration log.
    pub log: Vec<IterationRecord>,
    /// Every collected training sample, in collection order.
    pub collected: Vec<TrainingSample>,
    /// Whether the configured criterion fired (vs. hitting the cap).
    pub converged: bool,
    /// Collection statistics (training points only).
    pub stats: CollectionStats,
    /// Wall time spent collecting the test set, when the criterion
    /// required one (µs).
    pub test_wall_us: f64,
    /// Total real wall time spent on model updates (fits/refits plus
    /// variance scans), across all iterations (µs).
    pub model_update_wall_us: f64,
}

impl TrainingOutcome {
    /// Total *machine* time consumed: training-data collection plus
    /// test-set collection (µs). Both terms are simulated cluster wall
    /// time — what the job allocation is billed for. Model-update time
    /// is deliberately excluded: fits run on the host CPU while no
    /// benchmark occupies the allocation. Use
    /// [`TrainingOutcome::total_cost_us`] for the all-in figure.
    pub fn total_wall_us(&self) -> f64 {
        self.stats.wall_us + self.test_wall_us
    }

    /// Total training cost (µs): machine time
    /// ([`TrainingOutcome::total_wall_us`], simulated cluster clock)
    /// plus host CPU time spent on model updates
    /// (`model_update_wall_us`, real `Instant` clock — forest
    /// fits/refits and variance scans). The two terms tick on
    /// different clocks; their sum is the end-to-end cost a user
    /// waits for, the quantity the paper's training-time comparisons
    /// charge.
    pub fn total_cost_us(&self) -> f64 {
        self.total_wall_us() + self.model_update_wall_us
    }

    /// The first record whose oracle slowdown is at or below `bound`,
    /// if oracle evaluation was enabled — used to compare methodologies
    /// at the paper's 1.03 criterion regardless of their own stop rule.
    pub fn time_to_slowdown(&self, bound: f64) -> Option<f64> {
        self.log
            .iter()
            .find(|r| r.oracle_slowdown.is_some_and(|s| s <= bound))
            .map(|r| r.wall_us)
    }
}

/// The active learner.
#[derive(Debug, Clone)]
pub struct ActiveLearner {
    config: LearnerConfig,
}

impl ActiveLearner {
    /// A learner with the given configuration.
    pub fn new(config: LearnerConfig) -> Self {
        assert!(config.max_iterations >= 1);
        ActiveLearner { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LearnerConfig {
        &self.config
    }

    /// Train a model for `collective` over the P2 grid `space`, drawing
    /// measurements from `db`. `eval_points` enables free oracle
    /// tracking in the log (used by the figure harnesses; a real
    /// deployment has no oracle).
    pub fn train(
        &self,
        db: &BenchmarkDatabase,
        collective: Collective,
        space: &FeatureSpace,
        eval_points: Option<&[Point]>,
    ) -> TrainingOutcome {
        self.train_with_obs(db, collective, space, eval_points, &Obs::disabled())
    }

    /// [`ActiveLearner::train`] with tracing: every phase of the loop
    /// opens a span on `obs` (`learner/train` → `seed` / `iteration` →
    /// `fit`, `variance_scan`, `convergence_check`, `select`,
    /// `collect`), each collection slot emits a sim-timeline span on a
    /// `nodes A-B` lane, and counters track non-P2 injections, explore
    /// promotions, tree reuse, and DirtyRegion cell recomputes.
    /// Instrumentation is behaviorally inert: it never touches the RNG
    /// or any ordering, so the outcome is bit-identical to
    /// [`ActiveLearner::train`] (the `obs_golden` integration test
    /// proves it).
    pub fn train_with_obs(
        &self,
        db: &BenchmarkDatabase,
        collective: Collective,
        space: &FeatureSpace,
        eval_points: Option<&[Point]>,
        obs: &Obs,
    ) -> TrainingOutcome {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let candidates = all_candidates(collective, space);
        assert!(
            space.max_nodes() <= db.config().cluster.num_nodes(),
            "feature space exceeds the job allocation"
        );
        let mut train_span = obs.span("learner", "train");
        if obs.is_enabled() {
            train_span.set_attr("collective", format!("{collective:?}"));
            train_span.set_attr("candidates", candidates.len() as u64);
        }
        let m_nonp2 = obs.counter("learner.non_p2_injections");
        let m_explore = obs.counter("learner.explore_promotions");
        let m_trees_refitted = obs.counter("learner.trees_refitted");
        let m_trees_reused = obs.counter("learner.trees_reused");
        let m_cells_recomputed = obs.counter("learner.scan_cells_recomputed");
        let m_cells_reused = obs.counter("learner.scan_cells_reused");
        let g_cumvar = obs.gauge("learner.cumulative_variance");
        let g_samples = obs.gauge("learner.samples");

        let mut remaining: Vec<Candidate> = candidates.clone();
        let mut collected_set: HashSet<Candidate> = HashSet::new();
        let mut collected: Vec<TrainingSample> = Vec::new();
        let mut stats = CollectionStats::default();
        let mut injector = cfg.nonp2_every.map(NonP2Injector::new);

        // Criterion state.
        let mut variance_conv = match &cfg.criterion {
            CriterionConfig::CumulativeVariance(v) => Some(v.clone()),
            _ => None,
        };
        let (test_points, test_wall_us, slowdown_threshold, budget) = match &cfg.criterion {
            CriterionConfig::TestSlowdown {
                threshold,
                test_fraction,
            } => {
                let pts = splits::random_fraction(space, *test_fraction, &mut rng);
                // Benchmark every algorithm at every test point; the
                // paper's Fig. 6 charges this cost explicitly.
                let mut cost = 0.0;
                for &p in &pts {
                    for &a in collective.algorithms() {
                        cost += db.sample(a, p).wall_us;
                    }
                }
                (Some(pts), cost, Some(*threshold), usize::MAX)
            }
            CriterionConfig::MaxPoints(n) => (None, 0.0, None, *n),
            CriterionConfig::CumulativeVariance(_) => (None, 0.0, None, usize::MAX),
        };

        // Seed: the corners of the feature-space box, per algorithm.
        // Random forests cannot extrapolate — outside the convex hull of
        // the samples every tree lands in the same boundary leaf, so the
        // jackknife reports (unwarranted) confidence and variance-driven
        // selection never looks there. Sampling the 8 corners first
        // bounds the hull and is the standard space-filling
        // initialization for active learning.
        let seed_points: Vec<Candidate> = {
            let corner = |v: &[u32]| [v[0], *v.last().expect("non-empty axis")];
            let nodes = corner(&space.nodes);
            let ppns = corner(&space.ppns);
            let msgs = [
                space.msg_sizes[0],
                *space.msg_sizes.last().expect("non-empty axis"),
            ];
            let mut seeds = Vec::new();
            for &a in collective.algorithms() {
                for &n in &nodes {
                    for &p in &ppns {
                        for &m in &msgs {
                            let c = Candidate {
                                point: Point::new(n, p, m),
                                algorithm: a,
                            };
                            if !seeds.contains(&c) {
                                seeds.push(c);
                            }
                        }
                    }
                }
            }
            seeds
        };
        {
            let mut seed_span = obs.span("learner", "seed");
            let mut pending = seed_points;
            if obs.is_enabled() {
                seed_span.set_attr("points", pending.len() as u64);
            }
            while !pending.is_empty() {
                let (wave, placements): (Vec<Candidate>, Vec<Placement>) = match cfg.strategy {
                    CollectionStrategy::Sequential => (vec![pending.remove(0)], Vec::new()),
                    CollectionStrategy::Parallel => {
                        let cluster = &db.config().cluster;
                        let w = schedule_wave(&cluster.topology, &cluster.allocation, &pending);
                        // The greedy scheduler consumes a prefix of the list.
                        let wave = pending.drain(..w.parallelism().max(1)).collect();
                        (wave, w.placements)
                    }
                };
                let wave_start_us = stats.wall_us;
                let mut costs = Vec::with_capacity(wave.len());
                for (slot, c) in wave.into_iter().enumerate() {
                    let s = db.sample(c.algorithm, c.point);
                    collected.push(TrainingSample {
                        point: c.point,
                        algorithm: c.algorithm,
                        time_us: s.mean_us,
                    });
                    collected_set.insert(c);
                    if obs.is_enabled() {
                        slot_span(obs, &placements, slot, c, wave_start_us, s.wall_us);
                    }
                    costs.push(s.wall_us);
                }
                stats.add_wave(&costs);
            }
        }
        remaining.retain(|c| !collected_set.contains(c));

        let mut log: Vec<IterationRecord> = Vec::new();
        let mut converged = false;
        let mut last_parallelism = 0usize;
        let mut explore_counter = 0usize;
        let mut surrogate_order: Vec<Candidate> = Vec::new();
        let mut surrogate_age = 0usize;
        let mut model: Option<PerfModel> = None;
        let mut cache = VarianceScanCache::new(remaining.clone());
        let mut surrogate_model: Option<PerfModel> = None;
        let mut surrogate_cache: Option<VarianceScanCache> = None;
        let mut model_update_wall_us = 0.0f64;

        for iteration in 0..cfg.max_iterations {
            let mut iter_span = obs.span("learner", "iteration");
            if obs.is_enabled() {
                iter_span.set_attr("iteration", iteration as u64);
            }
            // Model update. With `incremental` the model warm-starts
            // (only trees whose bootstrap drew a new sample refit) and
            // the cached variance scan recomputes only their columns;
            // otherwise everything rebuilds from scratch through the
            // same cache, so both paths produce identical rankings.
            let update_start = Instant::now();
            let changed = {
                let mut fit_span = obs.span("learner", "fit");
                let changed = match model.as_mut().filter(|_| cfg.incremental) {
                    Some(m) => m.fit_incremental(&collected, &cfg.forest),
                    None => {
                        model = Some(PerfModel::fit(collective, &collected, &cfg.forest));
                        TreeUpdate::full_refit(cfg.forest.n_trees)
                    }
                };
                m_trees_refitted.add(changed.len() as u64);
                m_trees_reused.add(cfg.forest.n_trees.saturating_sub(changed.len()) as u64);
                if obs.is_enabled() {
                    fit_span.set_attr("samples", collected.len() as u64);
                    fit_span.set_attr("trees_refitted", changed.len() as u64);
                    fit_span.set_attr("trees_total", cfg.forest.n_trees as u64);
                }
                changed
            };
            let model = model.as_ref().expect("model fitted above");

            // Primary-model ranking always feeds the convergence signal;
            // the *selection* order depends on the policy.
            let primary_ranking = {
                let mut scan_span = obs.span("learner", "variance_scan");
                cache.retain(|c| !collected_set.contains(c));
                let rs = cache.refresh(model, &changed);
                m_cells_recomputed.add(rs.cells_recomputed as u64);
                m_cells_reused.add(rs.cells_reused() as u64);
                if obs.is_enabled() {
                    scan_span.set_attr("cells_total", rs.cells_total as u64);
                    scan_span.set_attr("cells_recomputed", rs.cells_recomputed as u64);
                    scan_span.set_attr("full", rs.full);
                }
                cache.ranking()
            };
            let model_update_us = update_start.elapsed().as_secs_f64() * 1e6;
            model_update_wall_us += model_update_us;
            g_cumvar.set(primary_ranking.cumulative);
            g_samples.set(collected.len() as f64);
            let oracle_slowdown = eval_points
                .map(|pts| db.average_slowdown(collective, pts, |p| model.select(p)));
            log.push(IterationRecord {
                iteration,
                samples: collected.len(),
                wall_us: stats.wall_us,
                cumulative_variance: primary_ranking.cumulative,
                model_update_us,
                oracle_slowdown,
                wave_parallelism: last_parallelism,
            });

            // Stop checks. Structured as a single decision so the span
            // guard closes before the loop breaks; the check order and
            // short-circuiting match the original cascade exactly.
            let stop = {
                let mut conv_span = obs.span("learner", "convergence_check");
                let stop = if collected.len() >= budget {
                    converged = matches!(cfg.criterion, CriterionConfig::MaxPoints(_));
                    true
                } else if variance_conv
                    .as_mut()
                    .is_some_and(|v| v.push(primary_ranking.cumulative))
                    || slowdown_threshold
                        .zip(test_points.as_ref())
                        .is_some_and(|(th, pts)| {
                            th.check(db.average_slowdown(collective, pts, |p| model.select(p)))
                        })
                {
                    converged = true;
                    true
                } else {
                    remaining.is_empty()
                };
                if obs.is_enabled() {
                    conv_span.set_attr("cumulative_variance", primary_ranking.cumulative);
                    conv_span.set_attr("stop", stop);
                }
                stop
            };
            if stop {
                break;
            }

            // Selection order for this iteration.
            let mut select_span = obs.span("learner", "select");
            let mut ordered: Vec<Candidate> = match &cfg.policy {
                SelectionPolicy::OwnVariance => {
                    primary_ranking.ranked.iter().map(|&(c, _)| c).collect()
                }
                SelectionPolicy::SurrogateVariance {
                    surrogate,
                    top_k,
                    refresh,
                } => {
                    let refresh = (*refresh).max(1);
                    if surrogate_order.is_empty() || surrogate_age.is_multiple_of(refresh) {
                        // The surrogate refits (warm-started when
                        // `incremental`) and keeps its own scan cache.
                        let sur_start = Instant::now();
                        let sur_changed =
                            match surrogate_model.as_mut().filter(|_| cfg.incremental) {
                                Some(m) => m.fit_incremental(&collected, surrogate),
                                None => {
                                    surrogate_model =
                                        Some(PerfModel::fit(collective, &collected, surrogate));
                                    TreeUpdate::full_refit(surrogate.n_trees)
                                }
                            };
                        let sm = surrogate_model.as_ref().expect("surrogate fitted above");
                        let sc = surrogate_cache
                            .get_or_insert_with(|| VarianceScanCache::new(remaining.clone()));
                        sc.retain(|c| !collected_set.contains(c));
                        sc.refresh(sm, &sur_changed);
                        let sr = sc.ranking();
                        model_update_wall_us += sur_start.elapsed().as_secs_f64() * 1e6;
                        surrogate_order = sr.ranked.iter().map(|&(c, _)| c).collect();
                        // DeepHyper-style exploration: shuffle the head.
                        let k = (*top_k).min(surrogate_order.len());
                        surrogate_order[..k].shuffle(&mut rng);
                    } else {
                        // Stale batch: drop candidates collected since.
                        surrogate_order.retain(|c| !collected_set.contains(c));
                    }
                    surrogate_age += 1;
                    surrogate_order.clone()
                }
                SelectionPolicy::Random => {
                    let mut order = remaining.clone();
                    order.shuffle(&mut rng);
                    order
                }
            };

            // Guided sampling: periodically promote a uniformly random
            // candidate to the head of the order.
            if let Some(every) = cfg.explore_every {
                explore_counter += 1;
                if every > 0 && explore_counter.is_multiple_of(every) {
                    let pick = rng.random_range(0..ordered.len());
                    ordered.swap(0, pick);
                    m_explore.incr();
                }
            }
            if obs.is_enabled() {
                select_span.set_attr("candidates", ordered.len() as u64);
            }

            // Build the wave (one point for sequential collection).
            let (wave_candidates, wave_placements): (Vec<Candidate>, Vec<Placement>) =
                match cfg.strategy {
                    CollectionStrategy::Sequential => (vec![ordered[0]], Vec::new()),
                    CollectionStrategy::Parallel => {
                        let cluster = &db.config().cluster;
                        let wave = schedule_wave(&cluster.topology, &cluster.allocation, &ordered);
                        let cands = wave
                            .placements
                            .iter()
                            .map(|p| ordered[p.candidate_index])
                            .collect();
                        (cands, wave.placements)
                    }
                };
            drop(select_span);
            debug_assert!(!wave_candidates.is_empty());
            last_parallelism = wave_candidates.len();

            // Collect the wave (with every-5th non-P2 substitution).
            let wave_start_us = stats.wall_us;
            let mut costs = Vec::with_capacity(wave_candidates.len());
            {
                let mut collect_span = obs.span("learner", "collect");
                if obs.is_enabled() {
                    collect_span.set_attr("parallelism", wave_candidates.len() as u64);
                }
                for (slot, anchor) in wave_candidates.into_iter().enumerate() {
                    let actual = match injector.as_mut() {
                        Some(inj) => inj.apply(anchor, &mut rng),
                        None => anchor,
                    };
                    if actual != anchor {
                        m_nonp2.incr();
                    }
                    let s = db.sample(actual.algorithm, actual.point);
                    collected.push(TrainingSample {
                        point: actual.point,
                        algorithm: actual.algorithm,
                        time_us: s.mean_us,
                    });
                    if obs.is_enabled() {
                        slot_span(obs, &wave_placements, slot, actual, wave_start_us, s.wall_us);
                    }
                    costs.push(s.wall_us);
                    // The P2 anchor leaves the pool either way: it was
                    // either collected or represented by its non-P2 variant.
                    collected_set.insert(anchor);
                }
            }
            remaining.retain(|c| !collected_set.contains(c));
            stats.add_wave(&costs);
        }

        // Final model. The warm-started model is bit-identical to a
        // scratch fit on the full collection, so reuse it (catching up
        // on any wave collected after the last in-loop refit).
        let final_start = Instant::now();
        let model = {
            let _fit_span = obs.span("learner", "final_fit");
            match model {
                Some(mut m) if cfg.incremental => {
                    m.fit_incremental(&collected, &cfg.forest);
                    m
                }
                _ => PerfModel::fit(collective, &collected, &cfg.forest),
            }
        };
        model_update_wall_us += final_start.elapsed().as_secs_f64() * 1e6;
        if obs.is_enabled() {
            train_span.set_attr("converged", converged);
            train_span.set_attr("points", collected.len() as u64);
        }
        TrainingOutcome {
            model,
            log,
            collected,
            converged,
            stats,
            test_wall_us,
            model_update_wall_us,
        }
    }
}

/// Emit one closed sim-timeline span for a collection slot, on a
/// display lane named after the node range the benchmark occupied
/// (`"nodes A-B"`). Parallel waves have a [`Placement`] per slot (the
/// scheduler consumes a prefix of the candidate list, so placements
/// align with wave slots by index); sequential collection synthesizes
/// a run starting at node 0. Chrome's trace viewer renders these lanes
/// as concurrent rows, making wave parallelism visible.
fn slot_span(
    obs: &Obs,
    placements: &[Placement],
    slot: usize,
    c: Candidate,
    wave_start_us: f64,
    cost_us: f64,
) {
    let (start_node, node_count) = match placements.get(slot) {
        Some(p) => (p.start_node, p.node_count.max(1)),
        None => (0, c.point.nodes.max(1)),
    };
    let track = format!("nodes {}-{}", start_node, start_node + node_count - 1);
    obs.span_at(
        "collect",
        "slot",
        &track,
        wave_start_us,
        wave_start_us + cost_us,
        vec![
            (
                "algorithm".to_string(),
                AttrValue::from(format!("{:?}", c.algorithm)),
            ),
            ("nodes".to_string(), AttrValue::from(c.point.nodes as u64)),
            ("ppn".to_string(), AttrValue::from(c.point.ppn as u64)),
            ("msg_bytes".to_string(), AttrValue::from(c.point.msg_bytes)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use acclaim_dataset::DatasetConfig;

    fn tiny_db() -> BenchmarkDatabase {
        BenchmarkDatabase::new(DatasetConfig::tiny())
    }

    fn fast_forest() -> ForestConfig {
        ForestConfig {
            n_trees: 16,
            ..ForestConfig::for_n_features(4)
        }
    }

    fn budget_config(policy: SelectionPolicy, points: usize) -> LearnerConfig {
        LearnerConfig {
            forest: fast_forest(),
            policy,
            strategy: CollectionStrategy::Sequential,
            criterion: CriterionConfig::MaxPoints(points),
            nonp2_every: None,
            explore_every: None,
            max_iterations: 100,
            seed: 42,
            incremental: true,
        }
    }

    #[test]
    fn budget_run_collects_exactly_the_budget() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        // Bcast seeds 8 corner points per algorithm (24); the budget
        // must exceed that to exercise the iterative phase.
        let cfg = budget_config(SelectionPolicy::OwnVariance, 30);
        let out = ActiveLearner::new(cfg).train(&db, Collective::Bcast, &space, None);
        assert_eq!(out.collected.len(), 30);
        assert!(out.converged);
        assert!(out.stats.wall_us > 0.0);
        assert_eq!(out.test_wall_us, 0.0);
    }

    #[test]
    fn log_is_monotone_in_samples_and_wall_time() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let cfg = budget_config(SelectionPolicy::OwnVariance, 30);
        let out = ActiveLearner::new(cfg).train(&db, Collective::Reduce, &space, None);
        assert!(out.log.len() >= 2);
        for w in out.log.windows(2) {
            assert!(w[1].samples > w[0].samples);
            assert!(w[1].wall_us >= w[0].wall_us);
        }
    }

    #[test]
    fn oracle_tracking_improves_with_data() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let pts = space.points();
        let cfg = budget_config(SelectionPolicy::OwnVariance, 30);
        let out = ActiveLearner::new(cfg).train(&db, Collective::Bcast, &space, Some(&pts));
        let first = out.log.first().unwrap().oracle_slowdown.unwrap();
        let last = out.log.last().unwrap().oracle_slowdown.unwrap();
        assert!(
            last <= first,
            "more data should not hurt on average: {first} -> {last}"
        );
        assert!(last < 1.15, "near-exhaustive training should be good: {last}");
    }

    #[test]
    fn variance_criterion_stops_before_exhausting_the_space() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let cfg = LearnerConfig {
            forest: fast_forest(),
            policy: SelectionPolicy::OwnVariance,
            strategy: CollectionStrategy::Sequential,
            criterion: CriterionConfig::CumulativeVariance(VarianceConvergence::relative(3, 0.2)),
            nonp2_every: None,
            explore_every: None,
            max_iterations: 200,
            seed: 7,
            incremental: true,
        };
        let out = ActiveLearner::new(cfg).train(&db, Collective::Allreduce, &space, None);
        let total_candidates = space.len() * 2;
        assert!(out.converged, "loose criterion should fire");
        assert!(
            out.collected.len() < total_candidates,
            "collected {} of {}",
            out.collected.len(),
            total_candidates
        );
    }

    #[test]
    fn test_slowdown_criterion_charges_test_collection() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let cfg = LearnerConfig {
            forest: fast_forest(),
            policy: SelectionPolicy::SurrogateVariance {
                surrogate: ForestConfig {
                    n_trees: 8,
                    seed: 99,
                    ..ForestConfig::for_n_features(4)
                },
                top_k: 4,
                refresh: 3,
            },
            strategy: CollectionStrategy::Sequential,
            criterion: CriterionConfig::TestSlowdown {
                threshold: SlowdownThreshold::paper_default(),
                test_fraction: 0.2,
            },
            nonp2_every: None,
            explore_every: None,
            max_iterations: 60,
            seed: 13,
            incremental: true,
        };
        let out = ActiveLearner::new(cfg).train(&db, Collective::Bcast, &space, None);
        assert!(out.test_wall_us > 0.0, "test set must cost machine time");
        assert!(out.total_wall_us() > out.stats.wall_us);
    }

    #[test]
    fn nonp2_injection_produces_nonp2_samples() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let cfg = LearnerConfig {
            nonp2_every: Some(5),
            ..budget_config(SelectionPolicy::OwnVariance, 60)
        };
        let out = ActiveLearner::new(cfg).train(&db, Collective::Bcast, &space, None);
        let nonp2 = out
            .collected
            .iter()
            .filter(|s| !s.point.msg_bytes.is_power_of_two())
            .count();
        // 36 post-seed selections at every=5 give ~7 substitutions.
        assert!(nonp2 >= 4, "expected non-P2 samples, got {nonp2}");
        assert!(nonp2 <= out.collected.len() / 3);
    }

    #[test]
    fn parallel_collection_is_never_slower_sequentially_counted() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let cfg = LearnerConfig {
            strategy: CollectionStrategy::Parallel,
            ..budget_config(SelectionPolicy::OwnVariance, 16)
        };
        let out = ActiveLearner::new(cfg).train(&db, Collective::Reduce, &space, None);
        assert!(out.stats.wall_us <= out.stats.sequential_wall_us + 1e-9);
        assert!(out.stats.average_parallelism() >= 1.0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let cfg = budget_config(SelectionPolicy::Random, 30);
        let a = ActiveLearner::new(cfg.clone()).train(&db, Collective::Bcast, &space, None);
        let b = ActiveLearner::new(cfg).train(&db, Collective::Bcast, &space, None);
        assert_eq!(a.collected, b.collected);
    }

    #[test]
    fn different_policies_choose_different_points() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let own = ActiveLearner::new(budget_config(SelectionPolicy::OwnVariance, 40))
            .train(&db, Collective::Bcast, &space, None);
        let random = ActiveLearner::new(budget_config(SelectionPolicy::Random, 40))
            .train(&db, Collective::Bcast, &space, None);
        assert_ne!(own.collected, random.collected);
    }

    #[test]
    fn no_candidate_is_collected_twice() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        let out = ActiveLearner::new(budget_config(SelectionPolicy::OwnVariance, 40))
            .train(&db, Collective::Allreduce, &space, None);
        let mut seen = HashSet::new();
        for s in &out.collected {
            assert!(
                seen.insert((s.point, s.algorithm)),
                "duplicate sample {:?}",
                (s.point, s.algorithm)
            );
        }
    }
}
