//! The ACCLAiM autotuner — the paper's primary contribution.
//!
//! ACCLAiM ("Advancing Collective Communication Autotuning using
//! Machine Learning", Wilkins et al., IEEE CLUSTER 2022) makes
//! ML-based MPI collective algorithm selection *practical* on
//! production systems with four advances, each a module here:
//!
//! * [`selection`] — jackknife-variance training-point selection from
//!   the deployed model itself, plus every-5th non-P2 substitution;
//! * [`convergence`] — the test-set-free cumulative-variance stop rule;
//! * [`collector`] — greedy topology-aware parallel data collection;
//! * [`rules`] — MPICH JSON tuning-file generation (Fig. 9) and the
//!   runtime selector;
//! * [`learner`] — the active-learning loop tying them together, with
//!   the prior-art baselines expressible as selection policies;
//! * [`baselines`] — the Hunold et al. per-algorithm-forest baseline;
//! * [`acclaim`] — the end-to-end job pipeline (train → file → run).
//!
//! Cross-job persistence (caching converged models and measurements
//! between runs) lives one layer up in `acclaim-store`; this crate only
//! exposes the warm-start hooks ([`learner::WarmStart`],
//! [`Acclaim::tune_with_warm`]) it plugs into.

#![warn(missing_docs)]

pub mod acclaim;
pub mod baselines;
pub mod collector;
pub mod convergence;
pub mod learner;
pub mod model;
pub mod rules;
pub mod selection;

pub use acclaim::{application_impact, Acclaim, AcclaimConfig, ApplicationImpact, JobTuning};
pub use collector::{
    robust_aggregate, run_attempt, AttemptOutcome, CollectionPolicy, CollectionStats, FaultEvent,
    FaultStats, RobustAgg,
};
pub use convergence::{SlowdownThreshold, VarianceConvergence};
pub use learner::{
    ActiveLearner, AnalyticPriorsConfig, CollectionStrategy, CriterionConfig, IterationRecord,
    LearnerConfig, SelectionPolicy, TrainingOutcome, WarmStart,
};
pub use model::{PerfModel, TrainingSample};
pub use rules::{generate_rules, CollectiveRules, Rule, RuleSet, TunedSelector, TuningFile};
pub use selection::{
    all_candidates, rank_by_variance, rank_by_variance_flat, Candidate, NonP2Injector, RefreshStats, VarianceScanCache,
};
