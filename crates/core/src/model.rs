//! The per-collective performance model.
//!
//! ACCLAiM uses a single random forest model per collective and
//! enumerates "algorithm" as an additional feature (Sec. V). The
//! model maps (log2 msg, log2 nodes, log2 ppn, derived log2 ranks,
//! algorithm index) to the collective's execution time and answers
//! three queries:
//!
//! * predicted time of one algorithm at a point,
//! * the selected (argmin) algorithm at a point,
//! * the jackknife variance of the ensemble at a candidate — the signal
//!   driving both ACCLAiM's point selection and its convergence test.
//!
//! Internally the forest regresses `ln(time)`: collective times span
//! five orders of magnitude across the feature space, and an MSE tree
//! fit on raw microseconds would spend its entire budget on the largest
//! points. Predictions are exponentiated back to microseconds; argmin
//! selections are unaffected by the monotone transform.

use acclaim_collectives::{Algorithm, Collective};
use acclaim_dataset::Point;
use acclaim_ml::{jackknife_variance, FeatureMatrix, ForestConfig, RandomForest, TreeUpdate};
use serde::{Deserialize, Serialize};

/// One collected training sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingSample {
    /// The benchmarked point.
    pub point: Point,
    /// The algorithm benchmarked at the point.
    pub algorithm: Algorithm,
    /// Measured mean time (µs).
    pub time_us: f64,
}

/// A fitted per-collective performance model.
///
/// Keeps its feature matrix and targets alive between fits so that
/// [`PerfModel::fit_incremental`] can append freshly collected samples
/// and warm-start the forest refit ([`RandomForest::refit_incremental`])
/// instead of rebuilding every tree from scratch.
///
/// The model is serializable (forest, feature matrix, and targets
/// included) so a converged snapshot can be persisted by the tuning
/// store and reloaded in a later job. JSON round-trips are exact: the
/// vendored `serde_json` prints `f64`s in shortest-roundtrip form, so a
/// reloaded model predicts bit-identically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfModel {
    collective: Collective,
    forest: RandomForest,
    x: FeatureMatrix,
    y: Vec<f64>,
}

impl PerfModel {
    fn featurize(
        collective: Collective,
        samples: &[TrainingSample],
        x: &mut FeatureMatrix,
        y: &mut Vec<f64>,
    ) {
        for s in samples {
            assert_eq!(
                s.algorithm.collective(),
                collective,
                "sample from the wrong collective"
            );
            assert!(s.time_us > 0.0, "times must be positive");
            x.push_row(&s.point.features_with_algorithm(s.algorithm.index_within_collective()));
            y.push(s.time_us.ln());
        }
    }

    /// Fit the model on the collected samples (all of one collective).
    pub fn fit(
        collective: Collective,
        samples: &[TrainingSample],
        config: &ForestConfig,
    ) -> Self {
        assert!(!samples.is_empty(), "cannot fit a model on zero samples");
        let mut x = FeatureMatrix::new(5);
        let mut y = Vec::with_capacity(samples.len());
        Self::featurize(collective, samples, &mut x, &mut y);
        PerfModel {
            collective,
            forest: RandomForest::fit(config, &x, &y),
            x,
            y,
        }
    }

    /// Refit after new samples were appended to the collection.
    ///
    /// `samples` must extend the sequence this model was (re)fitted on:
    /// the first `n` entries (where `n` is the previous sample count)
    /// are assumed unchanged, and only the tail is featurized and pushed
    /// into the stored matrix. The forest is then warm-started — trees
    /// whose hashed bootstrap draws none of the new samples are kept
    /// verbatim. Returns one [`TreeUpdate`] per changed tree (index plus
    /// the feature-space region its predictions may have moved in),
    /// which is exactly what a per-tree prediction cache must
    /// invalidate.
    ///
    /// The result is bit-for-bit the model [`PerfModel::fit`] would
    /// build on the full `samples` slice with the same `config`.
    pub fn fit_incremental(
        &mut self,
        samples: &[TrainingSample],
        config: &ForestConfig,
    ) -> Vec<TreeUpdate> {
        let fitted = self.y.len();
        assert!(
            samples.len() >= fitted,
            "samples must only ever be appended ({} < {fitted})",
            samples.len()
        );
        Self::featurize(self.collective, &samples[fitted..], &mut self.x, &mut self.y);
        self.forest.refit_incremental(config, &self.x, &self.y)
    }

    /// The collective this model serves.
    pub fn collective(&self) -> Collective {
        self.collective
    }

    /// Number of trees in the underlying forest.
    pub fn n_trees(&self) -> usize {
        self.forest.n_trees()
    }

    /// The underlying forest — what the flat SoA scan
    /// ([`acclaim_ml::FlatForest`]) flattens. Predictions are in
    /// log-time space; see [`PerfModel::tree_log_prediction`].
    pub fn forest(&self) -> &acclaim_ml::RandomForest {
        &self.forest
    }

    /// Number of samples the model is currently fitted on.
    pub fn n_samples(&self) -> usize {
        self.y.len()
    }

    /// The feature row the model sees for a candidate (point +
    /// algorithm index). Callers evaluating several trees at the same
    /// candidate build this once and pass it to
    /// [`PerfModel::tree_log_prediction`].
    pub fn candidate_features(&self, point: Point, algorithm: Algorithm) -> [f64; 5] {
        debug_assert_eq!(algorithm.collective(), self.collective);
        point.features_with_algorithm(algorithm.index_within_collective())
    }

    /// Prediction of a single tree at a feature row (from
    /// [`PerfModel::candidate_features`]), in log-time space — the unit
    /// the jackknife variance is computed in. Used by the cached
    /// variance scan to update only refitted columns.
    pub fn tree_log_prediction(&self, tree: usize, features: &[f64]) -> f64 {
        self.forest.tree_predict(tree, features)
    }

    /// All per-tree predictions at a candidate (log-time space), written
    /// into `out`.
    pub fn per_tree_log_predictions(
        &self,
        point: Point,
        algorithm: Algorithm,
        out: &mut Vec<f64>,
    ) {
        debug_assert_eq!(algorithm.collective(), self.collective);
        self.forest.predict_per_tree(
            &point.features_with_algorithm(algorithm.index_within_collective()),
            out,
        );
    }

    /// Predicted execution time (µs) of `algorithm` at `point`.
    pub fn predict(&self, point: Point, algorithm: Algorithm) -> f64 {
        debug_assert_eq!(algorithm.collective(), self.collective);
        self.forest
            .predict(&point.features_with_algorithm(algorithm.index_within_collective()))
            .exp()
    }

    /// The algorithm the model selects at `point` (lowest predicted
    /// time — Sec. II-C-1).
    pub fn select(&self, point: Point) -> Algorithm {
        self.collective
            .algorithms()
            .iter()
            .copied()
            .min_by(|&a, &b| self.predict(point, a).total_cmp(&self.predict(point, b)))
            .expect("collectives have algorithms")
    }

    /// Jackknife variance of the ensemble at a candidate (in log-time
    /// space, i.e. relative uncertainty). `scratch` is reused across
    /// calls to avoid reallocating the per-tree buffer.
    pub fn variance(&self, point: Point, algorithm: Algorithm, scratch: &mut Vec<f64>) -> f64 {
        debug_assert_eq!(algorithm.collective(), self.collective);
        self.forest.predict_per_tree(
            &point.features_with_algorithm(algorithm.index_within_collective()),
            scratch,
        );
        jackknife_variance(scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acclaim_dataset::{BenchmarkDatabase, DatasetConfig, FeatureSpace};

    fn samples_for(db: &BenchmarkDatabase, collective: Collective) -> Vec<TrainingSample> {
        let space = FeatureSpace::tiny();
        let mut out = Vec::new();
        for p in space.points() {
            for &a in collective.algorithms() {
                out.push(TrainingSample {
                    point: p,
                    algorithm: a,
                    time_us: db.time(a, p),
                });
            }
        }
        out
    }

    #[test]
    fn fits_and_predicts_positive_times() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let m = PerfModel::fit(
            Collective::Bcast,
            &samples_for(&db, Collective::Bcast),
            &ForestConfig::default(),
        );
        for p in FeatureSpace::tiny().points() {
            for &a in Collective::Bcast.algorithms() {
                assert!(m.predict(p, a) > 0.0);
            }
        }
    }

    #[test]
    fn fully_trained_model_selects_near_optimally() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let m = PerfModel::fit(
            Collective::Reduce,
            &samples_for(&db, Collective::Reduce),
            &ForestConfig::default(),
        );
        let pts = FeatureSpace::tiny().points();
        let slowdown = db.average_slowdown(Collective::Reduce, &pts, |p| m.select(p));
        assert!(slowdown < 1.1, "full-data model should be near-optimal: {slowdown}");
    }

    #[test]
    fn variance_shrinks_where_data_exists() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let all = samples_for(&db, Collective::Bcast);
        // Train on points with nodes <= 4 only.
        let partial: Vec<TrainingSample> =
            all.iter().copied().filter(|s| s.point.nodes <= 4).collect();
        let m = PerfModel::fit(Collective::Bcast, &partial, &ForestConfig::default());
        let mut scratch = Vec::new();
        let seen = Point::new(4, 1, 256);
        let unseen = Point::new(8, 2, 4_096);
        let v_seen = m.variance(seen, Algorithm::BcastBinomial, &mut scratch);
        let v_unseen = m.variance(unseen, Algorithm::BcastBinomial, &mut scratch);
        assert!(
            v_unseen > v_seen,
            "unseen corner must be more uncertain: {v_unseen} vs {v_seen}"
        );
    }

    #[test]
    fn incremental_fit_matches_scratch_fit() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let all = samples_for(&db, Collective::Bcast);
        let cfg = ForestConfig {
            n_trees: 24,
            ..ForestConfig::default()
        };
        let mut m = PerfModel::fit(Collective::Bcast, &all[..10], &cfg);
        for upto in [11, 14, all.len()] {
            let changed = m.fit_incremental(&all[..upto], &cfg);
            let scratch = PerfModel::fit(Collective::Bcast, &all[..upto], &cfg);
            assert!(changed.len() <= cfg.n_trees);
            let mut scratch_preds = Vec::new();
            let mut inc_preds = Vec::new();
            for p in FeatureSpace::tiny().points() {
                for &a in Collective::Bcast.algorithms() {
                    scratch.per_tree_log_predictions(p, a, &mut scratch_preds);
                    m.per_tree_log_predictions(p, a, &mut inc_preds);
                    assert_eq!(inc_preds, scratch_preds, "divergence at n={upto}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "appended")]
    fn incremental_fit_rejects_shrinking_history() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let all = samples_for(&db, Collective::Bcast);
        let cfg = ForestConfig::default();
        let mut m = PerfModel::fit(Collective::Bcast, &all[..10], &cfg);
        let _ = m.fit_incremental(&all[..5], &cfg);
    }

    #[test]
    #[should_panic(expected = "wrong collective")]
    fn cross_collective_samples_rejected() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let s = TrainingSample {
            point: Point::new(2, 1, 64),
            algorithm: Algorithm::ReduceBinomial,
            time_us: db.time(Algorithm::ReduceBinomial, Point::new(2, 1, 64)),
        };
        let _ = PerfModel::fit(Collective::Bcast, &[s], &ForestConfig::default());
    }
}
