//! The per-collective performance model.
//!
//! ACCLAiM uses a single random forest model per collective and
//! enumerates "algorithm" as an additional feature (Sec. V). The
//! model maps (log2 msg, log2 nodes, log2 ppn, derived log2 ranks,
//! algorithm index) to the collective's execution time and answers
//! three queries:
//!
//! * predicted time of one algorithm at a point,
//! * the selected (argmin) algorithm at a point,
//! * the jackknife variance of the ensemble at a candidate — the signal
//!   driving both ACCLAiM's point selection and its convergence test.
//!
//! Internally the forest regresses `ln(time)`: collective times span
//! five orders of magnitude across the feature space, and an MSE tree
//! fit on raw microseconds would spend its entire budget on the largest
//! points. Predictions are exponentiated back to microseconds; argmin
//! selections are unaffected by the monotone transform.

use acclaim_collectives::{Algorithm, Collective};
use acclaim_dataset::Point;
use acclaim_ml::{jackknife_variance, FeatureMatrix, ForestConfig, RandomForest};
use serde::{Deserialize, Serialize};

/// One collected training sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingSample {
    /// The benchmarked point.
    pub point: Point,
    /// The algorithm benchmarked at the point.
    pub algorithm: Algorithm,
    /// Measured mean time (µs).
    pub time_us: f64,
}

/// A fitted per-collective performance model.
#[derive(Debug, Clone)]
pub struct PerfModel {
    collective: Collective,
    forest: RandomForest,
}

impl PerfModel {
    /// Fit the model on the collected samples (all of one collective).
    pub fn fit(
        collective: Collective,
        samples: &[TrainingSample],
        config: &ForestConfig,
    ) -> Self {
        assert!(!samples.is_empty(), "cannot fit a model on zero samples");
        let mut x = FeatureMatrix::new(5);
        let mut y = Vec::with_capacity(samples.len());
        for s in samples {
            assert_eq!(
                s.algorithm.collective(),
                collective,
                "sample from the wrong collective"
            );
            assert!(s.time_us > 0.0, "times must be positive");
            x.push_row(&s.point.features_with_algorithm(s.algorithm.index_within_collective()));
            y.push(s.time_us.ln());
        }
        PerfModel {
            collective,
            forest: RandomForest::fit(config, &x, &y),
        }
    }

    /// The collective this model serves.
    pub fn collective(&self) -> Collective {
        self.collective
    }

    /// Predicted execution time (µs) of `algorithm` at `point`.
    pub fn predict(&self, point: Point, algorithm: Algorithm) -> f64 {
        debug_assert_eq!(algorithm.collective(), self.collective);
        self.forest
            .predict(&point.features_with_algorithm(algorithm.index_within_collective()))
            .exp()
    }

    /// The algorithm the model selects at `point` (lowest predicted
    /// time — Sec. II-C-1).
    pub fn select(&self, point: Point) -> Algorithm {
        self.collective
            .algorithms()
            .iter()
            .copied()
            .min_by(|&a, &b| self.predict(point, a).total_cmp(&self.predict(point, b)))
            .expect("collectives have algorithms")
    }

    /// Jackknife variance of the ensemble at a candidate (in log-time
    /// space, i.e. relative uncertainty). `scratch` is reused across
    /// calls to avoid reallocating the per-tree buffer.
    pub fn variance(&self, point: Point, algorithm: Algorithm, scratch: &mut Vec<f64>) -> f64 {
        debug_assert_eq!(algorithm.collective(), self.collective);
        self.forest.predict_per_tree(
            &point.features_with_algorithm(algorithm.index_within_collective()),
            scratch,
        );
        jackknife_variance(scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acclaim_dataset::{BenchmarkDatabase, DatasetConfig, FeatureSpace};

    fn samples_for(db: &BenchmarkDatabase, collective: Collective) -> Vec<TrainingSample> {
        let space = FeatureSpace::tiny();
        let mut out = Vec::new();
        for p in space.points() {
            for &a in collective.algorithms() {
                out.push(TrainingSample {
                    point: p,
                    algorithm: a,
                    time_us: db.time(a, p),
                });
            }
        }
        out
    }

    #[test]
    fn fits_and_predicts_positive_times() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let m = PerfModel::fit(
            Collective::Bcast,
            &samples_for(&db, Collective::Bcast),
            &ForestConfig::default(),
        );
        for p in FeatureSpace::tiny().points() {
            for &a in Collective::Bcast.algorithms() {
                assert!(m.predict(p, a) > 0.0);
            }
        }
    }

    #[test]
    fn fully_trained_model_selects_near_optimally() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let m = PerfModel::fit(
            Collective::Reduce,
            &samples_for(&db, Collective::Reduce),
            &ForestConfig::default(),
        );
        let pts = FeatureSpace::tiny().points();
        let slowdown = db.average_slowdown(Collective::Reduce, &pts, |p| m.select(p));
        assert!(slowdown < 1.1, "full-data model should be near-optimal: {slowdown}");
    }

    #[test]
    fn variance_shrinks_where_data_exists() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let all = samples_for(&db, Collective::Bcast);
        // Train on points with nodes <= 4 only.
        let partial: Vec<TrainingSample> =
            all.iter().copied().filter(|s| s.point.nodes <= 4).collect();
        let m = PerfModel::fit(Collective::Bcast, &partial, &ForestConfig::default());
        let mut scratch = Vec::new();
        let seen = Point::new(4, 1, 256);
        let unseen = Point::new(8, 2, 4_096);
        let v_seen = m.variance(seen, Algorithm::BcastBinomial, &mut scratch);
        let v_unseen = m.variance(unseen, Algorithm::BcastBinomial, &mut scratch);
        assert!(
            v_unseen > v_seen,
            "unseen corner must be more uncertain: {v_unseen} vs {v_seen}"
        );
    }

    #[test]
    #[should_panic(expected = "wrong collective")]
    fn cross_collective_samples_rejected() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let s = TrainingSample {
            point: Point::new(2, 1, 64),
            algorithm: Algorithm::ReduceBinomial,
            time_us: db.time(Algorithm::ReduceBinomial, Point::new(2, 1, 64)),
        };
        let _ = PerfModel::fit(Collective::Bcast, &[s], &ForestConfig::default());
    }
}
