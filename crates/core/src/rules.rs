//! Selection-rule generation and the MPICH-style JSON tuning file
//! (paper Sec. V, Fig. 9).
//!
//! ACCLAiM's deliverable is an edited MPICH algorithm-selection file: a
//! *complete* list of logic rules ("if msg_size <= 32 use binomial")
//! that must be *pruned* so no two consecutive rules select the same
//! algorithm. Rule boundaries come from the model's selections over the
//! P2 grid, refined by re-querying the model at the non-P2 midpoint `B`
//! between the last old-selection point `A` and the first new-selection
//! point `C` — preserving the model's non-P2 knowledge in the file.

use crate::model::PerfModel;
use acclaim_collectives::{mpich_default, Algorithm, Collective};
use acclaim_dataset::{FeatureSpace, Point};
use serde::{Deserialize, Serialize};

/// One selection rule: applies to message sizes up to and including
/// `max_msg_bytes` (`None` = unbounded, the mandatory final rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// Inclusive upper bound, `None` for the catch-all.
    pub max_msg_bytes: Option<u64>,
    /// The algorithm selected under this rule.
    pub algorithm: Algorithm,
}

/// The ordered rules for one (nodes, ppn) context.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleSet {
    /// Node count this context was generated for.
    pub nodes: u32,
    /// PPN this context was generated for.
    pub ppn: u32,
    /// Rules ordered by ascending bound; the last has no bound.
    pub rules: Vec<Rule>,
}

impl RuleSet {
    /// Select the algorithm for a message size.
    ///
    /// Panics if the rule set is incomplete (no catch-all), which
    /// [`generate_rules`] never produces.
    pub fn select(&self, msg_bytes: u64) -> Algorithm {
        self.rules
            .iter()
            .find(|r| r.max_msg_bytes.is_none_or(|b| msg_bytes <= b))
            .expect("complete rule set")
            .algorithm
    }

    /// Every input resolves: the final rule is unbounded and bounds
    /// ascend strictly.
    pub fn is_complete(&self) -> bool {
        let Some(last) = self.rules.last() else {
            return false;
        };
        last.max_msg_bytes.is_none()
            && self.rules[..self.rules.len() - 1]
                .iter()
                .all(|r| r.max_msg_bytes.is_some())
            && self
                .rules
                .windows(2)
                .all(|w| match (w[0].max_msg_bytes, w[1].max_msg_bytes) {
                    (Some(a), Some(b)) => a < b,
                    (Some(_), None) => true,
                    _ => false,
                })
    }

    /// No two consecutive rules resolve to the same algorithm
    /// (minimizing selection delay, Sec. V).
    pub fn is_pruned(&self) -> bool {
        self.rules.windows(2).all(|w| w[0].algorithm != w[1].algorithm)
    }
}

/// The rule table for one collective over a (nodes, ppn) grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectiveRules {
    /// The collective this table serves.
    pub collective: Collective,
    /// One rule set per grid (nodes, ppn) context.
    pub contexts: Vec<RuleSet>,
}

impl CollectiveRules {
    /// Select for an arbitrary point: the exact (nodes, ppn) context if
    /// present, otherwise the nearest context in log space (production
    /// jobs land between grid values).
    pub fn select(&self, point: Point) -> Algorithm {
        let ctx = self
            .contexts
            .iter()
            .min_by(|a, b| {
                let d = |c: &RuleSet| {
                    let dn = (c.nodes as f64).log2() - (point.nodes as f64).log2();
                    let dp = (c.ppn as f64).log2() - (point.ppn as f64).log2();
                    dn * dn + dp * dp
                };
                d(a).total_cmp(&d(b))
            })
            .expect("at least one context");
        ctx.select(point.msg_bytes)
    }
}

/// Generate the pruned, complete rule table from a trained model
/// (Fig. 9's A/B/C construction).
pub fn generate_rules(model: &PerfModel, space: &FeatureSpace) -> CollectiveRules {
    let mut contexts = Vec::with_capacity(space.nodes.len() * space.ppns.len());
    for &nodes in &space.nodes {
        for &ppn in &space.ppns {
            contexts.push(generate_context(model, space, nodes, ppn));
        }
    }
    CollectiveRules {
        collective: model.collective(),
        contexts,
    }
}

fn generate_context(model: &PerfModel, space: &FeatureSpace, nodes: u32, ppn: u32) -> RuleSet {
    let sizes = &space.msg_sizes;
    let mut rules: Vec<Rule> = Vec::new();
    let mut current = model.select(Point::new(nodes, ppn, sizes[0]));
    let mut last_size = sizes[0];
    for &c_size in &sizes[1..] {
        let sel = model.select(Point::new(nodes, ppn, c_size));
        if sel != current {
            // A = last point with the old selection, C = first with the
            // new; B = the (typically non-P2) midpoint, re-queried.
            let b_size = last_size + (c_size - last_size) / 2;
            let alg_b = model.select(Point::new(nodes, ppn, b_size));
            rules.push(Rule {
                max_msg_bytes: Some(last_size),
                algorithm: current,
            });
            rules.push(Rule {
                max_msg_bytes: Some(c_size - 1),
                algorithm: alg_b,
            });
            current = sel;
        }
        last_size = c_size;
    }
    rules.push(Rule {
        max_msg_bytes: None,
        algorithm: current,
    });
    prune(&mut rules);
    RuleSet { nodes, ppn, rules }
}

/// Merge consecutive rules selecting the same algorithm (the later rule
/// absorbs the earlier one's range).
fn prune(rules: &mut Vec<Rule>) {
    rules.dedup_by(|later, earlier| {
        // dedup_by sees (later, earlier) and drops `later` on true; we
        // instead want to keep the *later* bound, so copy it backward.
        if earlier.algorithm == later.algorithm {
            earlier.max_msg_bytes = later.max_msg_bytes;
            true
        } else {
            false
        }
    });
}

/// The full tuning file ACCLAiM hands to MPICH (one table per tuned
/// collective; untuned collectives fall back to the default heuristic).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TuningFile {
    /// Tables for the tuned collectives.
    pub collectives: Vec<CollectiveRules>,
}

impl TuningFile {
    /// Look up a tuned selection, if this collective was tuned.
    pub fn select(&self, collective: Collective, point: Point) -> Option<Algorithm> {
        self.collectives
            .iter()
            .find(|c| c.collective == collective)
            .map(|c| c.select(point))
    }

    /// Serialize in the MPICH-flavored JSON layout (human-readable
    /// algorithm names, nested contexts).
    pub fn to_mpich_json(&self) -> serde_json::Value {
        use serde_json::{json, Value};
        let collectives: Vec<Value> = self
            .collectives
            .iter()
            .map(|table| {
                let contexts: Vec<Value> = table
                    .contexts
                    .iter()
                    .map(|ctx| {
                        let rules: Vec<Value> = ctx
                            .rules
                            .iter()
                            .map(|r| match r.max_msg_bytes {
                                Some(b) => json!({
                                    "max_msg_size": b,
                                    "algorithm": r.algorithm.name(),
                                }),
                                None => json!({ "algorithm": r.algorithm.name() }),
                            })
                            .collect();
                        json!({ "nodes": ctx.nodes, "ppn": ctx.ppn, "rules": rules })
                    })
                    .collect();
                json!({ "collective": table.collective.name(), "contexts": contexts })
            })
            .collect();
        json!({ "generated_by": "ACCLAiM", "collectives": collectives })
    }

    /// Parse the MPICH-flavored JSON layout back.
    pub fn from_mpich_json(value: &serde_json::Value) -> Result<TuningFile, String> {
        let tables = value
            .get("collectives")
            .and_then(|v| v.as_array())
            .ok_or("missing 'collectives' array")?;
        let mut collectives = Vec::with_capacity(tables.len());
        for t in tables {
            let cname = t
                .get("collective")
                .and_then(|v| v.as_str())
                .ok_or("missing collective name")?;
            let collective =
                Collective::parse(cname).ok_or_else(|| format!("unknown collective {cname}"))?;
            let mut contexts = Vec::new();
            for ctx in t
                .get("contexts")
                .and_then(|v| v.as_array())
                .ok_or("missing contexts")?
            {
                let nodes = ctx.get("nodes").and_then(|v| v.as_u64()).ok_or("nodes")? as u32;
                let ppn = ctx.get("ppn").and_then(|v| v.as_u64()).ok_or("ppn")? as u32;
                let mut rules = Vec::new();
                for r in ctx.get("rules").and_then(|v| v.as_array()).ok_or("rules")? {
                    let aname = r
                        .get("algorithm")
                        .and_then(|v| v.as_str())
                        .ok_or("algorithm")?;
                    let algorithm = Algorithm::parse(collective, aname)
                        .ok_or_else(|| format!("unknown algorithm {cname}.{aname}"))?;
                    rules.push(Rule {
                        max_msg_bytes: r.get("max_msg_size").and_then(|v| v.as_u64()),
                        algorithm,
                    });
                }
                contexts.push(RuleSet { nodes, ppn, rules });
            }
            collectives.push(CollectiveRules {
                collective,
                contexts,
            });
        }
        Ok(TuningFile { collectives })
    }
}

/// Runtime selector combining a tuning file with the MPICH default
/// heuristic for untuned collectives — the library-side dispatch MPICH
/// performs when `MPIR_CVAR_..._JSON_FILE` points at ACCLAiM's output.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TunedSelector {
    file: TuningFile,
}

impl TunedSelector {
    /// A selector over a tuning file.
    pub fn new(file: TuningFile) -> Self {
        TunedSelector { file }
    }

    /// The wrapped tuning file.
    pub fn file(&self) -> &TuningFile {
        &self.file
    }

    /// Select the algorithm for a call site.
    pub fn select(&self, collective: Collective, point: Point) -> Algorithm {
        self.file
            .select(collective, point)
            .unwrap_or_else(|| mpich_default(collective, point.ranks(), point.msg_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrainingSample;
    use acclaim_dataset::{BenchmarkDatabase, DatasetConfig};
    use acclaim_ml::ForestConfig;

    fn trained_model(collective: Collective) -> PerfModel {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let space = FeatureSpace::tiny();
        let mut samples = Vec::new();
        for p in space.points() {
            for &a in collective.algorithms() {
                samples.push(TrainingSample {
                    point: p,
                    algorithm: a,
                    time_us: db.time(a, p),
                });
            }
        }
        PerfModel::fit(
            collective,
            &samples,
            &ForestConfig {
                n_trees: 16,
                ..ForestConfig::for_n_features(4)
            },
        )
    }

    #[test]
    fn generated_rules_are_complete_and_pruned() {
        let model = trained_model(Collective::Bcast);
        let table = generate_rules(&model, &FeatureSpace::tiny());
        assert_eq!(table.contexts.len(), 3 * 2);
        for ctx in &table.contexts {
            assert!(ctx.is_complete(), "{ctx:?}");
            assert!(ctx.is_pruned(), "{ctx:?}");
        }
    }

    #[test]
    fn rules_reproduce_model_selections_on_the_grid() {
        let model = trained_model(Collective::Reduce);
        let space = FeatureSpace::tiny();
        let table = generate_rules(&model, &space);
        for p in space.points() {
            assert_eq!(
                table.select(p),
                model.select(p),
                "rule/model mismatch at {p}"
            );
        }
    }

    #[test]
    fn rule_set_select_honors_boundaries() {
        let rs = RuleSet {
            nodes: 4,
            ppn: 2,
            rules: vec![
                Rule {
                    max_msg_bytes: Some(100),
                    algorithm: Algorithm::BcastBinomial,
                },
                Rule {
                    max_msg_bytes: Some(1_000),
                    algorithm: Algorithm::BcastScatterRingAllgather,
                },
                Rule {
                    max_msg_bytes: None,
                    algorithm: Algorithm::BcastScatterRecursiveDoublingAllgather,
                },
            ],
        };
        assert!(rs.is_complete() && rs.is_pruned());
        assert_eq!(rs.select(100), Algorithm::BcastBinomial);
        assert_eq!(rs.select(101), Algorithm::BcastScatterRingAllgather);
        assert_eq!(rs.select(1_001), Algorithm::BcastScatterRecursiveDoublingAllgather);
    }

    #[test]
    fn incomplete_and_unpruned_sets_are_detected() {
        let no_catch_all = RuleSet {
            nodes: 2,
            ppn: 1,
            rules: vec![Rule {
                max_msg_bytes: Some(10),
                algorithm: Algorithm::BcastBinomial,
            }],
        };
        assert!(!no_catch_all.is_complete());
        let dup = RuleSet {
            nodes: 2,
            ppn: 1,
            rules: vec![
                Rule {
                    max_msg_bytes: Some(10),
                    algorithm: Algorithm::BcastBinomial,
                },
                Rule {
                    max_msg_bytes: None,
                    algorithm: Algorithm::BcastBinomial,
                },
            ],
        };
        assert!(!dup.is_pruned());
    }

    #[test]
    fn prune_merges_consecutive_duplicates() {
        let mut rules = vec![
            Rule {
                max_msg_bytes: Some(8),
                algorithm: Algorithm::ReduceBinomial,
            },
            Rule {
                max_msg_bytes: Some(64),
                algorithm: Algorithm::ReduceBinomial,
            },
            Rule {
                max_msg_bytes: None,
                algorithm: Algorithm::ReduceScatterGather,
            },
        ];
        prune(&mut rules);
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].max_msg_bytes, Some(64), "later bound wins");
    }

    #[test]
    fn nearest_context_serves_off_grid_points() {
        let model = trained_model(Collective::Bcast);
        let space = FeatureSpace::tiny();
        let table = generate_rules(&model, &space);
        // 5 nodes sits between grid contexts 4 and 8; selection must
        // come from one of them without panicking.
        let a = table.select(Point::new(5, 2, 512));
        assert_eq!(a.collective(), Collective::Bcast);
    }

    #[test]
    fn mpich_json_round_trips() {
        let model = trained_model(Collective::Bcast);
        let table = generate_rules(&model, &FeatureSpace::tiny());
        let file = TuningFile {
            collectives: vec![table],
        };
        let json = file.to_mpich_json();
        let text = serde_json::to_string_pretty(&json).unwrap();
        assert!(text.contains("\"collective\": \"bcast\""));
        let parsed = TuningFile::from_mpich_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(parsed, file);
    }

    #[test]
    fn tuned_selector_falls_back_to_defaults() {
        let selector = TunedSelector::default();
        let p = Point::new(16, 4, 1 << 20);
        assert_eq!(
            selector.select(Collective::Allreduce, p),
            mpich_default(Collective::Allreduce, p.ranks(), p.msg_bytes)
        );
    }

    #[test]
    fn tuned_selector_uses_the_file_when_present() {
        let model = trained_model(Collective::Bcast);
        let space = FeatureSpace::tiny();
        let table = generate_rules(&model, &space);
        let selector = TunedSelector::new(TuningFile {
            collectives: vec![table],
        });
        for p in space.points() {
            assert_eq!(selector.select(Collective::Bcast, p), model.select(p));
        }
    }
}
