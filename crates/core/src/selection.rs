//! Training-point selection (paper Sec. IV-A and IV-B).
//!
//! ACCLAiM ranks every uncollected candidate (point × algorithm) by the
//! jackknife variance of its own random forest and benchmarks the
//! highest-variance one next — "filling gaps in its understanding". To
//! bound the number of variance evaluations, only P2 grid points are
//! ranked (Sec. IV-A); non-P2 coverage instead comes from the *every
//! fifth point* substitution of Sec. IV-B, which swaps the winning
//! candidate's message size for a random non-P2 size whose closest P2
//! value is the original.

use crate::model::PerfModel;
use acclaim_collectives::{Algorithm, Collective};
use acclaim_dataset::{FeatureSpace, Point};
use acclaim_ml::{jackknife_variance, FlatForest, TreeUpdate, FLAT_BLOCK_ROWS};
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One selectable training candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Candidate {
    /// The feature-space point.
    pub point: Point,
    /// The algorithm to benchmark at the point.
    pub algorithm: Algorithm,
}

/// All candidates of a collective over a P2 grid.
pub fn all_candidates(collective: Collective, space: &FeatureSpace) -> Vec<Candidate> {
    let pts = space.points();
    collective
        .algorithms()
        .iter()
        .flat_map(|&algorithm| {
            pts.iter().map(move |&point| Candidate { point, algorithm })
        })
        .collect()
}

/// Candidates ranked by model variance, descending, plus the cumulative
/// variance used as ACCLAiM's convergence signal (Sec. IV-C).
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceRanking {
    /// `(candidate, jackknife variance)`, highest variance first.
    pub ranked: Vec<(Candidate, f64)>,
    /// Sum of variance over every candidate.
    pub cumulative: f64,
}

impl VarianceRanking {
    /// The highest-variance candidate, if any remain.
    pub fn top(&self) -> Option<Candidate> {
        self.ranked.first().map(|&(c, _)| c)
    }
}

/// Rank `candidates` by the model's jackknife variance.
pub fn rank_by_variance(model: &PerfModel, candidates: &[Candidate]) -> VarianceRanking {
    let mut scratch = Vec::new();
    let mut ranked: Vec<(Candidate, f64)> = candidates
        .iter()
        .map(|&c| (c, model.variance(c.point, c.algorithm, &mut scratch)))
        .collect();
    // Deterministic order: variance desc, then candidate identity.
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let cumulative = ranked.iter().map(|&(_, v)| v).sum();
    VarianceRanking { ranked, cumulative }
}

/// [`rank_by_variance`] through the flat SoA engine: the forest is
/// flattened once and the fused cache-blocked
/// [`FlatForest::variance_rows_into`] scan replaces the per-candidate
/// pointer walk. Bit-identical output — same variances (the fused scan
/// reuses the exact scalar jackknife accumulation), same sort, same
/// cumulative sum — just faster; both paths are kept so the `bench`
/// runner can track the gap.
pub fn rank_by_variance_flat(model: &PerfModel, candidates: &[Candidate]) -> VarianceRanking {
    let flat = FlatForest::from_forest(model.forest());
    let rows: Vec<[f64; 5]> = candidates
        .iter()
        .map(|c| model.candidate_features(c.point, c.algorithm))
        .collect();
    let mut vars = vec![0.0; rows.len()];
    flat.variance_rows_into(&rows, &mut vars);
    let mut ranked: Vec<(Candidate, f64)> = candidates.iter().copied().zip(vars).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let cumulative = ranked.iter().map(|&(_, v)| v).sum();
    VarianceRanking { ranked, cumulative }
}

/// A cached candidate-space variance scan — the incremental counterpart
/// of [`rank_by_variance`].
///
/// Holds the per-tree log-space prediction of every candidate (a
/// candidates × trees matrix). After an incremental model refit only
/// the columns of the refitted trees change, so [`VarianceScanCache::refresh`]
/// updates those columns and leaves the rest untouched; the jackknife
/// variances (and their cumulative sum, ACCLAiM's convergence signal)
/// are then recomputed from the cache. Because an unchanged tree
/// predicts bit-identically, a cached ranking equals the cold
/// [`rank_by_variance`] scan exactly — same variances, same order, same
/// cumulative sum.
#[derive(Debug, Clone)]
pub struct VarianceScanCache {
    candidates: Vec<Candidate>,
    /// Candidate-major per-tree predictions (row `i` = candidate `i`).
    preds: Vec<f64>,
    n_trees: usize,
    filled: bool,
    /// Evaluate refreshes through the flat SoA engine (bit-identical;
    /// see [`FlatForest`]).
    flat: bool,
}

impl VarianceScanCache {
    /// An empty cache over `candidates`; call
    /// [`VarianceScanCache::refresh`] before ranking. Defaults to the
    /// pointer-chasing engine; see [`VarianceScanCache::with_flat`].
    pub fn new(candidates: Vec<Candidate>) -> Self {
        VarianceScanCache {
            candidates,
            preds: Vec::new(),
            n_trees: 0,
            filled: false,
            flat: false,
        }
    }

    /// Select the refresh engine: `true` flattens the forest into an
    /// SoA arena at each refresh and evaluates cache-blocked batches
    /// ([`FlatForest`]); `false` keeps the per-candidate pointer walk.
    /// Both fill the matrix with identical bits, so rankings and the
    /// cumulative-variance convergence signal are unaffected.
    pub fn with_flat(mut self, flat: bool) -> Self {
        self.flat = flat;
        self
    }

    /// Which engine refreshes run through.
    pub fn is_flat(&self) -> bool {
        self.flat
    }

    /// The candidates currently cached, in row order.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Drop rows whose candidate fails `keep`, preserving the order of
    /// the survivors (mirrors `Vec::retain` on the candidate list).
    pub fn retain(&mut self, mut keep: impl FnMut(&Candidate) -> bool) {
        let t = self.n_trees;
        let mut w = 0;
        for r in 0..self.candidates.len() {
            if keep(&self.candidates[r]) {
                if w != r {
                    self.candidates[w] = self.candidates[r];
                    if self.filled {
                        self.preds.copy_within(r * t..(r + 1) * t, w * t);
                    }
                }
                w += 1;
            }
        }
        self.candidates.truncate(w);
        if self.filled {
            self.preds.truncate(w * t);
        }
    }

    /// Bring the matrix up to date after a model (re)fit. `changed`
    /// lists the trees refitted since the previous refresh (what
    /// [`crate::model::PerfModel::fit_incremental`] returns), each with
    /// the feature-space region its predictions may have moved in. Only
    /// those (row, column) cells are recomputed — a candidate outside a
    /// refitted tree's dirty region kept that tree's prediction
    /// bit-for-bit, so its cached cell is already correct. The update
    /// runs in place (no per-row allocation) over parallel row chunks.
    /// The first refresh — or any refresh where the tree count moved or
    /// every tree changed everywhere — fills the whole matrix.
    ///
    /// Returns how much work the dirty-region tracking saved; the
    /// result feeds observability only and never decisions.
    pub fn refresh(&mut self, model: &PerfModel, changed: &[TreeUpdate]) -> RefreshStats {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let t = model.n_trees();
        let full = !self.filled
            || t != self.n_trees
            || (changed.len() >= t && changed.iter().all(|u| u.dirty.is_whole()));
        let cells_total = self.candidates.len() * t;
        if !full && changed.is_empty() {
            return RefreshStats {
                cells_total,
                cells_recomputed: 0,
                full: false,
            };
        }
        if full {
            self.preds.clear();
            self.preds.resize(self.candidates.len() * t, 0.0);
        }
        let candidates = &self.candidates;
        let recomputed = AtomicUsize::new(0);
        // The flat arena is rebuilt from the current forest on every
        // refresh — an O(nodes) copy, negligible next to the
        // candidates × trees scan it accelerates.
        let flat = self.flat.then(|| FlatForest::from_forest(model.forest()));
        if full {
            if let Some(flat) = &flat {
                // Tree-major cache-blocked fill: parallel over row
                // blocks, each block streamed through the SoA arena.
                self.preds
                    .par_chunks_mut(FLAT_BLOCK_ROWS * t)
                    .enumerate()
                    .for_each(|(b, block)| {
                        let start = b * FLAT_BLOCK_ROWS;
                        let rows: Vec<[f64; 5]> = candidates[start..start + block.len() / t]
                            .iter()
                            .map(|c| model.candidate_features(c.point, c.algorithm))
                            .collect();
                        flat.predict_rows_into(&rows, block);
                    });
            } else {
                self.preds
                    .par_chunks_mut(t)
                    .enumerate()
                    .for_each(|(i, row)| {
                        let c = candidates[i];
                        let features = model.candidate_features(c.point, c.algorithm);
                        for (tree, cell) in row.iter_mut().enumerate() {
                            *cell = model.tree_log_prediction(tree, &features);
                        }
                    });
            }
        } else {
            self.preds
                .par_chunks_mut(t)
                .enumerate()
                .for_each(|(i, row)| {
                    let c = candidates[i];
                    let features = model.candidate_features(c.point, c.algorithm);
                    let mut row_hits = 0usize;
                    for u in changed {
                        if u.dirty.contains(&features) {
                            row[u.tree] = match &flat {
                                Some(f) => f.tree_predict(u.tree, &features),
                                None => model.tree_log_prediction(u.tree, &features),
                            };
                            row_hits += 1;
                        }
                    }
                    if row_hits > 0 {
                        recomputed.fetch_add(row_hits, Ordering::Relaxed);
                    }
                });
        }
        self.n_trees = t;
        self.filled = true;
        RefreshStats {
            cells_total,
            cells_recomputed: if full {
                cells_total
            } else {
                recomputed.into_inner()
            },
            full,
        }
    }

    /// Rank the cached candidates by jackknife variance — bit-identical
    /// to [`rank_by_variance`] over the same candidates and model.
    pub fn ranking(&self) -> VarianceRanking {
        assert!(
            self.filled || self.candidates.is_empty(),
            "refresh the cache before ranking"
        );
        let t = self.n_trees;
        let mut ranked: Vec<(Candidate, f64)> = self
            .candidates
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, jackknife_variance(&self.preds[i * t..(i + 1) * t])))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let cumulative = ranked.iter().map(|&(_, v)| v).sum();
        VarianceRanking { ranked, cumulative }
    }
}

/// What one [`VarianceScanCache::refresh`] actually did — the
/// DirtyRegion bookkeeping's measurable payoff. Purely observational:
/// the cached predictions are identical whether or not anyone looks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefreshStats {
    /// Matrix size at refresh time (candidates × trees).
    pub cells_total: usize,
    /// Cells actually recomputed (equals `cells_total` on a full fill).
    pub cells_recomputed: usize,
    /// Whether the whole matrix was (re)filled.
    pub full: bool,
}

impl RefreshStats {
    /// Cells the dirty-region tracking skipped.
    pub fn cells_reused(&self) -> usize {
        self.cells_total - self.cells_recomputed
    }
}

/// A random non-P2 message size whose closest P2 value is `msg`
/// (the paper's example: for 8, a size in (6, 12) that is not 8).
///
/// Returns `None` when the window holds no non-P2 value (msg < 4).
pub fn nonp2_message_near<R: Rng + ?Sized>(msg: u64, rng: &mut R) -> Option<u64> {
    debug_assert!(msg.is_power_of_two(), "anchor must be a P2 grid size");
    let lo = msg - msg / 4; // 3m/4
    let hi = msg + msg / 2; // 3m/2
    if hi <= lo + 1 {
        return None;
    }
    for _ in 0..64 {
        let v = rng.random_range(lo + 1..hi);
        if !v.is_power_of_two() {
            return Some(v);
        }
    }
    None
}

/// Applies the every-N-th non-P2 substitution across the training run.
#[derive(Debug, Clone)]
pub struct NonP2Injector {
    every: usize,
    selected: usize,
}

impl NonP2Injector {
    /// Substitute every `every`-th selected point (the paper uses 5,
    /// yielding the 80-20 split of Sec. VI-B).
    pub fn new(every: usize) -> Self {
        assert!(every >= 1);
        NonP2Injector { every, selected: 0 }
    }

    /// Account one selection; on every `every`-th call, swap the
    /// candidate's message size for a non-P2 neighbor.
    pub fn apply<R: Rng + ?Sized>(&mut self, candidate: Candidate, rng: &mut R) -> Candidate {
        self.selected += 1;
        if !self.selected.is_multiple_of(self.every) {
            return candidate;
        }
        match nonp2_message_near(candidate.point.msg_bytes, rng) {
            Some(m) => Candidate {
                point: Point::new(candidate.point.nodes, candidate.point.ppn, m),
                algorithm: candidate.algorithm,
            },
            None => candidate,
        }
    }

    /// Number of selections seen so far.
    pub fn selections(&self) -> usize {
        self.selected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TrainingSample;
    use acclaim_dataset::{BenchmarkDatabase, DatasetConfig};
    use acclaim_ml::ForestConfig;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn all_candidates_covers_the_grid_times_algorithms() {
        let space = FeatureSpace::tiny();
        let c = all_candidates(Collective::Bcast, &space);
        assert_eq!(c.len(), space.len() * 3);
        let set: std::collections::HashSet<Candidate> = c.iter().copied().collect();
        assert_eq!(set.len(), c.len());
    }

    #[test]
    fn ranking_is_sorted_and_sums() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let space = FeatureSpace::tiny();
        // Sparse model: a few samples only.
        let samples: Vec<TrainingSample> = space
            .points()
            .into_iter()
            .take(3)
            .map(|p| TrainingSample {
                point: p,
                algorithm: Algorithm::BcastBinomial,
                time_us: db.time(Algorithm::BcastBinomial, p),
            })
            .collect();
        let model = PerfModel::fit(Collective::Bcast, &samples, &ForestConfig::default());
        let cands = all_candidates(Collective::Bcast, &space);
        let r = rank_by_variance(&model, &cands);
        assert_eq!(r.ranked.len(), cands.len());
        assert!(r.ranked.windows(2).all(|w| w[0].1 >= w[1].1), "descending");
        let sum: f64 = r.ranked.iter().map(|&(_, v)| v).sum();
        assert!((sum - r.cumulative).abs() < 1e-12);
        assert!(r.top().is_some());
    }

    #[test]
    fn cached_scan_equals_cold_scan_after_incremental_updates() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let space = FeatureSpace::tiny();
        let cfg = ForestConfig {
            n_trees: 24,
            ..ForestConfig::default()
        };
        let all: Vec<TrainingSample> = space
            .points()
            .into_iter()
            .flat_map(|p| {
                Collective::Bcast.algorithms().iter().map(move |&a| (p, a))
            })
            .map(|(p, a)| TrainingSample {
                point: p,
                algorithm: a,
                time_us: db.time(a, p),
            })
            .collect();
        let cands = all_candidates(Collective::Bcast, &space);
        let mut model = PerfModel::fit(Collective::Bcast, &all[..6], &cfg);
        let mut cache = VarianceScanCache::new(cands.clone());
        cache.refresh(&model, &TreeUpdate::full_refit(cfg.n_trees));
        for upto in 7..=18 {
            let changed = model.fit_incremental(&all[..upto], &cfg);
            cache.refresh(&model, &changed);
            let cached = cache.ranking();
            let cold = rank_by_variance(&model, cache.candidates());
            assert_eq!(cached, cold, "cache diverged at n={upto}");
        }
    }

    #[test]
    fn flat_engine_matches_pointer_engine_bit_for_bit() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let space = FeatureSpace::tiny();
        let cfg = ForestConfig {
            n_trees: 24,
            ..ForestConfig::default()
        };
        let all: Vec<TrainingSample> = space
            .points()
            .into_iter()
            .flat_map(|p| {
                Collective::Bcast.algorithms().iter().map(move |&a| (p, a))
            })
            .map(|(p, a)| TrainingSample {
                point: p,
                algorithm: a,
                time_us: db.time(a, p),
            })
            .collect();
        let cands = all_candidates(Collective::Bcast, &space);
        let mut model = PerfModel::fit(Collective::Bcast, &all[..6], &cfg);
        let mut pointer = VarianceScanCache::new(cands.clone());
        let mut flat = VarianceScanCache::new(cands.clone()).with_flat(true);
        assert!(flat.is_flat() && !pointer.is_flat());
        pointer.refresh(&model, &TreeUpdate::full_refit(cfg.n_trees));
        flat.refresh(&model, &TreeUpdate::full_refit(cfg.n_trees));
        assert_eq!(pointer.ranking(), flat.ranking(), "full fill diverged");
        for upto in 7..=14 {
            let changed = model.fit_incremental(&all[..upto], &cfg);
            let sp = pointer.refresh(&model, &changed);
            let sf = flat.refresh(&model, &changed);
            assert_eq!(sp, sf, "refresh stats diverged at n={upto}");
            assert_eq!(pointer.ranking(), flat.ranking(), "diverged at n={upto}");
        }
        // The flat cold scan agrees with both.
        assert_eq!(
            rank_by_variance(&model, &cands),
            rank_by_variance_flat(&model, &cands)
        );
    }

    #[test]
    fn cache_retain_preserves_order_and_rows() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let space = FeatureSpace::tiny();
        let samples: Vec<TrainingSample> = space
            .points()
            .into_iter()
            .take(4)
            .map(|p| TrainingSample {
                point: p,
                algorithm: Algorithm::BcastBinomial,
                time_us: db.time(Algorithm::BcastBinomial, p),
            })
            .collect();
        let model = PerfModel::fit(Collective::Bcast, &samples, &ForestConfig::default());
        let cands = all_candidates(Collective::Bcast, &space);
        let mut cache = VarianceScanCache::new(cands.clone());
        cache.refresh(&model, &[]);
        // Drop every third candidate; the survivors' ranking must match
        // a cold scan over the same survivors.
        let dropped: Vec<Candidate> = cands.iter().copied().step_by(3).collect();
        cache.retain(|c| !dropped.contains(c));
        let expected: Vec<Candidate> = cands
            .iter()
            .copied()
            .filter(|c| !dropped.contains(c))
            .collect();
        assert_eq!(cache.candidates(), &expected[..]);
        assert_eq!(cache.ranking(), rank_by_variance(&model, &expected));
    }

    #[test]
    fn empty_cache_ranks_empty() {
        let cache = VarianceScanCache::new(Vec::new());
        let r = cache.ranking();
        assert!(r.ranked.is_empty());
        assert_eq!(r.cumulative, 0.0);
        assert!(r.top().is_none());
    }

    #[test]
    fn nonp2_window_matches_paper_example() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = nonp2_message_near(8, &mut rng).unwrap();
            assert!((7..12).contains(&v), "{v} outside (6,12)");
            assert_ne!(v, 8);
        }
    }

    #[test]
    fn nonp2_values_are_never_p2() {
        let mut rng = StdRng::seed_from_u64(4);
        for exp in 3..20 {
            for _ in 0..20 {
                if let Some(v) = nonp2_message_near(1 << exp, &mut rng) {
                    assert!(!v.is_power_of_two(), "{v}");
                }
            }
        }
    }

    #[test]
    fn tiny_anchors_have_no_window() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(nonp2_message_near(1, &mut rng), None);
        assert_eq!(nonp2_message_near(2, &mut rng), None);
    }

    #[test]
    fn injector_substitutes_every_fifth() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut inj = NonP2Injector::new(5);
        let c = Candidate {
            point: Point::new(4, 2, 1_024),
            algorithm: Algorithm::BcastBinomial,
        };
        let mut swapped = 0;
        for i in 1..=20 {
            let out = inj.apply(c, &mut rng);
            if out != c {
                swapped += 1;
                assert_eq!(i % 5, 0, "swap must land on every fifth selection");
                assert!(!out.point.msg_bytes.is_power_of_two());
                assert_eq!(out.point.nodes, c.point.nodes);
                assert_eq!(out.algorithm, c.algorithm);
            }
        }
        assert_eq!(swapped, 4, "20 selections at every=5 give 4 swaps");
        assert_eq!(inj.selections(), 20);
    }
}
