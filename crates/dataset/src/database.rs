//! The precollected benchmark database (paper Sec. II-A).
//!
//! The paper's simulated experiments "look up the corresponding value in
//! the precollected dataset, which includes exhaustive benchmarking
//! results". This module reproduces that framework: every
//! (algorithm, point) sample is produced by the microbenchmark harness
//! over the network simulator and memoized, so autotuner experiments are
//! lookups. Sampling is *query-order independent*: each sample's noise
//! stream is seeded from the sample's identity, so lazily and eagerly
//! built databases agree bit-for-bit.

use crate::space::{FeatureSpace, Point};
use acclaim_collectives::{
    measure_with_obs, Algorithm, Collective, Measurement, MicrobenchConfig,
};
use acclaim_netsim::{Cluster, NoiseModel};
use acclaim_obs::{Counter, Histogram, Obs};
use rand::{rngs::StdRng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

/// Everything that determines a database's contents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// The machine samples run on (allocation = the job's nodes).
    pub cluster: Cluster,
    /// Microbenchmark iteration policy.
    pub bench: MicrobenchConfig,
    /// Measurement noise model.
    pub noise: NoiseModel,
    /// Base seed; per-sample streams derive from it.
    pub seed: u64,
}

impl DatasetConfig {
    /// The 64-node simulated-comparison environment of Sec. II-A.
    pub fn simulation() -> Self {
        DatasetConfig {
            cluster: Cluster::bebop_like(),
            bench: MicrobenchConfig::default(),
            noise: NoiseModel::mild(),
            seed: 0xACC1A1,
        }
    }

    /// A Theta-flavored production environment (Sec. VI-E). Production
    /// tuning runs trim the benchmark iteration counts — especially for
    /// large messages, where a single 2048-rank 1 MB allgather operation
    /// takes seconds — while still measuring each point multiple times
    /// to average out third-layer congestion (Sec. IV-D).
    pub fn production() -> Self {
        DatasetConfig {
            cluster: Cluster::theta_like(),
            bench: MicrobenchConfig {
                warmup: 2,
                iterations_small: 20,
                iterations_large: 5,
                large_threshold: 65_536,
                launch_overhead_us: 200_000.0,
            },
            noise: NoiseModel::production(),
            seed: 0x7E74,
        }
    }

    /// Stable fingerprint of the measurement *environment*: everything
    /// that changes what a benchmark would report except the job's
    /// allocation and the feature space — network parameters, placement
    /// factors, microbenchmark iteration policy, noise model, and the
    /// noise seed. Two databases with equal environment fingerprints
    /// produce bit-identical samples at any common (algorithm, point),
    /// which is what lets the persistent tuning store trust cached
    /// measurements across jobs; any mismatch invalidates the cache.
    pub fn environment_fingerprint(&self) -> u64 {
        let mut f = acclaim_netsim::Fingerprint::new();
        f.write_u64(self.cluster.params_fingerprint());
        f.write_u32(self.bench.warmup);
        f.write_u32(self.bench.iterations_small);
        f.write_u32(self.bench.iterations_large);
        f.write_u64(self.bench.large_threshold);
        f.write_f64(self.bench.launch_overhead_us);
        f.write_u64(self.noise.fingerprint());
        f.write_u64(self.seed);
        f.finish()
    }

    /// A fast, tiny environment for unit tests.
    pub fn tiny() -> Self {
        let cluster = Cluster::bebop_like();
        let alloc = acclaim_netsim::Allocation::contiguous(&cluster.topology, 8);
        DatasetConfig {
            cluster: cluster.with_allocation(alloc),
            bench: MicrobenchConfig::fast(),
            noise: NoiseModel::mild(),
            seed: 7,
        }
    }
}

/// One benchmarked sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Mean collective time (µs).
    pub mean_us: f64,
    /// Wall-clock cost of collecting this sample (µs).
    pub wall_us: f64,
}

impl From<Measurement> for Sample {
    fn from(m: Measurement) -> Sample {
        Sample {
            mean_us: m.mean_us,
            wall_us: m.wall_us,
        }
    }
}

/// Memoizing benchmark database over the simulator.
pub struct BenchmarkDatabase {
    config: DatasetConfig,
    cache: Mutex<HashMap<(Algorithm, Point), Sample>>,
    obs: Obs,
    cache_hits: Counter,
    benchmarks: Counter,
    bench_wall_us: Histogram,
}

impl BenchmarkDatabase {
    /// An empty (lazily filled) database.
    pub fn new(config: DatasetConfig) -> Self {
        assert!(config.cluster.num_nodes() >= 1);
        BenchmarkDatabase {
            config,
            cache: Mutex::new(HashMap::new()),
            obs: Obs::disabled(),
            cache_hits: Counter::default(),
            benchmarks: Counter::default(),
            bench_wall_us: Histogram::default(),
        }
    }

    /// Record `dataset.*` metrics (cache hits, benchmarks executed, a
    /// per-benchmark wall-cost histogram) into `obs`, and trace every
    /// uncached benchmark through the instrumented microbenchmark
    /// harness. Sampling results are unchanged.
    pub fn with_obs(mut self, obs: &Obs) -> Self {
        self.obs = obs.clone();
        self.cache_hits = obs.counter("dataset.cache_hits");
        self.benchmarks = obs.counter("dataset.benchmarks");
        self.bench_wall_us = obs.histogram("dataset.bench_wall_us");
        self
    }

    /// The configuration the database samples under.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Number of memoized samples.
    pub fn len(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// True when nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deterministic per-sample RNG stream.
    fn sample_rng(&self, algorithm: Algorithm, point: Point) -> StdRng {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        algorithm.hash(&mut h);
        point.hash(&mut h);
        StdRng::seed_from_u64(self.config.seed ^ h.finish())
    }

    /// Run the microbenchmark for one (algorithm, point), uncached.
    fn bench(&self, algorithm: Algorithm, point: Point) -> Sample {
        assert!(
            point.nodes <= self.config.cluster.num_nodes(),
            "point needs {} nodes, cluster has {}",
            point.nodes,
            self.config.cluster.num_nodes()
        );
        let sub = self.config.cluster.sub_cluster(0, point.nodes);
        let mut rng = self.sample_rng(algorithm, point);
        self.benchmarks.incr();
        let m = measure_with_obs(
            &sub,
            point.ppn,
            algorithm,
            point.msg_bytes,
            &self.config.bench,
            &self.config.noise,
            &mut rng,
            &self.obs,
        );
        self.bench_wall_us.record(m.wall_us);
        m.into()
    }

    /// Look a sample up, benchmarking and memoizing on first access.
    pub fn sample(&self, algorithm: Algorithm, point: Point) -> Sample {
        if let Some(&s) = self.cache.lock().expect("cache lock").get(&(algorithm, point)) {
            self.cache_hits.incr();
            return s;
        }
        let s = self.bench(algorithm, point);
        self.cache
            .lock()
            .expect("cache lock")
            .insert((algorithm, point), s);
        s
    }

    /// Mean time of `algorithm` at `point` (µs).
    pub fn time(&self, algorithm: Algorithm, point: Point) -> f64 {
        self.sample(algorithm, point).mean_us
    }

    /// Exhaustively benchmark a collective over a grid, in parallel.
    pub fn prefill(&self, collective: Collective, space: &FeatureSpace) {
        self.prefill_points(collective, &space.points());
    }

    /// Exhaustively benchmark a collective over explicit points.
    pub fn prefill_points(&self, collective: Collective, points: &[Point]) {
        let work: Vec<(Algorithm, Point)> = collective
            .algorithms()
            .iter()
            .flat_map(|&a| points.iter().map(move |&p| (a, p)))
            .filter(|key| !self.cache.lock().expect("cache lock").contains_key(key))
            .collect();
        let samples: Vec<((Algorithm, Point), Sample)> = work
            .into_par_iter()
            .map(|(a, p)| ((a, p), self.bench(a, p)))
            .collect();
        let mut cache = self.cache.lock().expect("cache lock");
        for (key, s) in samples {
            cache.insert(key, s);
        }
    }

    /// The truly fastest algorithm at `point` and its time.
    pub fn best(&self, collective: Collective, point: Point) -> (Algorithm, f64) {
        collective
            .algorithms()
            .iter()
            .map(|&a| (a, self.time(a, point)))
            .min_by(|x, y| x.1.total_cmp(&y.1))
            .expect("collectives have at least one algorithm")
    }

    /// Slowdown of selecting `algorithm` at `point` versus the optimum
    /// (1.0 = optimal).
    pub fn slowdown(&self, point: Point, algorithm: Algorithm) -> f64 {
        let (_, best) = self.best(algorithm.collective(), point);
        self.time(algorithm, point) / best
    }

    /// The paper's *average slowdown* of a selection policy over a test
    /// set (Sec. II-C-2).
    pub fn average_slowdown(
        &self,
        collective: Collective,
        points: &[Point],
        mut select: impl FnMut(Point) -> Algorithm,
    ) -> f64 {
        assert!(!points.is_empty(), "empty test set");
        let pairs: Vec<(f64, f64)> = points
            .iter()
            .map(|&p| {
                let a = select(p);
                assert_eq!(a.collective(), collective, "selector crossed collectives");
                (self.time(a, p), self.best(collective, p).1)
            })
            .collect();
        acclaim_ml::average_slowdown(&pairs)
    }

    /// Total wall-clock cost (µs) of collecting the given samples
    /// sequentially — the paper's training-time x-axis.
    pub fn collection_cost(&self, collective: Collective, points: &[(Point, Algorithm)]) -> f64 {
        points
            .iter()
            .map(|&(p, a)| {
                debug_assert_eq!(a.collective(), collective);
                self.sample(a, p).wall_us
            })
            .sum()
    }

    /// Snapshot the memoized samples for persistence (the paper's
    /// "precollected dataset" as an artifact).
    pub fn snapshot(&self) -> DatabaseSnapshot {
        let cache = self.cache.lock().expect("cache lock");
        let mut entries: Vec<SnapshotEntry> = cache
            .iter()
            .map(|(&(algorithm, point), &sample)| SnapshotEntry {
                algorithm,
                point,
                sample,
            })
            .collect();
        entries.sort_by_key(|e| (e.algorithm, e.point));
        DatabaseSnapshot {
            config: self.config.clone(),
            entries,
        }
    }

    /// Rebuild a database from a snapshot; missing points are still
    /// sampled lazily under the snapshot's configuration, so a partial
    /// snapshot behaves identically to the database that produced it.
    pub fn from_snapshot(snapshot: DatabaseSnapshot) -> Self {
        let db = BenchmarkDatabase::new(snapshot.config);
        {
            let mut cache = db.cache.lock().expect("cache lock");
            for e in snapshot.entries {
                cache.insert((e.algorithm, e.point), e.sample);
            }
        }
        db
    }

    /// Save the snapshot as JSON.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string(&self.snapshot())
            .expect("snapshot serialization is infallible");
        std::fs::write(path, json)
    }

    /// Load a database previously written by [`BenchmarkDatabase::save`].
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let snapshot: DatabaseSnapshot = serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(BenchmarkDatabase::from_snapshot(snapshot))
    }
}

/// One persisted sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// Benchmarked algorithm.
    pub algorithm: Algorithm,
    /// Benchmarked point.
    pub point: Point,
    /// The measurement.
    pub sample: Sample,
}

/// A serializable image of a database: its configuration plus every
/// memoized sample, ordered deterministically.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatabaseSnapshot {
    /// The sampling configuration (machine, bench policy, noise, seed).
    pub config: DatasetConfig,
    /// The memoized samples.
    pub entries: Vec<SnapshotEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_db() -> BenchmarkDatabase {
        BenchmarkDatabase::new(DatasetConfig::tiny())
    }

    #[test]
    fn sampling_is_memoized_and_deterministic() {
        let db = tiny_db();
        let p = Point::new(4, 2, 1_024);
        let a = Algorithm::BcastBinomial;
        let s1 = db.sample(a, p);
        let s2 = db.sample(a, p);
        assert_eq!(s1, s2);
        assert_eq!(db.len(), 1);

        // A fresh database gives the same value (identity-seeded noise).
        let db2 = tiny_db();
        assert_eq!(db2.sample(a, p), s1);
    }

    #[test]
    fn lazy_and_eager_databases_agree() {
        let db_lazy = tiny_db();
        let db_eager = tiny_db();
        let space = FeatureSpace::tiny();
        db_eager.prefill(Collective::Bcast, &space);
        let p = Point::new(8, 2, 256);
        assert_eq!(
            db_lazy.sample(Algorithm::BcastBinomial, p),
            db_eager.sample(Algorithm::BcastBinomial, p)
        );
    }

    #[test]
    fn prefill_covers_the_grid() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        db.prefill(Collective::Reduce, &space);
        assert_eq!(
            db.len(),
            space.len() * Collective::Reduce.algorithms().len()
        );
    }

    #[test]
    fn best_is_minimal() {
        let db = tiny_db();
        let p = Point::new(8, 2, 4_096);
        let (best_alg, best_t) = db.best(Collective::Bcast, p);
        for &a in Collective::Bcast.algorithms() {
            assert!(db.time(a, p) >= best_t);
        }
        assert_eq!(db.time(best_alg, p), best_t);
    }

    #[test]
    fn slowdown_of_best_is_one() {
        let db = tiny_db();
        let p = Point::new(4, 1, 256);
        let (best_alg, _) = db.best(Collective::Allreduce, p);
        assert_eq!(db.slowdown(p, best_alg), 1.0);
        for &a in Collective::Allreduce.algorithms() {
            assert!(db.slowdown(p, a) >= 1.0);
        }
    }

    #[test]
    fn average_slowdown_of_oracle_is_one() {
        let db = tiny_db();
        let pts: Vec<Point> = FeatureSpace::tiny().points();
        let s = db.average_slowdown(Collective::Bcast, &pts, |p| {
            db.best(Collective::Bcast, p).0
        });
        assert_eq!(s, 1.0);
    }

    #[test]
    fn average_slowdown_of_worst_exceeds_one() {
        let db = tiny_db();
        let pts: Vec<Point> = FeatureSpace::tiny().points();
        let s = db.average_slowdown(Collective::Bcast, &pts, |p| {
            Collective::Bcast
                .algorithms()
                .iter()
                .copied()
                .max_by(|&a, &b| db.time(a, p).total_cmp(&db.time(b, p)))
                .unwrap()
        });
        assert!(s > 1.0);
    }

    #[test]
    fn collection_cost_sums_wall_times() {
        let db = tiny_db();
        let pts = [
            (Point::new(2, 1, 64), Algorithm::ReduceBinomial),
            (Point::new(4, 1, 64), Algorithm::ReduceScatterGather),
        ];
        let total = db.collection_cost(Collective::Reduce, &pts);
        let by_hand: f64 = pts.iter().map(|&(p, a)| db.sample(a, p).wall_us).sum();
        assert_eq!(total, by_hand);
        assert!(total > 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let db = tiny_db();
        let space = FeatureSpace::tiny();
        db.prefill(Collective::Bcast, &space);
        let dir = std::env::temp_dir().join("acclaim-db-roundtrip.json");
        db.save(&dir).unwrap();
        let loaded = BenchmarkDatabase::load(&dir).unwrap();
        std::fs::remove_file(&dir).ok();
        assert_eq!(loaded.len(), db.len());
        for p in space.points() {
            for &a in Collective::Bcast.algorithms() {
                // JSON float text may differ in the last ULP.
                let (x, y) = (loaded.sample(a, p), db.sample(a, p));
                assert!((x.mean_us - y.mean_us).abs() <= 1e-12 * y.mean_us);
                assert!((x.wall_us - y.wall_us).abs() <= 1e-12 * y.wall_us);
            }
        }
    }

    #[test]
    fn partial_snapshot_fills_in_lazily_and_identically() {
        let db = tiny_db();
        let p_cached = Point::new(2, 1, 64);
        let p_missing = Point::new(4, 2, 256);
        let a = Algorithm::ReduceBinomial;
        let cached = db.sample(a, p_cached);
        let loaded = BenchmarkDatabase::from_snapshot(db.snapshot());
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.sample(a, p_cached), cached);
        // Identity-seeded sampling: the lazily filled value matches
        // what the original database would have produced.
        assert_eq!(loaded.sample(a, p_missing), db.sample(a, p_missing));
    }

    #[test]
    fn snapshot_entries_are_deterministically_ordered() {
        let db = tiny_db();
        db.prefill(Collective::Reduce, &FeatureSpace::tiny());
        let a = db.snapshot();
        let b = db.snapshot();
        assert_eq!(a.entries, b.entries);
        assert!(a.entries.windows(2).all(|w| (w[0].algorithm, w[0].point)
            < (w[1].algorithm, w[1].point)));
    }

    #[test]
    #[should_panic(expected = "cluster has")]
    fn oversized_points_are_rejected() {
        let db = tiny_db(); // 8 nodes
        db.sample(Algorithm::BcastBinomial, Point::new(64, 1, 64));
    }
}
