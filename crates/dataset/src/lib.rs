//! Data-management substrate for the ACCLAiM reproduction.
//!
//! Reproduces the paper's evaluation framework (Sec. II-A): a feature
//! space of (nodes, ppn, message size) points ([`space`]), a
//! precollected exhaustive benchmark database over the simulator
//! ([`database`]), train/test sampling including the non-P2 test sets of
//! Sec. III-B ([`splits`]), and synthetic LLNL-style application traces
//! plus the Fig. 15 profit model ([`traces`]).

pub mod database;
pub mod space;
pub mod splits;
pub mod traces;

pub use database::{BenchmarkDatabase, DatasetConfig, Sample};
pub use space::{FeatureSpace, Point};
