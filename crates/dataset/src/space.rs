//! The autotuner's feature space (Sec. II-C of the paper).
//!
//! Each model input ("feature value") is a triple of number of nodes,
//! processes per node (PPN), and message size. The training grid uses
//! power-of-two values; production jobs also hit non-P2 node counts and
//! message sizes (Sec. III-B), which ACCLAiM samples around P2 anchors.

use serde::{Deserialize, Serialize};

/// One benchmark/query point in the feature space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Point {
    /// Number of nodes.
    pub nodes: u32,
    /// Processes (ranks) per node.
    pub ppn: u32,
    /// Message size in bytes (per-rank contribution for allgather).
    pub msg_bytes: u64,
}

impl Point {
    /// A new point; all coordinates must be positive.
    pub fn new(nodes: u32, ppn: u32, msg_bytes: u64) -> Self {
        assert!(nodes >= 1 && ppn >= 1 && msg_bytes >= 1);
        Point {
            nodes,
            ppn,
            msg_bytes,
        }
    }

    /// Total rank count.
    #[inline]
    pub fn ranks(&self) -> u32 {
        self.nodes * self.ppn
    }

    /// ML feature vector: log2 of each input (fractional for non-P2
    /// values, which lets tree models see the P2 grid and the space
    /// between it on one scale), plus the derived `log2(ranks)` —
    /// algorithm crossovers align with the total rank count, which a
    /// tree cannot synthesize from `log2(nodes)` and `log2(ppn)`
    /// without a staircase of splits.
    pub fn features(&self) -> [f64; 4] {
        [
            (self.msg_bytes as f64).log2(),
            (self.nodes as f64).log2(),
            (self.ppn as f64).log2(),
            (self.ranks() as f64).log2(),
        ]
    }

    /// Feature vector with the algorithm index appended (ACCLAiM's
    /// per-collective model enumerates "algorithm" as a feature, Sec. V).
    pub fn features_with_algorithm(&self, algorithm_index: usize) -> [f64; 5] {
        let f = self.features();
        [f[0], f[1], f[2], f[3], algorithm_index as f64]
    }

    /// True when every coordinate is a power of two.
    pub fn is_p2(&self) -> bool {
        self.nodes.is_power_of_two() && self.ppn.is_power_of_two() && self.msg_bytes.is_power_of_two()
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}n x {}ppn x {}B", self.nodes, self.ppn, self.msg_bytes)
    }
}

/// A rectangular grid of candidate feature values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSpace {
    /// Node-count axis, ascending.
    pub nodes: Vec<u32>,
    /// PPN axis, ascending.
    pub ppns: Vec<u32>,
    /// Message-size axis (bytes), ascending.
    pub msg_sizes: Vec<u64>,
}

impl FeatureSpace {
    /// Build a space from explicit axes (sorted, deduplicated).
    pub fn new(mut nodes: Vec<u32>, mut ppns: Vec<u32>, mut msg_sizes: Vec<u64>) -> Self {
        assert!(!nodes.is_empty() && !ppns.is_empty() && !msg_sizes.is_empty());
        nodes.sort_unstable();
        nodes.dedup();
        ppns.sort_unstable();
        ppns.dedup();
        msg_sizes.sort_unstable();
        msg_sizes.dedup();
        FeatureSpace {
            nodes,
            ppns,
            msg_sizes,
        }
    }

    /// P2 powers in `[lo, hi]`.
    fn powers(lo: u64, hi: u64) -> Vec<u64> {
        let mut v = Vec::new();
        let mut x = lo;
        while x <= hi {
            v.push(x);
            x *= 2;
        }
        v
    }

    /// The paper's simulated-comparison grid (Sec. II-A: up to 64 nodes,
    /// 32 ranks per node, 1 MB messages): 6 x 6 x 18 = 648 points.
    pub fn p2_simulation() -> Self {
        FeatureSpace::new(
            Self::powers(2, 64).iter().map(|&x| x as u32).collect(),
            Self::powers(1, 32).iter().map(|&x| x as u32).collect(),
            Self::powers(8, 1 << 20),
        )
    }

    /// The production grid of Sec. VI-E (up to 128 nodes, 16 PPN, 1 MB).
    pub fn p2_production() -> Self {
        FeatureSpace::new(
            Self::powers(2, 128).iter().map(|&x| x as u32).collect(),
            Self::powers(1, 16).iter().map(|&x| x as u32).collect(),
            Self::powers(8, 1 << 20),
        )
    }

    /// A tiny space for unit tests (2-8 nodes, 1-2 ppn, 64B-4KB).
    pub fn tiny() -> Self {
        FeatureSpace::new(
            vec![2, 4, 8],
            vec![1, 2],
            vec![64, 256, 1_024, 4_096],
        )
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.nodes.len() * self.ppns.len() * self.msg_sizes.len()
    }

    /// True when the grid is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All grid points, message-size-major within nodes within ppn.
    pub fn points(&self) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.len());
        for &ppn in &self.ppns {
            for &nodes in &self.nodes {
                for &m in &self.msg_sizes {
                    out.push(Point::new(nodes, ppn, m));
                }
            }
        }
        out
    }

    /// Largest node count in the grid.
    pub fn max_nodes(&self) -> u32 {
        *self.nodes.last().expect("non-empty axis")
    }

    /// Stable fingerprint of the grid axes (order-independent by
    /// construction: [`FeatureSpace::new`] sorts and deduplicates).
    /// Part of the persistent tuning store's cluster signature.
    pub fn fingerprint(&self) -> u64 {
        let mut f = acclaim_netsim::Fingerprint::new();
        f.write_u64(self.nodes.len() as u64);
        for &n in &self.nodes {
            f.write_u32(n);
        }
        f.write_u64(self.ppns.len() as u64);
        for &p in &self.ppns {
            f.write_u32(p);
        }
        f.write_u64(self.msg_sizes.len() as u64);
        for &m in &self.msg_sizes {
            f.write_u64(m);
        }
        f.finish()
    }

    /// The grid's message-size neighbors around `msg`: the largest grid
    /// size below and smallest above (used for ACCLAiM's non-P2
    /// sampling window and for rule midpoints).
    pub fn msg_neighbors(&self, msg: u64) -> (Option<u64>, Option<u64>) {
        let below = self.msg_sizes.iter().rev().find(|&&s| s < msg).copied();
        let above = self.msg_sizes.iter().find(|&&s| s > msg).copied();
        (below, above)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_are_log2() {
        let p = Point::new(8, 4, 1_024);
        assert_eq!(p.features(), [10.0, 3.0, 2.0, 5.0]);
        assert_eq!(p.features_with_algorithm(2), [10.0, 3.0, 2.0, 5.0, 2.0]);
        assert_eq!(p.ranks(), 32);
    }

    #[test]
    fn nonp2_features_are_fractional() {
        let p = Point::new(7, 4, 1_000);
        let f = p.features();
        assert!(f[0] > 9.9 && f[0] < 10.0);
        assert!(f[1] > 2.8 && f[1] < 2.9);
        assert!(!p.is_p2());
        assert!(Point::new(8, 4, 1_024).is_p2());
    }

    #[test]
    fn simulation_space_matches_paper_dimensions() {
        let s = FeatureSpace::p2_simulation();
        assert_eq!(s.nodes, vec![2, 4, 8, 16, 32, 64]);
        assert_eq!(s.ppns, vec![1, 2, 4, 8, 16, 32]);
        assert_eq!(s.msg_sizes.len(), 18); // 2^3 ..= 2^20
        assert_eq!(s.len(), 6 * 6 * 18);
        assert_eq!(s.points().len(), s.len());
    }

    #[test]
    fn production_space_extends_to_128_nodes() {
        let s = FeatureSpace::p2_production();
        assert_eq!(s.max_nodes(), 128);
        assert_eq!(*s.ppns.last().unwrap(), 16);
    }

    #[test]
    fn points_are_unique() {
        let s = FeatureSpace::tiny();
        let pts = s.points();
        let set: std::collections::HashSet<Point> = pts.iter().copied().collect();
        assert_eq!(set.len(), pts.len());
    }

    #[test]
    fn msg_neighbors() {
        let s = FeatureSpace::tiny(); // 64, 256, 1024, 4096
        assert_eq!(s.msg_neighbors(256), (Some(64), Some(1_024)));
        assert_eq!(s.msg_neighbors(64), (None, Some(256)));
        assert_eq!(s.msg_neighbors(4_096), (Some(1_024), None));
        assert_eq!(s.msg_neighbors(300), (Some(256), Some(1_024)));
    }

    #[test]
    fn axes_are_sorted_and_deduped() {
        let s = FeatureSpace::new(vec![8, 2, 8], vec![2, 1], vec![100, 10, 100]);
        assert_eq!(s.nodes, vec![2, 8]);
        assert_eq!(s.ppns, vec![1, 2]);
        assert_eq!(s.msg_sizes, vec![10, 100]);
    }
}
