//! Train/test sampling utilities, including the non-P2 test sets of the
//! paper's Sec. III-B (Fig. 5): "All P2", "Non-P2 Nodes", and "Non-P2
//! Message Size".

use crate::space::{FeatureSpace, Point};
use rand::seq::SliceRandom;
use rand::Rng;

/// A uniformly random subset covering `fraction` of the grid (at least
/// one point).
pub fn random_fraction<R: Rng + ?Sized>(
    space: &FeatureSpace,
    fraction: f64,
    rng: &mut R,
) -> Vec<Point> {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
    let mut pts = space.points();
    pts.shuffle(rng);
    let keep = ((pts.len() as f64 * fraction).round() as usize).clamp(1, pts.len());
    pts.truncate(keep);
    pts
}

/// The full P2 grid as a test set ("All P2" in Fig. 5).
pub fn p2_test_set(space: &FeatureSpace) -> Vec<Point> {
    space.points()
}

/// A random non-P2 value strictly between `lo` and `hi` (exclusive),
/// avoiding powers of two. Returns `None` when no such value exists.
pub fn random_non_p2_between<R: Rng + ?Sized>(lo: u64, hi: u64, rng: &mut R) -> Option<u64> {
    if hi <= lo + 1 {
        return None;
    }
    // Rejection-sample; the density of powers of two is tiny.
    for _ in 0..64 {
        let v = rng.random_range(lo + 1..hi);
        if !v.is_power_of_two() {
            return Some(v);
        }
    }
    None
}

/// Test set with random non-P2 node counts (P2 ppn and message sizes),
/// mirroring Fig. 5's "Non-P2 Nodes" set.
pub fn nonp2_nodes_test_set<R: Rng + ?Sized>(
    space: &FeatureSpace,
    per_size: usize,
    rng: &mut R,
) -> Vec<Point> {
    let min_nodes = *space.nodes.first().expect("non-empty") as u64;
    let max_nodes = space.max_nodes() as u64;
    let mut out = Vec::new();
    for &ppn in &space.ppns {
        for &m in &space.msg_sizes {
            for _ in 0..per_size {
                if let Some(n) = random_non_p2_between(min_nodes, max_nodes, rng) {
                    out.push(Point::new(n as u32, ppn, m));
                }
            }
        }
    }
    out
}

/// Test set with random non-P2 message sizes (P2 nodes and ppn),
/// mirroring Fig. 5's "Non-P2 Message Size" set.
pub fn nonp2_msg_test_set<R: Rng + ?Sized>(
    space: &FeatureSpace,
    per_grid_point: usize,
    rng: &mut R,
) -> Vec<Point> {
    let min_m = *space.msg_sizes.first().expect("non-empty");
    let max_m = *space.msg_sizes.last().expect("non-empty");
    let mut out = Vec::new();
    for &nodes in &space.nodes {
        for &ppn in &space.ppns {
            for _ in 0..per_grid_point {
                if let Some(m) = random_non_p2_between(min_m, max_m, rng) {
                    out.push(Point::new(nodes, ppn, m));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn random_fraction_sizes() {
        let space = FeatureSpace::tiny();
        let mut r = rng();
        assert_eq!(random_fraction(&space, 1.0, &mut r).len(), space.len());
        assert_eq!(
            random_fraction(&space, 0.5, &mut r).len(),
            space.len() / 2
        );
        // Never empty.
        assert_eq!(random_fraction(&space, 0.0, &mut r).len(), 1);
    }

    #[test]
    fn random_fraction_has_no_duplicates() {
        let space = FeatureSpace::tiny();
        let pts = random_fraction(&space, 0.8, &mut rng());
        let set: std::collections::HashSet<Point> = pts.iter().copied().collect();
        assert_eq!(set.len(), pts.len());
    }

    #[test]
    fn non_p2_between_avoids_powers() {
        let mut r = rng();
        for _ in 0..200 {
            let v = random_non_p2_between(8, 1 << 20, &mut r).unwrap();
            assert!(v > 8 && v < (1 << 20));
            assert!(!v.is_power_of_two(), "{v}");
        }
        assert_eq!(random_non_p2_between(4, 5, &mut r), None);
        // 2..4 contains only {3}, which is non-P2.
        assert_eq!(random_non_p2_between(2, 4, &mut r), Some(3));
    }

    #[test]
    fn nonp2_nodes_points_have_nonp2_node_counts() {
        let space = FeatureSpace::tiny();
        let pts = nonp2_nodes_test_set(&space, 2, &mut rng());
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(!p.nodes.is_power_of_two(), "{p}");
            assert!(p.ppn.is_power_of_two());
            assert!(p.msg_bytes.is_power_of_two());
            assert!(p.nodes > 2 && p.nodes < 8);
        }
    }

    #[test]
    fn nonp2_msg_points_have_nonp2_sizes() {
        let space = FeatureSpace::tiny();
        let pts = nonp2_msg_test_set(&space, 3, &mut rng());
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(!p.msg_bytes.is_power_of_two(), "{p}");
            assert!(p.nodes.is_power_of_two());
            assert!(p.msg_bytes > 64 && p.msg_bytes < 4_096);
        }
    }
}
