//! Synthetic application traces and the application profit model.
//!
//! The paper profiles LLNL production traces (Wang et al.) to show that
//! 15.7% of collective message sizes are non-power-of-two (Fig. 4), and
//! closes by computing the minimum application runtime that recoups
//! ACCLAiM's training time (Fig. 15). The LLNL dataset is not available
//! here, so we generate synthetic per-application message-size
//! distributions calibrated to the paper's reported non-P2 fractions;
//! the figure only consumes that mix.

use crate::database::BenchmarkDatabase;
use crate::space::Point;
use acclaim_collectives::{Algorithm, Collective};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One collective call site in a trace: a message size and how often it
/// is invoked per application iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCall {
    /// Which collective.
    pub collective: Collective,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Invocations per iteration.
    pub count: u32,
}

/// A synthetic application communication trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppTrace {
    /// Application name (mirrors the LLNL trace set).
    pub name: String,
    /// Job scale the trace was "captured" at (nodes).
    pub scale_nodes: u32,
    /// The call sites.
    pub calls: Vec<TraceCall>,
}

impl AppTrace {
    /// Fraction of call invocations whose message size is non-P2.
    pub fn nonp2_fraction(&self) -> f64 {
        let total: u64 = self.calls.iter().map(|c| c.count as u64).sum();
        if total == 0 {
            return 0.0;
        }
        let nonp2: u64 = self
            .calls
            .iter()
            .filter(|c| !c.msg_bytes.is_power_of_two())
            .map(|c| c.count as u64)
            .sum();
        nonp2 as f64 / total as f64
    }

    /// Distinct collectives the application uses (ACCLAiM's required
    /// user input, Sec. V).
    pub fn collectives(&self) -> Vec<Collective> {
        let mut cs: Vec<Collective> = self.calls.iter().map(|c| c.collective).collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    }

    /// Total time (µs) one iteration spends in collectives on `db`'s
    /// machine at (`nodes`, `ppn`), under a selection policy.
    pub fn collective_time_per_iteration(
        &self,
        db: &BenchmarkDatabase,
        nodes: u32,
        ppn: u32,
        mut select: impl FnMut(Collective, Point) -> Algorithm,
    ) -> f64 {
        self.calls
            .iter()
            .map(|c| {
                let p = Point::new(nodes, ppn, c.msg_bytes);
                let a = select(c.collective, p);
                assert_eq!(a.collective(), c.collective);
                db.time(a, p) * c.count as f64
            })
            .sum()
    }
}

/// Per-application trace parameters, calibrated to Fig. 4.
struct AppSpec {
    name: &'static str,
    nonp2_fraction: f64,
    collectives: &'static [Collective],
    call_sites: usize,
    /// Largest trace scale available (the LLNL set has no 1024-node
    /// ParaDis trace).
    max_scale: u32,
}

const APP_SPECS: [AppSpec; 4] = [
    AppSpec {
        name: "AMG",
        nonp2_fraction: 0.26,
        collectives: &[Collective::Allreduce, Collective::Bcast],
        call_sites: 40,
        max_scale: 1_024,
    },
    AppSpec {
        name: "Nekbone",
        nonp2_fraction: 0.06,
        collectives: &[Collective::Allreduce, Collective::Allgather],
        call_sites: 25,
        max_scale: 1_024,
    },
    AppSpec {
        name: "ParaDis",
        nonp2_fraction: 0.17,
        collectives: &[Collective::Allreduce, Collective::Bcast, Collective::Reduce],
        call_sites: 55,
        max_scale: 64,
    },
    AppSpec {
        name: "Laghos",
        nonp2_fraction: 0.14,
        collectives: &[Collective::Allreduce, Collective::Reduce],
        call_sites: 30,
        max_scale: 1_024,
    },
];

/// Names of the traced applications.
pub fn trace_app_names() -> Vec<&'static str> {
    APP_SPECS.iter().map(|s| s.name).collect()
}

/// Generate the synthetic trace of one application at a job scale, or
/// `None` when the LLNL set has no trace at that scale (ParaDis, 1024
/// nodes).
pub fn synthetic_trace(app: &str, scale_nodes: u32, max_msg: u64) -> Option<AppTrace> {
    let spec = APP_SPECS.iter().find(|s| s.name == app)?;
    if scale_nodes > spec.max_scale {
        return None;
    }
    let mut h = std::hash::DefaultHasher::new();
    use std::hash::{Hash, Hasher};
    (app, scale_nodes).hash(&mut h);
    let mut rng = StdRng::seed_from_u64(h.finish());

    // Draw P2 call sites first, then promote sites to non-P2 sizes until
    // the *call-volume-weighted* non-P2 fraction reaches the app's
    // calibrated target (counts vary per site, so a per-site coin flip
    // would have too much variance).
    let mut calls = Vec::with_capacity(spec.call_sites);
    for _ in 0..spec.call_sites {
        let collective = spec.collectives[rng.random_range(0..spec.collectives.len())];
        let exp = rng.random_range(3u32..=max_msg.ilog2());
        calls.push(TraceCall {
            collective,
            msg_bytes: 1u64 << exp,
            count: rng.random_range(1..50),
        });
    }
    let total: u64 = calls.iter().map(|c| c.count as u64).sum();
    let mut nonp2_volume = 0u64;
    for c in &mut calls {
        if (nonp2_volume as f64) < spec.nonp2_fraction * total as f64 {
            // A non-P2 count of an 8-byte datatype near the P2 anchor.
            let base = c.msg_bytes;
            let hi = (base * 2).min(max_msg).max(base + 2);
            c.msg_bytes = crate::splits::random_non_p2_between(base, hi, &mut rng)
                .map(|v| (v / 8).max(1) * 8 + 8) // datatype-aligned but non-P2
                .filter(|v| !v.is_power_of_two())
                .unwrap_or(base + 8);
            nonp2_volume += c.count as u64;
        }
    }
    Some(AppTrace {
        name: app.to_string(),
        scale_nodes,
        calls,
    })
}

/// All available traces at the two scales the paper shows (small = 64
/// nodes, large = 1024 nodes).
pub fn all_traces(max_msg: u64) -> Vec<AppTrace> {
    let mut out = Vec::new();
    for spec in &APP_SPECS {
        for scale in [64u32, 1_024] {
            if let Some(t) = synthetic_trace(spec.name, scale, max_msg) {
                out.push(t);
            }
        }
    }
    out
}

/// Aggregate non-P2 fraction over a set of traces, weighted by call
/// volume (the paper's "15.7% across four applications").
pub fn aggregate_nonp2_fraction(traces: &[AppTrace]) -> f64 {
    let mut total = 0u64;
    let mut nonp2 = 0u64;
    for t in traces {
        for c in &t.calls {
            total += c.count as u64;
            if !c.msg_bytes.is_power_of_two() {
                nonp2 += c.count as u64;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        nonp2 as f64 / total as f64
    }
}

/// Fig. 15's profit model: the minimum application runtime needed to
/// recoup a training cost, given the whole-application speedup tuning
/// delivers.
///
/// A run of length `R` (tuned) would have taken `R * s` untuned, saving
/// `R (s - 1)`; profit requires `R (s - 1) >= T`, i.e. `R >= T/(s-1)`
/// measured in tuned time — equivalently `R_untuned >= T * s/(s-1)`.
/// This returns the untuned runtime bound, matching the paper's framing
/// ("applications must run for only a few hours").
pub fn min_runtime_for_profit(training_time_us: f64, app_speedup: f64) -> f64 {
    assert!(app_speedup > 1.0, "no speedup, no profit");
    training_time_us * app_speedup / (app_speedup - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatasetConfig;

    #[test]
    fn traces_are_deterministic() {
        let a = synthetic_trace("AMG", 64, 1 << 20).unwrap();
        let b = synthetic_trace("AMG", 64, 1 << 20).unwrap();
        assert_eq!(a, b);
        let c = synthetic_trace("AMG", 1_024, 1 << 20).unwrap();
        assert_ne!(a, c, "different scales give different traces");
    }

    #[test]
    fn paradis_has_no_large_scale_trace() {
        assert!(synthetic_trace("ParaDis", 64, 1 << 20).is_some());
        assert!(synthetic_trace("ParaDis", 1_024, 1 << 20).is_none());
        assert_eq!(all_traces(1 << 20).len(), 7); // 4 small + 3 large
    }

    #[test]
    fn per_app_nonp2_fractions_are_near_spec() {
        for spec in &APP_SPECS {
            let t = synthetic_trace(spec.name, 64, 1 << 20).unwrap();
            let f = t.nonp2_fraction();
            assert!(
                (f - spec.nonp2_fraction).abs() < 0.15,
                "{}: {f} vs {}",
                spec.name,
                spec.nonp2_fraction
            );
        }
    }

    #[test]
    fn aggregate_nonp2_is_in_the_paper_ballpark() {
        let f = aggregate_nonp2_fraction(&all_traces(1 << 20));
        assert!((0.08..=0.25).contains(&f), "aggregate non-P2 was {f}");
    }

    #[test]
    fn scale_does_not_move_nonp2_fraction_much() {
        // The paper: "the percentage is nearly the same for both small-
        // and large-scale jobs".
        for name in ["AMG", "Nekbone", "Laghos"] {
            let small = synthetic_trace(name, 64, 1 << 20).unwrap().nonp2_fraction();
            let large = synthetic_trace(name, 1_024, 1 << 20)
                .unwrap()
                .nonp2_fraction();
            assert!((small - large).abs() < 0.2, "{name}: {small} vs {large}");
        }
    }

    #[test]
    fn collectives_listed_once() {
        let t = synthetic_trace("ParaDis", 64, 1 << 20).unwrap();
        let cs = t.collectives();
        let set: std::collections::HashSet<_> = cs.iter().collect();
        assert_eq!(set.len(), cs.len());
        assert!(!cs.is_empty());
    }

    #[test]
    fn collective_time_accumulates_over_calls() {
        let db = BenchmarkDatabase::new(DatasetConfig::tiny());
        let trace = AppTrace {
            name: "toy".into(),
            scale_nodes: 4,
            calls: vec![
                TraceCall {
                    collective: Collective::Bcast,
                    msg_bytes: 1_024,
                    count: 3,
                },
                TraceCall {
                    collective: Collective::Reduce,
                    msg_bytes: 256,
                    count: 1,
                },
            ],
        };
        let t = trace.collective_time_per_iteration(&db, 4, 2, |c, p| db.best(c, p).0);
        let by_hand = 3.0 * db.best(Collective::Bcast, Point::new(4, 2, 1_024)).1
            + db.best(Collective::Reduce, Point::new(4, 2, 256)).1;
        assert!((t - by_hand).abs() < 1e-9);
    }

    #[test]
    fn min_runtime_shrinks_with_speedup() {
        let t = 1e6; // 1 second of training
        let r1 = min_runtime_for_profit(t, 1.01);
        let r5 = min_runtime_for_profit(t, 1.05);
        assert!(r1 > r5);
        assert!((r1 - t * 101.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "no speedup")]
    fn speedup_of_one_never_profits() {
        min_runtime_for_profit(1.0, 1.0);
    }
}
