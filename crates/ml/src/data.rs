//! Row-major feature matrix used by the tree and forest learners.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64` features.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    n_features: usize,
}

impl FeatureMatrix {
    /// An empty matrix of rows with `n_features` columns.
    pub fn new(n_features: usize) -> Self {
        assert!(n_features > 0, "need at least one feature");
        FeatureMatrix {
            data: Vec::new(),
            n_features,
        }
    }

    /// Build from rows; every row must have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let mut m = FeatureMatrix::new(rows[0].len());
        for r in rows {
            m.push_row(r);
        }
        m
    }

    /// Append one row.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.n_features, "row width mismatch");
        self.data.extend_from_slice(row);
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.n_features
    }

    /// True when the matrix holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of columns.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Value at row `i`, column `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n_features + j]
    }

    /// Iterate over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.n_features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut m = FeatureMatrix::new(2);
        assert!(m.is_empty());
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.rows().count(), 2);
    }

    #[test]
    fn from_rows_builds_matrix() {
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.n_features(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut m = FeatureMatrix::new(2);
        m.push_row(&[1.0]);
    }
}
