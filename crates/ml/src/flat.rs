//! Flat structure-of-arrays forest inference (the PR 6 tentpole).
//!
//! [`crate::RandomForest`] stores each tree as a `Vec<Node>` of 40-byte
//! array-of-structs records walked with a data-dependent branch per
//! level: the traversal is one long dependent chain (load node → load
//! feature → compare → pick child), and the `<=` branch is
//! unpredictable by construction — splits are chosen to send about
//! half the rows each way. [`FlatForest`] re-lays the fitted forest
//! out for throughput:
//!
//! * **Packed node arena, children adjacent.** One contiguous arena of
//!   16-byte `{threshold, feature, left}` records (leaf values live in
//!   a parallel column, touched only at flush) plus per-tree root
//!   offsets — a traversal step touches a single cache line. Nodes are
//!   re-laid out in BFS order so each internal node's children occupy
//!   adjacent slots: the right child is always `left + 1`, and a step
//!   becomes the branchless
//!   `next = left + (row[feature] > threshold)`— a compare and an add,
//!   no branch to mispredict.
//! * **Self-looping leaves.** A leaf stores `left = self` and
//!   `threshold = +∞`, so the step function is idempotent at leaves
//!   (`row[f] > +∞` is false; the node steps to itself). Batch loops
//!   can therefore step several rows in lock-step without per-row
//!   "done" branches, checking for completion only every few steps.
//! * **Lane interleaving, tree-major blocks.** Batch evaluation walks
//!   one tree with `LANES` rows in flight: the rows' dependent
//!   chains are independent, so the out-of-order core overlaps their
//!   load-compare latencies instead of serializing one row's walk.
//!   Rows are processed in [`FLAT_BLOCK_ROWS`] chunks with the tree
//!   loop outermost, keeping one tree's columns hot while a block
//!   streams past.
//!
//! Bit-identity contract: for every tree `t` and row `r` of finite
//! (non-NaN) features — all candidate feature vectors are — the flat
//! traversal takes exactly the branch `row[feature] <= threshold`
//! takes (`lo + (x > t)` is its De Morgan complement on non-NaN
//! input), and thresholds and leaf values are copied verbatim, so
//! [`FlatForest::tree_predict`] returns exactly the `f64` that
//! [`crate::RandomForest::tree_predict`] returns. The fused variance
//! scan ([`FlatForest::variance_rows_into`]) then feeds the per-tree
//! predictions of each row, in tree order, through the *same*
//! [`jackknife_variance`] two-pass accumulation as the scalar
//! [`crate::forest_variance_at`] path — so flat variances are
//! bit-identical too, which the proptests below and the workspace
//! `flat_equivalence` suite enforce across seeds.

use crate::forest::RandomForest;
use crate::jackknife::jackknife_variance;
use crate::tree::LEAF;

/// Rows evaluated per cache block. 256 rows × 64 trees × 8 bytes keeps
/// the block's prediction matrix (~128 KiB) plus one tree's columns
/// comfortably inside L2 while amortizing the tree-major loop.
pub const FLAT_BLOCK_ROWS: usize = 256;

/// Rows stepped in lock-step through one tree. Eight independent
/// load-compare chains are enough to cover the ~15-cycle per-step
/// latency on current cores without spilling the cursor array.
const LANES: usize = 8;

/// Steps taken between completion checks in the lock-step walk. Leaves
/// self-loop, so overshooting is idempotent; checking every eight steps
/// trades a handful of wasted leaf-steps for branch-free inner code
/// (measured best among 2/4/8/16 at the bench shape — fully-grown CART
/// trees here have mean leaf depth ~16, so the overshoot stays small
/// relative to the walk).
const STEP_CHUNK: usize = 8;

/// Per-lane feature-buffer width in the batch stepper (a power of two
/// so feature indices can be masked instead of bounds-checked). Rows
/// wider than this fall back to the scalar walk; candidate feature
/// vectors are 5 wide.
const MAX_FEATS: usize = 8;

/// One arena node: 16 bytes, so a traversal step touches a single
/// cache line (leaf values live in a parallel column, read only when a
/// row flushes).
#[derive(Debug, Clone, Copy, PartialEq)]
struct PackedNode {
    /// Split threshold; `+∞` for self-looping leaves.
    threshold: f64,
    /// Split feature (`0` for leaves — unused but always in-bounds).
    feature: u32,
    /// Absolute arena index of the left child; right is `left + 1`;
    /// leaves point to themselves.
    left: u32,
}

/// A fitted forest flattened into one packed node arena.
///
/// Nodes are indexed by arena position; children are stored as
/// absolute arena indices at flatten time so traversal needs no
/// per-tree base offset. Construction is a single O(nodes) BFS copy
/// pass — cheap enough to rebuild after every (incremental) refit.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatForest {
    /// The node arena, every tree back to back in BFS order.
    nodes: Vec<PackedNode>,
    /// Leaf prediction per node (unused for split nodes), kept out of
    /// the hot 16-byte records so stepping never drags it into cache.
    value: Vec<f64>,
    /// Arena index of each tree's root.
    roots: Vec<u32>,
}

impl FlatForest {
    /// Flatten `forest` into a contiguous arena, re-laying each tree
    /// out in BFS order so siblings are adjacent (`right == left + 1`)
    /// and rewriting leaves into the self-looping form.
    pub fn from_forest(forest: &RandomForest) -> Self {
        let total: usize = forest.trees().iter().map(|t| t.node_count()).sum();
        assert!(total < u32::MAX as usize, "forest too large to flatten");
        let mut flat = FlatForest {
            nodes: Vec::with_capacity(total),
            value: Vec::with_capacity(total),
            roots: Vec::with_capacity(forest.n_trees()),
        };
        // The arena is filled through the spare-capacity pointers:
        // flattening runs on every refit, and each slot is written
        // exactly once at a known index, so the push path's capacity
        // check and double length update per node are pure overhead.
        let nodes_out = flat.nodes.spare_capacity_mut().as_mut_ptr();
        let value_out = flat.value.spare_capacity_mut().as_mut_ptr();
        // BFS scratch reused across trees: `order[k]` is the source
        // index of arena slot `base + k`. Because BFS enqueues each
        // internal node's children back to back, a node's arena slot is
        // known the moment it is *enqueued* — so each node is emitted
        // when its queue position is processed, in one pass, with no
        // inverse `source index -> slot` map.
        let mut order: Vec<u32> = Vec::new();
        let mut base = 0usize;
        for tree in forest.trees() {
            let nodes = tree.raw_nodes();
            flat.roots.push(base as u32);
            order.clear();
            order.push(0);
            let mut head = 0;
            while head < order.len() {
                let n = &nodes[order[head] as usize];
                // Leaf or split is a coin flip on fully-grown trees, so
                // this is written branchless: enqueue both children
                // unconditionally, then retract them (and select the
                // self-loop / +inf leaf encoding) by the leaf flag —
                // mispredicting a 50/50 branch per node costs more than
                // two wasted u32 pushes.
                let leaf = (n.feature == LEAF) as usize;
                let left = [(base + order.len()) as u32, (base + head) as u32][leaf];
                order.push(n.left);
                order.push(n.right);
                order.truncate(order.len() - 2 * leaf);
                // SAFETY: `base` is the sum of node counts of earlier
                // trees, `head < order.len() <= node_count(tree)`, and
                // `total` is the sum over all trees, so
                // `base + head < total` — inside the reserved capacity.
                // BFS visits each source node exactly once, so no slot
                // is written twice and, by the time `set_len` runs
                // below, every slot `0..total` has been initialized.
                unsafe {
                    (*nodes_out.add(base + head)).write(PackedNode {
                        threshold: [n.threshold, f64::INFINITY][leaf],
                        feature: [n.feature as u32, 0][leaf],
                        left,
                    });
                    (*value_out.add(base + head)).write(n.value);
                }
                head += 1;
            }
            base += order.len();
        }
        debug_assert_eq!(base, total);
        // SAFETY: the loop above initialized every slot in `0..total`
        // (each tree contributes exactly `node_count` BFS emissions).
        unsafe {
            flat.nodes.set_len(total);
            flat.value.set_len(total);
        }
        flat
    }

    /// Number of trees in the flattened ensemble.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes across all trees.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// One branchless traversal step from arena slot `i`: returns the
    /// child picked by `row[feature] <= threshold` (complemented to
    /// `left + (row[feature] > threshold)`), or `i` itself at a leaf.
    #[inline(always)]
    fn step(&self, i: usize, row: &[f64]) -> usize {
        let n = &self.nodes[i];
        n.left as usize + (row[n.feature as usize] > n.threshold) as usize
    }

    /// Prediction of one tree — bit-identical to
    /// [`RandomForest::tree_predict`] on the source forest.
    #[inline]
    pub fn tree_predict(&self, tree: usize, row: &[f64]) -> f64 {
        let mut i = self.roots[tree] as usize;
        loop {
            let next = self.step(i, row);
            if next == i {
                return self.value[i];
            }
            i = next;
        }
    }

    /// Ensemble prediction: the mean over trees, accumulated in tree
    /// order — bit-identical to [`RandomForest::predict`].
    pub fn predict(&self, row: &[f64]) -> f64 {
        let n = self.n_trees();
        (0..n).map(|t| self.tree_predict(t, row)).sum::<f64>() / n as f64
    }

    /// Per-tree predictions written into `out` (cleared first), in tree
    /// order — bit-identical to [`RandomForest::predict_per_tree`].
    pub fn predict_per_tree(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.n_trees()).map(|t| self.tree_predict(t, row)));
    }

    /// Evaluate every tree at every row, writing the row-major
    /// `rows.len() × n_trees` prediction matrix into `out`
    /// (`out[r * n_trees + t]` = tree `t` at row `r`). The loops are
    /// cache-blocked tree-major: rows are processed in
    /// [`FLAT_BLOCK_ROWS`] chunks, and within a chunk the tree loop is
    /// outermost so one tree's SoA columns stay resident while the
    /// whole block streams past.
    pub fn predict_rows_into<R: AsRef<[f64]>>(&self, rows: &[R], out: &mut [f64]) {
        let t = self.n_trees();
        assert_eq!(out.len(), rows.len() * t, "output matrix shape mismatch");
        let mut fblock = [0.0f64; FLAT_BLOCK_ROWS * MAX_FEATS];
        for (block, out_block) in rows
            .chunks(FLAT_BLOCK_ROWS)
            .zip(out.chunks_mut(FLAT_BLOCK_ROWS * t))
        {
            pack_features(block, &mut fblock);
            for tree in 0..t {
                self.fill_tree_block(tree, block, &fblock, out_block, t);
            }
        }
    }

    /// Walk `block`'s rows through one tree with [`LANES`] rows in
    /// flight, writing each row's prediction at
    /// `out[row * stride + tree]`. Between chunks of [`STEP_CHUNK`]
    /// branchless steps, lanes whose row reached a leaf flush their
    /// result and *refill* with the next pending row — fully-grown
    /// CART trees have a wide leaf-depth spread, and refilling keeps
    /// every lane busy instead of idling the shallow rows until the
    /// deepest of the batch finishes. Leaves self-loop, so a lane
    /// overshoots by at most `STEP_CHUNK - 1` idempotent steps.
    ///
    /// `fblock` is the block's feature matrix as packed by
    /// [`pack_features`] — built once per block by the caller and
    /// shared across all trees, so no per-(row, tree) feature copies
    /// happen anywhere on the hot path.
    fn fill_tree_block<R: AsRef<[f64]>>(
        &self,
        tree: usize,
        block: &[R],
        fblock: &[f64; FLAT_BLOCK_ROWS * MAX_FEATS],
        out: &mut [f64],
        stride: usize,
    ) {
        let root = self.roots[tree] as usize;
        let m = block.len();
        let width = block.first().map_or(0, |r| r.as_ref().len());
        if m < LANES || width > MAX_FEATS {
            // Too few rows to fill the lanes (or rows too wide for the
            // packed feature matrix); the scalar walk is fine.
            for (i, row) in block.iter().enumerate() {
                out[i * stride + tree] = self.tree_predict(tree, row.as_ref());
            }
            return;
        }
        // All loops below have compile-time trip counts ([`LANES`],
        // [`STEP_CHUNK`]) so the stepper unrolls and the lane cursors
        // live in registers. A feature probe is one L1 load from the
        // shared block matrix at an index masked to its (power-of-two)
        // length — no slice pointer chase, no bounds check. A step
        // then costs one 16-byte [`PackedNode`] load, the feature
        // load, and a branchless compare-and-add. `fbase[l]` caches
        // `row_of[l] * MAX_FEATS` so the hot loop does no multiply.
        const FMASK: usize = FLAT_BLOCK_ROWS * MAX_FEATS - 1;
        let nodes = self.nodes.as_slice();
        let mut cur = [root; LANES];
        let mut row_of = [0usize; LANES];
        let mut fbase = [0usize; LANES];
        let mut parked = [false; LANES];
        for l in 0..LANES {
            row_of[l] = l;
            fbase[l] = l * MAX_FEATS;
        }
        let mut next_row = LANES;
        let mut done = 0;
        while done < m {
            for _ in 0..STEP_CHUNK {
                for l in 0..LANES {
                    // SAFETY: every cursor is either a root (pushed by
                    // `from_forest` for each tree) or a child index
                    // written by the flattener, and the flattener only
                    // writes absolute indices inside the arena — leaves
                    // point to themselves, internal nodes to slots it
                    // allocated. The feature index is masked to the
                    // block matrix length. The bit-identity proptests
                    // and the workspace `flat_equivalence` suite cover
                    // this path across seeds.
                    let n = unsafe { nodes.get_unchecked(cur[l]) };
                    // The child address depends only on the node load —
                    // not on the feature compare — so its cache line can
                    // be requested ~a compare-latency early. That hides
                    // part of the L2 hit on the cold leaf fringe (the
                    // per-tree subarena is evicted from L1 between row
                    // blocks). Siblings are adjacent, so one prefetch
                    // covers both children 3 times out of 4.
                    #[cfg(target_arch = "x86_64")]
                    unsafe {
                        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                        _mm_prefetch(nodes.as_ptr().add(n.left as usize) as *const i8, _MM_HINT_T0);
                    }
                    let x = fblock[(fbase[l] + (n.feature as usize & (MAX_FEATS - 1))) & FMASK];
                    cur[l] = n.left as usize + (x > n.threshold) as usize;
                }
            }
            for l in 0..LANES {
                // The flush branch mispredicts when a lane's row
                // arrives at its leaf, roughly once per (row, tree) —
                // but a branchless variant measured *slower*: flushing
                // unconditionally loads `value[cur[l]]` every check,
                // tripling the random traffic into the (deliberately
                // cold) value column.
                //
                // SAFETY: same cursor invariant as the stepper above
                // (`cur[l]` is always a valid arena index, and `value`
                // has one slot per node); the output index is
                // `row_of[l] * stride + tree` with `row_of[l] < m` and
                // `tree < stride`, which is inside `out`'s
                // `m * stride` slice by the caller's shape assert.
                let at_leaf =
                    unsafe { nodes.get_unchecked(cur[l]).left as usize == cur[l] };
                if !parked[l] && at_leaf {
                    unsafe {
                        *out.get_unchecked_mut(row_of[l] * stride + tree) =
                            *self.value.get_unchecked(cur[l]);
                    }
                    done += 1;
                    if next_row < m {
                        row_of[l] = next_row;
                        fbase[l] = next_row * MAX_FEATS;
                        next_row += 1;
                        cur[l] = root;
                    } else {
                        // Out of rows: park the lane on its leaf (the
                        // step is idempotent there) until all finish.
                        parked[l] = true;
                    }
                }
            }
        }
    }

    /// Fused jackknife variance scan: one variance per row, written
    /// into `out`, without materializing a per-tree prediction vector
    /// per candidate. Per-tree predictions live only in a single
    /// block-scoped scratch matrix reused across blocks; each row's
    /// slice of that matrix is fed, in tree order, through the exact
    /// [`jackknife_variance`] two-pass accumulation the scalar
    /// [`crate::forest_variance_at`] path uses — so results are
    /// bit-identical to the pointer-chasing path.
    pub fn variance_rows_into<R: AsRef<[f64]>>(&self, rows: &[R], out: &mut [f64]) {
        let t = self.n_trees();
        assert_eq!(out.len(), rows.len(), "one variance per row");
        let mut scratch = vec![0.0f64; rows.len().min(FLAT_BLOCK_ROWS) * t];
        let mut fblock = [0.0f64; FLAT_BLOCK_ROWS * MAX_FEATS];
        for (block, out_block) in rows
            .chunks(FLAT_BLOCK_ROWS)
            .zip(out.chunks_mut(FLAT_BLOCK_ROWS))
        {
            pack_features(block, &mut fblock);
            let buf = &mut scratch[..block.len() * t];
            for tree in 0..t {
                self.fill_tree_block(tree, block, &fblock, buf, t);
            }
            for (i, v) in out_block.iter_mut().enumerate() {
                *v = jackknife_variance(&buf[i * t..(i + 1) * t]);
            }
        }
    }
}

/// Pack one row block's features into the shared row-major matrix the
/// lane stepper probes: row `i`'s features start at `i * MAX_FEATS`.
/// Copied once per block and reused by every tree — previously each
/// (row, tree) lane refill re-copied the row, which at the ablation
/// shape (1944 rows × 64 trees) moved ~5 MB of features per scan.
/// Rows wider than [`MAX_FEATS`] are left unpacked; those blocks take
/// the scalar fallback and never read the matrix.
fn pack_features<R: AsRef<[f64]>>(block: &[R], fblock: &mut [f64; FLAT_BLOCK_ROWS * MAX_FEATS]) {
    let width = block.first().map_or(0, |r| r.as_ref().len());
    if width > MAX_FEATS {
        return;
    }
    for (i, row) in block.iter().enumerate() {
        fblock[i * MAX_FEATS..i * MAX_FEATS + width].copy_from_slice(row.as_ref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::FeatureMatrix;
    use crate::forest::ForestConfig;
    use crate::jackknife::forest_variance_at;
    use proptest::prelude::*;

    /// A deterministic synthetic dataset: mildly nonlinear response on
    /// 3 features so trees actually split.
    fn dataset(n: usize, seed: u64) -> (FeatureMatrix, Vec<f64>) {
        let mut x = FeatureMatrix::new(3);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
            let a = (h & 0xffff) as f64 / 65536.0;
            let b = ((h >> 16) & 0xffff) as f64 / 65536.0;
            let c = ((h >> 32) & 0xffff) as f64 / 65536.0;
            x.push_row(&[a, b, c]);
            y.push(a * 3.0 + b * b - (c * 6.0).sin() + a * b);
        }
        (x, y)
    }

    fn forest(seed: u64, n: usize, trees: usize) -> (RandomForest, FeatureMatrix) {
        let (x, y) = dataset(n, seed);
        let config = ForestConfig {
            seed,
            n_trees: trees,
            ..ForestConfig::default()
        };
        let f = RandomForest::fit(&config, &x, &y);
        (f, x)
    }

    #[test]
    fn flatten_preserves_shape() {
        let (f, _) = forest(0, 120, 8);
        let flat = FlatForest::from_forest(&f);
        assert_eq!(flat.n_trees(), f.n_trees());
        let total: usize = f.trees().iter().map(|t| t.node_count()).sum();
        assert_eq!(flat.node_count(), total);
    }

    #[test]
    fn bit_identity_across_seeds_0_to_4() {
        for seed in 0..5u64 {
            let (f, x) = forest(seed, 160, 16);
            let flat = FlatForest::from_forest(&f);
            let mut scratch = Vec::new();
            let mut flat_scratch = Vec::new();
            for r in 0..x.len() {
                let row = x.row(r);
                assert_eq!(f.predict(row).to_bits(), flat.predict(row).to_bits());
                for t in 0..f.n_trees() {
                    assert_eq!(
                        f.tree_predict(t, row).to_bits(),
                        flat.tree_predict(t, row).to_bits()
                    );
                }
                f.predict_per_tree(row, &mut scratch);
                flat.predict_per_tree(row, &mut flat_scratch);
                assert_eq!(scratch, flat_scratch);
            }
        }
    }

    #[test]
    fn fused_variance_matches_scalar_path_bitwise() {
        for seed in 0..5u64 {
            let (f, x) = forest(seed, 300, 24);
            let flat = FlatForest::from_forest(&f);
            let rows: Vec<Vec<f64>> = (0..x.len()).map(|r| x.row(r).to_vec()).collect();
            let mut fused = vec![0.0; rows.len()];
            flat.variance_rows_into(&rows, &mut fused);
            let mut scratch = Vec::new();
            for (r, row) in rows.iter().enumerate() {
                let scalar = forest_variance_at(&f, row, &mut scratch);
                assert_eq!(
                    scalar.to_bits(),
                    fused[r].to_bits(),
                    "variance diverged at row {r} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn batch_fill_matches_per_tree_predictions() {
        // More rows than one block, to exercise the chunking seams.
        let (f, x) = forest(7, 600, 8);
        let flat = FlatForest::from_forest(&f);
        let rows: Vec<Vec<f64>> = (0..x.len()).map(|r| x.row(r).to_vec()).collect();
        let t = f.n_trees();
        let mut out = vec![0.0; rows.len() * t];
        flat.predict_rows_into(&rows, &mut out);
        for (r, row) in rows.iter().enumerate() {
            for tree in 0..t {
                assert_eq!(
                    out[r * t + tree].to_bits(),
                    f.tree_predict(tree, row).to_bits()
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Arbitrary query rows (not just training rows) predict
        /// bit-identically through the flat arena.
        #[test]
        fn random_rows_bit_identical(
            seed in 0u64..5,
            rows in proptest::collection::vec(
                proptest::collection::vec(-2.0f64..2.0, 3..4), 1..40),
        ) {
            let (f, _) = forest(seed, 200, 12);
            let flat = FlatForest::from_forest(&f);
            let mut vars = vec![0.0; rows.len()];
            flat.variance_rows_into(&rows, &mut vars);
            let mut scratch = Vec::new();
            for (i, row) in rows.iter().enumerate() {
                prop_assert_eq!(f.predict(row).to_bits(), flat.predict(row).to_bits());
                let scalar = forest_variance_at(&f, row, &mut scratch);
                prop_assert_eq!(scalar.to_bits(), vars[i].to_bits());
            }
        }
    }
}
