//! Bagged random-forest regressor with per-tree prediction access.
//!
//! The paper's autotuners model collective performance with random
//! forests (one per collective, algorithm as a feature — Sec. V).
//! ACCLAiM's contributions need *ensemble internals*: the jackknife
//! variance of Sec. IV-A is computed over the individual trees'
//! predictions, which scikit-learn exposes and we therefore expose too.

use crate::data::FeatureMatrix;
use crate::tree::{DecisionTree, DirtyRegion, TreeConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How each tree's bootstrap resample is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BootstrapScheme {
    /// Classic resampling: `n` draws with replacement from an RNG whose
    /// stream depends on `n`. Appending one sample reshuffles every
    /// tree's resample, so refits are always from scratch.
    Resample,
    /// Online bagging (Oza & Russell): each `(tree, sample)` pair gets a
    /// Poisson(1)-distributed multiplicity derived by hashing
    /// `(seed, tree, sample)`. Membership is independent of the dataset
    /// size, so appending a sample leaves a tree's resample untouched
    /// unless the new sample actually lands in it (probability
    /// `1 − e⁻¹ ≈ 63%`) — the property [`RandomForest::refit_incremental`]
    /// exploits.
    #[default]
    Hashed,
}

/// Hyperparameters of the forest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Ensemble size.
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Draw bootstrap samples (with replacement) per tree.
    pub bootstrap: bool,
    /// How bootstrap resamples are derived (ignored when `bootstrap` is
    /// off).
    #[serde(default)]
    pub scheme: BootstrapScheme,
    /// Base RNG seed; tree `i` derives its own stream from it.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 64,
            tree: TreeConfig::default(),
            bootstrap: true,
            scheme: BootstrapScheme::default(),
            seed: 0x5eed,
        }
    }
}

impl ForestConfig {
    /// scikit-learn-flavored defaults. Modern scikit-learn regression
    /// forests consider *all* features at each split (`max_features =
    /// 1.0`) and rely on bootstrap sampling for ensemble diversity;
    /// with the autotuner's 3-4 features, per-split subsampling would
    /// cost far more accuracy than it buys in decorrelation.
    pub fn for_n_features(n_features: usize) -> Self {
        let _ = n_features;
        ForestConfig {
            tree: TreeConfig {
                max_features: None,
                ..TreeConfig::default()
            },
            ..ForestConfig::default()
        }
    }
}

/// Deterministic Poisson(1) multiplicity of `sample` in `tree`'s
/// resample under [`BootstrapScheme::Hashed`]. Independent of how many
/// samples exist — the invariant incremental refits rely on.
pub fn bootstrap_weight(seed: u64, tree: usize, sample: usize) -> usize {
    let mut h = seed
        ^ (tree as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (sample as u64).wrapping_mul(0xd1b5_4a32_d192_ed03);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    // Invert the Poisson(1) CDF on a uniform draw from the hash.
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    let mut k = 0usize;
    let mut pmf = (-1.0f64).exp();
    let mut cdf = pmf;
    while u > cdf && k < 16 {
        k += 1;
        pmf /= k as f64;
        cdf += pmf;
    }
    k
}

/// One tree's change record from [`RandomForest::refit_incremental`]:
/// which tree was rebuilt, and the feature-space region in which its
/// predictions may differ from before. Outside `dirty` the tree
/// predicts bit-identically, so a per-tree prediction cache only needs
/// to re-evaluate rows inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeUpdate {
    /// Index of the rebuilt tree.
    pub tree: usize,
    /// Where its predictions may have changed.
    pub dirty: DirtyRegion,
}

impl TreeUpdate {
    /// The update set of a from-scratch fit: every tree changed,
    /// everywhere.
    pub fn full_refit(n_trees: usize) -> Vec<TreeUpdate> {
        (0..n_trees)
            .map(|tree| TreeUpdate {
                tree,
                dirty: DirtyRegion::whole(),
            })
            .collect()
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    /// How many samples the forest was (re)fitted on; the watermark
    /// `refit_incremental` appends from.
    n_samples: usize,
}

impl RandomForest {
    /// Fit `config.n_trees` trees in parallel (rayon).
    pub fn fit(config: &ForestConfig, x: &FeatureMatrix, y: &[f64]) -> Self {
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        assert!(!x.is_empty(), "cannot fit a forest on zero samples");
        assert!(config.n_trees > 0, "need at least one tree");
        let n = x.len();
        let trees: Vec<DecisionTree> = (0..config.n_trees)
            .into_par_iter()
            .map(|t| Self::fit_tree(config, x, y, t))
            .collect();
        RandomForest { trees, n_samples: n }
    }

    /// The seed tree `t` builds with (per-node streams derive from it).
    fn tree_seed(config: &ForestConfig, t: usize) -> u64 {
        config.seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Tree `t`'s resample under the hashed scheme, in canonical
    /// ascending order (copies adjacent). Empty when no sample hashes in.
    fn hashed_indices(config: &ForestConfig, t: usize, n: usize) -> Vec<usize> {
        (0..n)
            .flat_map(|i| std::iter::repeat_n(i, bootstrap_weight(config.seed, t, i)))
            .collect()
    }

    /// Fit tree `t` from scratch on the first `x.len()` samples.
    fn fit_tree(config: &ForestConfig, x: &FeatureMatrix, y: &[f64], t: usize) -> DecisionTree {
        let n = x.len();
        if !config.bootstrap {
            let indices: Vec<usize> = (0..n).collect();
            return DecisionTree::fit_seeded(&config.tree, x, y, &indices, Self::tree_seed(config, t));
        }
        match config.scheme {
            BootstrapScheme::Resample => {
                // Independent, deterministic stream per tree.
                let mut rng = StdRng::seed_from_u64(Self::tree_seed(config, t));
                let indices: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
                DecisionTree::fit(&config.tree, x, y, &indices, &mut rng)
            }
            BootstrapScheme::Hashed => {
                let mut indices = Self::hashed_indices(config, t, n);
                if indices.is_empty() {
                    // Every sample hashed out (likely only for tiny n):
                    // fall back to training on everything.
                    indices = (0..n).collect();
                }
                DecisionTree::fit_seeded(&config.tree, x, y, &indices, Self::tree_seed(config, t))
            }
        }
    }

    /// Refit after rows were appended to `(x, y)` (all rows before the
    /// previous fit's watermark must be unchanged). Only trees whose
    /// hashed resample actually draws one of the new samples are
    /// rebuilt — and those rebuilds recompute splits only along each new
    /// sample's path (see [`DecisionTree::refit_appended`]). The result
    /// is bit-for-bit identical to `RandomForest::fit` on the full data.
    ///
    /// Returns a [`TreeUpdate`] per rebuilt tree — its index plus the
    /// feature-space region its predictions may have changed in — so
    /// prediction caches can invalidate just those (column, row) cells.
    /// With [`BootstrapScheme::Resample`] (or when nothing was fitted
    /// yet) every resample depends on `n`, so this degrades to a full
    /// refit reporting every tree changed everywhere.
    pub fn refit_incremental(
        &mut self,
        config: &ForestConfig,
        x: &FeatureMatrix,
        y: &[f64],
    ) -> Vec<TreeUpdate> {
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        assert_eq!(config.n_trees, self.trees.len(), "config/forest tree count mismatch");
        assert!(
            x.len() >= self.n_samples,
            "fewer samples ({}) than the previous fit ({})",
            x.len(),
            self.n_samples
        );
        let old_n = self.n_samples;
        let new_n = x.len();
        if new_n == old_n {
            return Vec::new();
        }
        if old_n == 0 || (config.bootstrap && config.scheme == BootstrapScheme::Resample) {
            *self = Self::fit(config, x, y);
            return TreeUpdate::full_refit(self.trees.len());
        }

        let refitted: Vec<Option<(DecisionTree, DirtyRegion)>> = (0..self.trees.len())
            .into_par_iter()
            .map(|t| self.refit_tree(config, x, y, t, old_n, new_n))
            .collect();
        let mut changed = Vec::new();
        for (t, refit) in refitted.into_iter().enumerate() {
            if let Some((tree, dirty)) = refit {
                self.trees[t] = tree;
                changed.push(TreeUpdate { tree: t, dirty });
            }
        }
        self.n_samples = new_n;
        changed
    }

    /// Apply samples `old_n..new_n` to tree `t`, one at a time; `None`
    /// when the tree's resample never draws any of them. The returned
    /// [`DirtyRegion`] is the union over appends, so it bounds where the
    /// final tree may disagree with the pre-refit tree.
    fn refit_tree(
        &self,
        config: &ForestConfig,
        x: &FeatureMatrix,
        y: &[f64],
        t: usize,
        old_n: usize,
        new_n: usize,
    ) -> Option<(DecisionTree, DirtyRegion)> {
        let seed = Self::tree_seed(config, t);
        let mut multiset = if config.bootstrap {
            Self::hashed_indices(config, t, old_n)
        } else {
            (0..old_n).collect()
        };
        // A tree whose resample was empty was trained on ALL samples, so
        // it must track every append until a sample finally hashes in.
        let mut fallback = multiset.is_empty();
        let mut tree: Option<DecisionTree> = None;
        let mut dirty = DirtyRegion::none();
        for s in old_n..new_n {
            let w = if config.bootstrap {
                bootstrap_weight(config.seed, t, s)
            } else {
                1
            };
            if fallback {
                if w > 0 {
                    multiset.extend(std::iter::repeat_n(s, w));
                    fallback = false;
                    tree = Some(DecisionTree::fit_seeded(&config.tree, x, y, &multiset, seed));
                } else {
                    let all: Vec<usize> = (0..=s).collect();
                    tree = Some(DecisionTree::fit_seeded(&config.tree, x, y, &all, seed));
                }
                dirty = DirtyRegion::whole();
            } else if w > 0 {
                multiset.extend(std::iter::repeat_n(s, w));
                let mut work = multiset.clone();
                let base = tree.as_ref().unwrap_or(&self.trees[t]);
                let (refit, region) = base.refit_appended(&config.tree, x, y, &mut work, seed, s);
                tree = Some(refit);
                dirty.merge(region);
            }
        }
        tree.map(|tree| (tree, dirty))
    }

    /// Ensemble prediction: the mean over trees.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Per-tree predictions, written into `out` (cleared first). This is
    /// the input to the jackknife variance of Sec. IV-A.
    pub fn predict_per_tree(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.trees.iter().map(|t| t.predict(row)));
    }

    /// Prediction of one tree (for incremental per-tree caches that
    /// update only refitted columns).
    pub fn tree_predict(&self, tree: usize, row: &[f64]) -> f64 {
        self.trees[tree].predict(row)
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of samples the forest was last (re)fitted on.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// The fitted trees, for crate-internal consumers (the SoA
    /// [`crate::FlatForest`] flattener).
    pub(crate) fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset(n: usize) -> (FeatureMatrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let y: Vec<f64> = (0..n).map(|i| 3.0 * i as f64 + (i % 5) as f64).collect();
        (FeatureMatrix::from_rows(&rows), y)
    }

    #[test]
    fn forest_fits_and_predicts_reasonably() {
        let (x, y) = linear_dataset(100);
        let f = RandomForest::fit(&ForestConfig::default(), &x, &y);
        // In-range point: within 10% of truth.
        let p = f.predict(&[50.0, 0.0]);
        assert!((p - 150.0).abs() < 15.0, "p={p}");
    }

    #[test]
    fn fitting_is_deterministic_for_a_seed() {
        let (x, y) = linear_dataset(60);
        let a = RandomForest::fit(&ForestConfig::default(), &x, &y);
        let b = RandomForest::fit(&ForestConfig::default(), &x, &y);
        assert_eq!(a, b, "same seed must give identical forests");
        let c = RandomForest::fit(
            &ForestConfig {
                seed: 1234,
                ..ForestConfig::default()
            },
            &x,
            &y,
        );
        assert_ne!(a, c, "different seed must change the ensemble");
    }

    #[test]
    fn per_tree_predictions_average_to_ensemble() {
        let (x, y) = linear_dataset(80);
        let f = RandomForest::fit(&ForestConfig::default(), &x, &y);
        let row = [33.0, 3.0];
        let mut per = Vec::new();
        f.predict_per_tree(&row, &mut per);
        assert_eq!(per.len(), f.n_trees());
        let mean = per.iter().sum::<f64>() / per.len() as f64;
        assert!((mean - f.predict(&row)).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_trees_differ() {
        let (x, y) = linear_dataset(50);
        let f = RandomForest::fit(&ForestConfig::default(), &x, &y);
        let mut per = Vec::new();
        f.predict_per_tree(&[25.5, 2.0], &mut per);
        let first = per[0];
        assert!(
            per.iter().any(|&p| (p - first).abs() > 1e-12),
            "bootstrap must diversify trees"
        );
    }

    #[test]
    fn without_bootstrap_and_full_features_trees_agree() {
        let (x, y) = linear_dataset(50);
        let cfg = ForestConfig {
            bootstrap: false,
            n_trees: 8,
            ..ForestConfig::default()
        };
        let f = RandomForest::fit(&cfg, &x, &y);
        let mut per = Vec::new();
        f.predict_per_tree(&[25.0, 0.0], &mut per);
        assert!(
            per.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12),
            "identical training data + all features => identical trees"
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn predictions_stay_within_target_range(
                ys in proptest::collection::vec(-500.0f64..500.0, 4..40),
            ) {
                let rows: Vec<Vec<f64>> =
                    (0..ys.len()).map(|i| vec![i as f64, (i % 3) as f64]).collect();
                let x = FeatureMatrix::from_rows(&rows);
                let cfg = ForestConfig { n_trees: 12, ..ForestConfig::default() };
                let f = RandomForest::fit(&cfg, &x, &ys);
                let (lo, hi) = ys
                    .iter()
                    .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
                for row in x.rows() {
                    let p = f.predict(row);
                    prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
                }
                // Extrapolation queries are also bounded by the ensemble.
                let p = f.predict(&[1e6, -1e6]);
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            }

            #[test]
            fn per_tree_mean_equals_ensemble_everywhere(
                ys in proptest::collection::vec(-100.0f64..100.0, 4..30),
                qx in -50.0f64..100.0,
            ) {
                let rows: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
                let x = FeatureMatrix::from_rows(&rows);
                let cfg = ForestConfig { n_trees: 8, ..ForestConfig::default() };
                let f = RandomForest::fit(&cfg, &x, &ys);
                let mut per = Vec::new();
                f.predict_per_tree(&[qx], &mut per);
                let mean = per.iter().sum::<f64>() / per.len() as f64;
                prop_assert!((mean - f.predict(&[qx])).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn hashed_weights_are_poisson_one_ish() {
        // Mean multiplicity ~1 and ~37% zeros over a large draw.
        let n = 20_000;
        let total: usize = (0..n).map(|i| bootstrap_weight(0x5eed, 0, i)).sum();
        let zeros = (0..n).filter(|&i| bootstrap_weight(0x5eed, 0, i) == 0).count();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean weight {mean}");
        let zero_frac = zeros as f64 / n as f64;
        assert!(
            (zero_frac - (-1.0f64).exp()).abs() < 0.02,
            "zero fraction {zero_frac}"
        );
    }

    #[test]
    fn incremental_refit_matches_scratch_fit_exactly() {
        let (x_full, y_full) = linear_dataset(80);
        let cfg = ForestConfig {
            n_trees: 24,
            ..ForestConfig::default()
        };
        // Fit on a prefix, then append the rest in a few batches.
        let prefix = 40;
        let x0 = FeatureMatrix::from_rows(
            &x_full.rows().take(prefix).map(<[f64]>::to_vec).collect::<Vec<_>>(),
        );
        let mut forest = RandomForest::fit(&cfg, &x0, &y_full[..prefix]);
        for upto in [41, 50, 64, 80] {
            let x = FeatureMatrix::from_rows(
                &x_full.rows().take(upto).map(<[f64]>::to_vec).collect::<Vec<_>>(),
            );
            let changed = forest.refit_incremental(&cfg, &x, &y_full[..upto]);
            let scratch = RandomForest::fit(&cfg, &x, &y_full[..upto]);
            assert_eq!(forest, scratch, "divergence at n={upto}");
            if upto == 41 {
                // Single append: ~e^-1 of trees draw weight 0 and must
                // be skipped. (Batch appends touch nearly every tree.)
                assert!(
                    changed.len() < cfg.n_trees,
                    "some trees should be untouched by a single append"
                );
            }
        }
    }

    #[test]
    fn incremental_refit_reports_exactly_the_changed_trees() {
        let (x_full, y_full) = linear_dataset(50);
        let cfg = ForestConfig {
            n_trees: 32,
            ..ForestConfig::default()
        };
        let x0 = FeatureMatrix::from_rows(
            &x_full.rows().take(49).map(<[f64]>::to_vec).collect::<Vec<_>>(),
        );
        let mut forest = RandomForest::fit(&cfg, &x0, &y_full[..49]);
        let before = forest.clone();
        let changed = forest.refit_incremental(&cfg, &x_full, &y_full);
        // Reported set == trees whose hashed weight of sample 49 is > 0.
        let expected: Vec<usize> = (0..cfg.n_trees)
            .filter(|&t| bootstrap_weight(cfg.seed, t, 49) > 0)
            .collect();
        let reported: Vec<usize> = changed.iter().map(|u| u.tree).collect();
        assert_eq!(reported, expected);
        for t in 0..cfg.n_trees {
            let same = forest.trees[t] == before.trees[t];
            assert_eq!(
                same,
                !reported.contains(&t),
                "tree {t} change status disagrees with report"
            );
        }
    }

    #[test]
    fn dirty_regions_bound_prediction_changes() {
        let (x_full, y_full) = linear_dataset(60);
        let cfg = ForestConfig {
            n_trees: 24,
            ..ForestConfig::default()
        };
        let x0 = FeatureMatrix::from_rows(
            &x_full.rows().take(55).map(<[f64]>::to_vec).collect::<Vec<_>>(),
        );
        let mut forest = RandomForest::fit(&cfg, &x0, &y_full[..55]);
        let before = forest.clone();
        let changed = forest.refit_incremental(&cfg, &x_full, &y_full);
        assert!(!changed.is_empty());
        // Probe a dense grid (including off-training coordinates): where
        // a tree's dirty region says "clean", its prediction must be
        // bit-identical to the pre-refit tree's.
        for fx in -10..140 {
            for f2 in -2..12 {
                let row = [fx as f64 * 0.5, f2 as f64 * 0.5];
                for u in &changed {
                    if !u.dirty.contains(&row) {
                        assert_eq!(
                            forest.tree_predict(u.tree, &row),
                            before.tree_predict(u.tree, &row),
                            "tree {} changed outside its dirty region at {row:?}",
                            u.tree
                        );
                    }
                }
            }
        }
        // And the regions must not be trivially "whole" for a single
        // append into an already-trained forest.
        assert!(
            changed.iter().any(|u| !u.dirty.is_whole()),
            "single-path refits should report bounded dirty regions"
        );
    }

    #[test]
    fn incremental_refit_without_bootstrap_matches_scratch() {
        let (x_full, y_full) = linear_dataset(30);
        let cfg = ForestConfig {
            n_trees: 4,
            bootstrap: false,
            ..ForestConfig::default()
        };
        let x0 = FeatureMatrix::from_rows(
            &x_full.rows().take(20).map(<[f64]>::to_vec).collect::<Vec<_>>(),
        );
        let mut forest = RandomForest::fit(&cfg, &x0, &y_full[..20]);
        let changed = forest.refit_incremental(&cfg, &x_full, &y_full);
        let reported: Vec<usize> = changed.iter().map(|u| u.tree).collect();
        assert_eq!(reported, (0..4).collect::<Vec<_>>(), "all trees see all samples");
        assert_eq!(forest, RandomForest::fit(&cfg, &x_full, &y_full));
    }

    #[test]
    fn resample_scheme_degrades_to_full_refit() {
        let (x_full, y_full) = linear_dataset(30);
        let cfg = ForestConfig {
            n_trees: 8,
            scheme: BootstrapScheme::Resample,
            ..ForestConfig::default()
        };
        let x0 = FeatureMatrix::from_rows(
            &x_full.rows().take(20).map(<[f64]>::to_vec).collect::<Vec<_>>(),
        );
        let mut forest = RandomForest::fit(&cfg, &x0, &y_full[..20]);
        let changed = forest.refit_incremental(&cfg, &x_full, &y_full);
        assert_eq!(changed.len(), 8, "resample scheme cannot refit in place");
        assert_eq!(forest, RandomForest::fit(&cfg, &x_full, &y_full));
    }

    #[test]
    fn noop_refit_reports_no_changes() {
        let (x, y) = linear_dataset(25);
        let cfg = ForestConfig::default();
        let mut forest = RandomForest::fit(&cfg, &x, &y);
        let before = forest.clone();
        assert!(forest.refit_incremental(&cfg, &x, &y).is_empty());
        assert_eq!(forest, before);
    }

    #[test]
    fn feature_subsampling_diversifies_trees() {
        let (x, y) = linear_dataset(50);
        let cfg = ForestConfig {
            bootstrap: false,
            n_trees: 16,
            tree: TreeConfig {
                max_features: Some(1),
                max_depth: 3,
                ..TreeConfig::default()
            },
            ..ForestConfig::default()
        };
        let f = RandomForest::fit(&cfg, &x, &y);
        let mut per = Vec::new();
        f.predict_per_tree(&[25.5, 2.5], &mut per);
        let first = per[0];
        assert!(per.iter().any(|&p| (p - first).abs() > 1e-12));
    }
}
