//! Bagged random-forest regressor with per-tree prediction access.
//!
//! The paper's autotuners model collective performance with random
//! forests (one per collective, algorithm as a feature — Sec. V).
//! ACCLAiM's contributions need *ensemble internals*: the jackknife
//! variance of Sec. IV-A is computed over the individual trees'
//! predictions, which scikit-learn exposes and we therefore expose too.

use crate::data::FeatureMatrix;
use crate::tree::{DecisionTree, TreeConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Hyperparameters of the forest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Ensemble size.
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Draw bootstrap samples (with replacement) per tree.
    pub bootstrap: bool,
    /// Base RNG seed; tree `i` derives its own stream from it.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 64,
            tree: TreeConfig::default(),
            bootstrap: true,
            seed: 0x5eed,
        }
    }
}

impl ForestConfig {
    /// scikit-learn-flavored defaults. Modern scikit-learn regression
    /// forests consider *all* features at each split (`max_features =
    /// 1.0`) and rely on bootstrap sampling for ensemble diversity;
    /// with the autotuner's 3-4 features, per-split subsampling would
    /// cost far more accuracy than it buys in decorrelation.
    pub fn for_n_features(n_features: usize) -> Self {
        let _ = n_features;
        ForestConfig {
            tree: TreeConfig {
                max_features: None,
                ..TreeConfig::default()
            },
            ..ForestConfig::default()
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fit `config.n_trees` trees in parallel (rayon).
    pub fn fit(config: &ForestConfig, x: &FeatureMatrix, y: &[f64]) -> Self {
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        assert!(!x.is_empty(), "cannot fit a forest on zero samples");
        assert!(config.n_trees > 0, "need at least one tree");
        let n = x.len();
        let trees: Vec<DecisionTree> = (0..config.n_trees)
            .into_par_iter()
            .map(|t| {
                // Independent, deterministic stream per tree.
                let mut rng = StdRng::seed_from_u64(config.seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let indices: Vec<usize> = if config.bootstrap {
                    (0..n).map(|_| rng.random_range(0..n)).collect()
                } else {
                    (0..n).collect()
                };
                DecisionTree::fit(&config.tree, x, y, &indices, &mut rng)
            })
            .collect();
        RandomForest { trees }
    }

    /// Ensemble prediction: the mean over trees.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Per-tree predictions, written into `out` (cleared first). This is
    /// the input to the jackknife variance of Sec. IV-A.
    pub fn predict_per_tree(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.trees.iter().map(|t| t.predict(row)));
    }

    /// Number of trees in the ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset(n: usize) -> (FeatureMatrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let y: Vec<f64> = (0..n).map(|i| 3.0 * i as f64 + (i % 5) as f64).collect();
        (FeatureMatrix::from_rows(&rows), y)
    }

    #[test]
    fn forest_fits_and_predicts_reasonably() {
        let (x, y) = linear_dataset(100);
        let f = RandomForest::fit(&ForestConfig::default(), &x, &y);
        // In-range point: within 10% of truth.
        let p = f.predict(&[50.0, 0.0]);
        assert!((p - 150.0).abs() < 15.0, "p={p}");
    }

    #[test]
    fn fitting_is_deterministic_for_a_seed() {
        let (x, y) = linear_dataset(60);
        let a = RandomForest::fit(&ForestConfig::default(), &x, &y);
        let b = RandomForest::fit(&ForestConfig::default(), &x, &y);
        assert_eq!(a, b, "same seed must give identical forests");
        let c = RandomForest::fit(
            &ForestConfig {
                seed: 1234,
                ..ForestConfig::default()
            },
            &x,
            &y,
        );
        assert_ne!(a, c, "different seed must change the ensemble");
    }

    #[test]
    fn per_tree_predictions_average_to_ensemble() {
        let (x, y) = linear_dataset(80);
        let f = RandomForest::fit(&ForestConfig::default(), &x, &y);
        let row = [33.0, 3.0];
        let mut per = Vec::new();
        f.predict_per_tree(&row, &mut per);
        assert_eq!(per.len(), f.n_trees());
        let mean = per.iter().sum::<f64>() / per.len() as f64;
        assert!((mean - f.predict(&row)).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_trees_differ() {
        let (x, y) = linear_dataset(50);
        let f = RandomForest::fit(&ForestConfig::default(), &x, &y);
        let mut per = Vec::new();
        f.predict_per_tree(&[25.5, 2.0], &mut per);
        let first = per[0];
        assert!(
            per.iter().any(|&p| (p - first).abs() > 1e-12),
            "bootstrap must diversify trees"
        );
    }

    #[test]
    fn without_bootstrap_and_full_features_trees_agree() {
        let (x, y) = linear_dataset(50);
        let cfg = ForestConfig {
            bootstrap: false,
            n_trees: 8,
            ..ForestConfig::default()
        };
        let f = RandomForest::fit(&cfg, &x, &y);
        let mut per = Vec::new();
        f.predict_per_tree(&[25.0, 0.0], &mut per);
        assert!(
            per.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12),
            "identical training data + all features => identical trees"
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn predictions_stay_within_target_range(
                ys in proptest::collection::vec(-500.0f64..500.0, 4..40),
            ) {
                let rows: Vec<Vec<f64>> =
                    (0..ys.len()).map(|i| vec![i as f64, (i % 3) as f64]).collect();
                let x = FeatureMatrix::from_rows(&rows);
                let cfg = ForestConfig { n_trees: 12, ..ForestConfig::default() };
                let f = RandomForest::fit(&cfg, &x, &ys);
                let (lo, hi) = ys
                    .iter()
                    .fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
                for row in x.rows() {
                    let p = f.predict(row);
                    prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
                }
                // Extrapolation queries are also bounded by the ensemble.
                let p = f.predict(&[1e6, -1e6]);
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
            }

            #[test]
            fn per_tree_mean_equals_ensemble_everywhere(
                ys in proptest::collection::vec(-100.0f64..100.0, 4..30),
                qx in -50.0f64..100.0,
            ) {
                let rows: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
                let x = FeatureMatrix::from_rows(&rows);
                let cfg = ForestConfig { n_trees: 8, ..ForestConfig::default() };
                let f = RandomForest::fit(&cfg, &x, &ys);
                let mut per = Vec::new();
                f.predict_per_tree(&[qx], &mut per);
                let mean = per.iter().sum::<f64>() / per.len() as f64;
                prop_assert!((mean - f.predict(&[qx])).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn feature_subsampling_diversifies_trees() {
        let (x, y) = linear_dataset(50);
        let cfg = ForestConfig {
            bootstrap: false,
            n_trees: 16,
            tree: TreeConfig {
                max_features: Some(1),
                max_depth: 3,
                ..TreeConfig::default()
            },
            ..ForestConfig::default()
        };
        let f = RandomForest::fit(&cfg, &x, &y);
        let mut per = Vec::new();
        f.predict_per_tree(&[25.5, 2.5], &mut per);
        let first = per[0];
        assert!(per.iter().any(|&p| (p - first).abs() > 1e-12));
    }
}
