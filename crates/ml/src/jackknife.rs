//! Jackknife variance over ensemble predictions (paper Sec. IV-A).
//!
//! Given the per-tree predictions `p = (p_1, …, p_n)` of a random
//! forest at a candidate point, the `i`-th jackknife sample `x_i` is the
//! mean of `p` with `p_i` removed, and
//!
//! ```text
//!            Σ_{i=1}^{n} (x_p − x_i)²
//!     σ²  =  ────────────────────────        (x_p = mean of p)
//!                     n − 1
//! ```
//!
//! ACCLAiM selects the candidate with the highest σ² as its next
//! training point (filling the model's largest understanding gap) and
//! sums σ² over all candidates as its test-set-free convergence signal
//! (Sec. IV-C).

/// Jackknife variance of a set of ensemble predictions.
///
/// Returns 0 for fewer than two predictions (no resampling possible).
pub fn jackknife_variance(predictions: &[f64]) -> f64 {
    let n = predictions.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean = predictions.iter().sum::<f64>() / nf;
    // x_i = (n*mean − p_i)/(n−1)  ⇒  mean − x_i = (p_i − mean)/(n−1).
    let sum_sq: f64 = predictions
        .iter()
        .map(|&p| {
            let d = (p - mean) / (nf - 1.0);
            d * d
        })
        .sum();
    sum_sq / (nf - 1.0)
}

/// Convenience: jackknife variance of a forest's prediction at `row`,
/// reusing `scratch` for the per-tree predictions.
pub fn forest_variance_at(
    forest: &crate::forest::RandomForest,
    row: &[f64],
    scratch: &mut Vec<f64>,
) -> f64 {
    forest.predict_per_tree(row, scratch);
    jackknife_variance(scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Direct transliteration of the paper's procedure, for cross-checking.
    fn naive_jackknife(p: &[f64]) -> f64 {
        let n = p.len() as f64;
        let x_p = p.iter().sum::<f64>() / n;
        let sum: f64 = (0..p.len())
            .map(|i| {
                let x_i = (p.iter().sum::<f64>() - p[i]) / (n - 1.0);
                (x_p - x_i) * (x_p - x_i)
            })
            .sum();
        sum / (n - 1.0)
    }

    #[test]
    fn matches_hand_computed_example() {
        // p = [1, 2, 3]: mean 2; jackknife samples x = [2.5, 2.0, 1.5];
        // deviations [−0.5, 0, 0.5] ⇒ Σ = 0.5; σ² = 0.25.
        let v = jackknife_variance(&[1.0, 2.0, 3.0]);
        assert!((v - 0.25).abs() < 1e-12, "v={v}");
    }

    #[test]
    fn constant_predictions_have_zero_variance() {
        assert_eq!(jackknife_variance(&[7.0; 10]), 0.0);
    }

    #[test]
    fn degenerate_inputs_are_zero() {
        assert_eq!(jackknife_variance(&[]), 0.0);
        assert_eq!(jackknife_variance(&[42.0]), 0.0);
    }

    #[test]
    fn disagreement_increases_variance() {
        let tight = jackknife_variance(&[10.0, 10.1, 9.9, 10.05]);
        let loose = jackknife_variance(&[5.0, 15.0, 2.0, 18.0]);
        assert!(loose > 100.0 * tight);
    }

    proptest! {
        #[test]
        fn closed_form_matches_naive_definition(
            p in proptest::collection::vec(-1e6f64..1e6, 2..64),
        ) {
            let fast = jackknife_variance(&p);
            let slow = naive_jackknife(&p);
            let scale = fast.abs().max(slow.abs()).max(1e-12);
            prop_assert!((fast - slow).abs() / scale < 1e-9, "{fast} vs {slow}");
        }

        #[test]
        fn variance_is_nonnegative_and_shift_invariant(
            p in proptest::collection::vec(-1e3f64..1e3, 2..64),
            shift in -1e3f64..1e3,
        ) {
            let v = jackknife_variance(&p);
            prop_assert!(v >= 0.0);
            let shifted: Vec<f64> = p.iter().map(|x| x + shift).collect();
            let vs = jackknife_variance(&shifted);
            prop_assert!((v - vs).abs() < 1e-6 * v.max(1.0), "shift changed variance");
        }

        #[test]
        fn scaling_scales_variance_quadratically(
            p in proptest::collection::vec(-1e3f64..1e3, 2..32),
            k in 0.1f64..10.0,
        ) {
            let v = jackknife_variance(&p);
            let scaled: Vec<f64> = p.iter().map(|x| k * x).collect();
            let vk = jackknife_variance(&scaled);
            prop_assert!((vk - k * k * v).abs() < 1e-6 * vk.max(1.0));
        }
    }
}
