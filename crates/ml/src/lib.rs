//! From-scratch machine-learning substrate for the ACCLAiM reproduction.
//!
//! The paper models collective performance with scikit-learn random
//! forests. ACCLAiM's contributions need ensemble internals — the
//! jackknife variance of Wager et al. over the individual trees'
//! predictions drives both training-point selection and the
//! test-set-free convergence criterion — so this crate implements CART
//! regression trees ([`tree`]), bagged random forests with per-tree
//! prediction access ([`forest`]), the jackknife ([`jackknife`]), and
//! the evaluation metrics including *average slowdown* ([`metrics`]).

#![warn(missing_docs)]

pub mod data;
pub mod flat;
pub mod forest;
pub mod jackknife;
pub mod metrics;
pub mod tree;

pub use data::FeatureMatrix;
pub use flat::{FlatForest, FLAT_BLOCK_ROWS};
pub use forest::{bootstrap_weight, BootstrapScheme, ForestConfig, RandomForest, TreeUpdate};
pub use jackknife::{forest_variance_at, jackknife_variance};
pub use metrics::{average_slowdown, CONVERGENCE_SLOWDOWN};
pub use tree::{DecisionTree, DirtyRegion, TreeConfig};
