//! Regression and selection-quality metrics.
//!
//! Besides standard regression metrics, this module implements the
//! paper's *average slowdown* (Sec. II-C-2): the mean over test points
//! of `t(selected algorithm) / t(optimal algorithm)`. An autotuner is
//! "converged" when its average slowdown is at most 1.03.

/// Mean squared error.
pub fn mse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    assert!(!truth.is_empty());
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / truth.len() as f64
}

/// Mean absolute error.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    assert!(!truth.is_empty());
    truth.iter().zip(pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / truth.len() as f64
}

/// Coefficient of determination (1 = perfect; can be negative).
pub fn r2(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    assert!(!truth.is_empty());
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// The paper's convergence threshold on average slowdown.
pub const CONVERGENCE_SLOWDOWN: f64 = 1.03;

/// Average slowdown of a set of selections.
///
/// Each element pairs the true time of the *selected* algorithm with the
/// true time of the *optimal* algorithm at that point.
pub fn average_slowdown(selected_vs_optimal: &[(f64, f64)]) -> f64 {
    assert!(!selected_vs_optimal.is_empty());
    selected_vs_optimal
        .iter()
        .map(|&(sel, opt)| {
            debug_assert!(opt > 0.0, "optimal time must be positive");
            sel / opt
        })
        .sum::<f64>()
        / selected_vs_optimal.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_predictions() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(mse(&t, &t), 0.0);
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(r2(&t, &t), 1.0);
    }

    #[test]
    fn known_errors() {
        let t = [0.0, 0.0];
        let p = [1.0, -1.0];
        assert_eq!(mse(&t, &p), 1.0);
        assert_eq!(mae(&t, &p), 1.0);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!((r2(&t, &p) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_selections_have_slowdown_one() {
        let s = [(2.0, 2.0), (5.0, 5.0)];
        assert_eq!(average_slowdown(&s), 1.0);
    }

    #[test]
    fn suboptimal_selections_raise_slowdown() {
        let s = [(2.0, 2.0), (10.0, 5.0)];
        assert_eq!(average_slowdown(&s), 1.5);
        assert!(average_slowdown(&s) > CONVERGENCE_SLOWDOWN);
    }

    proptest! {
        #[test]
        fn slowdown_is_at_least_one_when_optimal_is_truly_optimal(
            pairs in proptest::collection::vec((1.0f64..1e6, 1.0f64..1e6), 1..50),
        ) {
            // Force sel >= opt by ordering each pair.
            let fixed: Vec<(f64, f64)> = pairs
                .into_iter()
                .map(|(a, b)| (a.max(b), a.min(b)))
                .collect();
            prop_assert!(average_slowdown(&fixed) >= 1.0 - 1e-12);
        }

        #[test]
        fn mse_dominates_squared_mae(
            t in proptest::collection::vec(-1e3f64..1e3, 1..50),
            p in proptest::collection::vec(-1e3f64..1e3, 1..50),
        ) {
            let n = t.len().min(p.len());
            let (t, p) = (&t[..n], &p[..n]);
            // Jensen: mae² <= mse.
            prop_assert!(mae(t, p).powi(2) <= mse(t, p) + 1e-9);
        }
    }
}
