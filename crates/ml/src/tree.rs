//! CART regression tree with variance-reduction (MSE) splits.
//!
//! Built from scratch (the paper uses scikit-learn's
//! `RandomForestRegressor`; we need our own to expose per-tree ensemble
//! predictions for the jackknife). Splits minimize the summed squared
//! error of the two children; per-split feature subsampling supports the
//! random forest above it.

use crate::data::FeatureMatrix;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters of a single regression tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples in each leaf.
    pub min_samples_leaf: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Features examined per split (`None` = all).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 24,
            min_samples_leaf: 1,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Node {
    /// Split feature, or `usize::MAX` for leaves.
    feature: usize,
    /// Split threshold (`x[feature] <= threshold` goes left); unused for
    /// leaves.
    threshold: f64,
    /// Leaf prediction; unused for split nodes.
    value: f64,
    /// Child indices (left, right); unused for leaves.
    left: u32,
    right: u32,
}

const LEAF: usize = usize::MAX;

/// A fitted CART regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Fit a tree on the rows of `x` selected by `indices` (with
    /// repetitions allowed, supporting bootstrap samples).
    pub fn fit<R: Rng + ?Sized>(
        config: &TreeConfig,
        x: &FeatureMatrix,
        y: &[f64],
        indices: &[usize],
        rng: &mut R,
    ) -> Self {
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        assert!(!indices.is_empty(), "cannot fit on zero samples");
        let mut builder = Builder {
            config,
            x,
            y,
            rng,
            nodes: Vec::new(),
            feature_pool: (0..x.n_features()).collect(),
        };
        let mut idx = indices.to_vec();
        builder.build(&mut idx, 0);
        DecisionTree {
            nodes: builder.nodes,
        }
    }

    /// Predict the target for one feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut node = &self.nodes[0];
        while node.feature != LEAF {
            node = if row[node.feature] <= node.threshold {
                &self.nodes[node.left as usize]
            } else {
                &self.nodes[node.right as usize]
            };
        }
        node.value
    }

    /// Number of nodes (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            let n = &nodes[i];
            if n.feature == LEAF {
                0
            } else {
                1 + depth_of(nodes, n.left as usize).max(depth_of(nodes, n.right as usize))
            }
        }
        depth_of(&self.nodes, 0)
    }
}

struct Builder<'a, R: Rng + ?Sized> {
    config: &'a TreeConfig,
    x: &'a FeatureMatrix,
    y: &'a [f64],
    rng: &'a mut R,
    nodes: Vec<Node>,
    feature_pool: Vec<usize>,
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    score: f64,
}

impl<R: Rng + ?Sized> Builder<'_, R> {
    /// Build the subtree over `indices`; returns its node index.
    fn build(&mut self, indices: &mut [usize], depth: usize) -> u32 {
        let node_id = self.nodes.len() as u32;
        let mean = indices.iter().map(|&i| self.y[i]).sum::<f64>() / indices.len() as f64;
        self.nodes.push(Node {
            feature: LEAF,
            threshold: 0.0,
            value: mean,
            left: 0,
            right: 0,
        });

        if depth >= self.config.max_depth
            || indices.len() < self.config.min_samples_split
            || indices.len() < 2 * self.config.min_samples_leaf
        {
            return node_id;
        }
        let Some(split) = self.best_split(indices) else {
            return node_id;
        };

        // Partition in place: rows with x[f] <= t go left.
        let mut mid = 0;
        for i in 0..indices.len() {
            if self.x.get(indices[i], split.feature) <= split.threshold {
                indices.swap(i, mid);
                mid += 1;
            }
        }
        debug_assert!(mid > 0 && mid < indices.len(), "degenerate split survived");
        let (left_idx, right_idx) = indices.split_at_mut(mid);
        let left = self.build(left_idx, depth + 1);
        let right = self.build(right_idx, depth + 1);
        let node = &mut self.nodes[node_id as usize];
        node.feature = split.feature;
        node.threshold = split.threshold;
        node.left = left;
        node.right = right;
        node_id
    }

    /// Exhaustive best split over a random feature subset: minimize
    /// left/right summed squared error via a sorted prefix scan.
    fn best_split(&mut self, indices: &[usize]) -> Option<BestSplit> {
        let n_features = self.x.n_features();
        let k = self
            .config
            .max_features
            .unwrap_or(n_features)
            .clamp(1, n_features);
        self.feature_pool.shuffle(self.rng);
        // Work on a copy of the candidate features to keep the borrow
        // checker happy while we mutate scratch.
        let candidates: Vec<usize> = self.feature_pool[..k].to_vec();

        let total_sum: f64 = indices.iter().map(|&i| self.y[i]).sum();
        let total_sq: f64 = indices.iter().map(|&i| self.y[i] * self.y[i]).sum();
        let n = indices.len() as f64;
        let parent_score = total_sq - total_sum * total_sum / n;

        let mut best: Option<BestSplit> = None;
        let mut order: Vec<usize> = Vec::with_capacity(indices.len());
        for f in candidates {
            order.clear();
            order.extend_from_slice(indices);
            order.sort_by(|&a, &b| self.x.get(a, f).total_cmp(&self.x.get(b, f)));

            let min_leaf = self.config.min_samples_leaf;
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for (pos, &i) in order.iter().enumerate().take(order.len() - 1) {
                left_sum += self.y[i];
                left_sq += self.y[i] * self.y[i];
                let left_n = pos + 1;
                let right_n = order.len() - left_n;
                if left_n < min_leaf || right_n < min_leaf {
                    continue;
                }
                let this_v = self.x.get(i, f);
                let next_v = self.x.get(order[pos + 1], f);
                if this_v == next_v {
                    continue; // cannot split between equal values
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let score = (left_sq - left_sum * left_sum / left_n as f64)
                    + (right_sq - right_sum * right_sum / right_n as f64);
                if score + 1e-12 < best.as_ref().map_or(parent_score, |b| b.score) {
                    best = Some(BestSplit {
                        feature: f,
                        threshold: 0.5 * (this_v + next_v),
                        score,
                    });
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn fit(x: &FeatureMatrix, y: &[f64], config: &TreeConfig) -> DecisionTree {
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(42);
        DecisionTree::fit(config, x, y, &idx, &mut rng)
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = vec![5.0; 3];
        let t = fit(&x, &y, &TreeConfig::default());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[9.0]), 5.0);
    }

    #[test]
    fn step_function_is_learned_exactly() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 2.0 }).collect();
        let t = fit(&x, &y, &TreeConfig::default());
        assert_eq!(t.predict(&[3.0]), 1.0);
        assert_eq!(t.predict(&[15.0]), 2.0);
        assert_eq!(t.predict(&[9.4]), 1.0);
        assert_eq!(t.predict(&[9.6]), 2.0);
    }

    #[test]
    fn two_feature_interaction() {
        // y = 10 when (a > 0.5 and b > 0.5), else 0: needs two levels.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                rows.push(vec![a as f64 / 3.0, b as f64 / 3.0]);
                y.push(if a >= 2 && b >= 2 { 10.0 } else { 0.0 });
            }
        }
        let x = FeatureMatrix::from_rows(&rows);
        let t = fit(&x, &y, &TreeConfig::default());
        assert_eq!(t.predict(&[1.0, 1.0]), 10.0);
        assert_eq!(t.predict(&[1.0, 0.0]), 0.0);
        assert_eq!(t.predict(&[0.0, 1.0]), 0.0);
    }

    #[test]
    fn max_depth_limits_growth() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let shallow = fit(
            &x,
            &y,
            &TreeConfig {
                max_depth: 2,
                ..TreeConfig::default()
            },
        );
        assert!(shallow.depth() <= 2);
        let deep = fit(&x, &y, &TreeConfig::default());
        assert!(deep.depth() > 2);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let t = fit(
            &x,
            &y,
            &TreeConfig {
                min_samples_leaf: 5,
                ..TreeConfig::default()
            },
        );
        // Only one split can satisfy two leaves of >= 5 samples.
        assert!(t.node_count() <= 3, "got {} nodes", t.node_count());
    }

    #[test]
    fn duplicate_feature_values_never_split_apart() {
        let x = FeatureMatrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]);
        let y = vec![0.0, 10.0, 0.0, 10.0];
        let t = fit(&x, &y, &TreeConfig::default());
        assert_eq!(t.node_count(), 1, "identical rows cannot be separated");
        assert_eq!(t.predict(&[1.0]), 5.0);
    }

    proptest! {
        #[test]
        fn predictions_stay_within_target_range(
            ys in proptest::collection::vec(-1000.0f64..1000.0, 2..60),
        ) {
            let rows: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64, (i * 7 % 13) as f64]).collect();
            let x = FeatureMatrix::from_rows(&rows);
            let t = fit(&x, &ys, &TreeConfig::default());
            let (lo, hi) = ys.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
            for row in x.rows() {
                let p = t.predict(row);
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
            }
        }

        #[test]
        fn full_depth_tree_interpolates_training_data(
            ys in proptest::collection::vec(-100.0f64..100.0, 2..40),
        ) {
            // Distinct feature values + unlimited depth => zero training error.
            let rows: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
            let x = FeatureMatrix::from_rows(&rows);
            let t = fit(&x, &ys, &TreeConfig { max_depth: 64, ..TreeConfig::default() });
            for (i, row) in x.rows().enumerate() {
                prop_assert!((t.predict(row) - ys[i]).abs() < 1e-9);
            }
        }
    }
}
