//! CART regression tree with variance-reduction (MSE) splits.
//!
//! Built from scratch (the paper uses scikit-learn's
//! `RandomForestRegressor`; we need our own to expose per-tree ensemble
//! predictions for the jackknife). Splits minimize the summed squared
//! error of the two children; per-split feature subsampling supports the
//! random forest above it.
//!
//! Builds are a pure function of `(multiset of training rows, tree
//! seed)`: any randomness (per-split feature subsampling) is seeded from
//! the node's position in the tree, never from a shared stream consumed
//! in traversal order. That locality is what makes
//! [`DecisionTree::refit_appended`] possible — rebuilding only the path
//! a newly appended sample takes while reusing every untouched subtree
//! bit-for-bit.

use crate::data::FeatureMatrix;
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyperparameters of a single regression tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples in each leaf.
    pub min_samples_leaf: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Features examined per split (`None` = all).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 24,
            min_samples_leaf: 1,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct Node {
    /// Split feature, or `usize::MAX` for leaves.
    pub(crate) feature: usize,
    /// Split threshold (`x[feature] <= threshold` goes left); unused for
    /// leaves.
    pub(crate) threshold: f64,
    /// Leaf prediction; unused for split nodes.
    pub(crate) value: f64,
    /// Child indices (left, right); unused for leaves.
    pub(crate) left: u32,
    pub(crate) right: u32,
}

pub(crate) const LEAF: usize = usize::MAX;

/// A fitted CART regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Fit a tree on the rows of `x` selected by `indices` (with
    /// repetitions allowed, supporting bootstrap samples). The `rng`
    /// only supplies the tree seed; see [`DecisionTree::fit_seeded`].
    pub fn fit<R: Rng + ?Sized>(
        config: &TreeConfig,
        x: &FeatureMatrix,
        y: &[f64],
        indices: &[usize],
        rng: &mut R,
    ) -> Self {
        Self::fit_seeded(config, x, y, indices, rng.next_u64())
    }

    /// Fit a tree deterministically: the result depends only on the
    /// multiset `indices` (in the given order), the config, and
    /// `tree_seed`. Per-split feature subsampling draws from an RNG
    /// seeded by `(tree_seed, node depth, node path)`, so identical
    /// subtree inputs always produce identical subtrees regardless of
    /// what the rest of the tree looks like.
    pub fn fit_seeded(
        config: &TreeConfig,
        x: &FeatureMatrix,
        y: &[f64],
        indices: &[usize],
        tree_seed: u64,
    ) -> Self {
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        assert!(!indices.is_empty(), "cannot fit on zero samples");
        let mut builder = Builder {
            config,
            x,
            y,
            tree_seed,
            nodes: Vec::new(),
            feature_pool: (0..x.n_features()).collect(),
            scratch: Vec::new(),
            region_conds: Vec::new(),
            dirty: Vec::new(),
            presorted: Vec::new(),
        };
        let mut idx = indices.to_vec();
        builder.build(&mut idx, 0, 0);
        DecisionTree {
            nodes: builder.nodes,
        }
    }

    /// Rebuild this tree after appending `new_sample` to its training
    /// multiset, producing exactly the tree [`DecisionTree::fit_seeded`]
    /// would on `indices` — but recomputing splits only along the path
    /// the new sample takes. Wherever the recomputed split partitions
    /// the old rows the way the old split did, the sibling subtree
    /// (whose multiset is unchanged) is copied verbatim instead of
    /// rebuilt.
    ///
    /// `indices` must be the *new* multiset: the multiset this tree was
    /// fitted on, with the copies of `new_sample` appended at the end
    /// (matching the canonical ascending order scratch fits use).
    ///
    /// Also returns the [`DirtyRegion`] outside of which the new tree
    /// predicts bit-identically to `self`.
    pub fn refit_appended(
        &self,
        config: &TreeConfig,
        x: &FeatureMatrix,
        y: &[f64],
        indices: &mut [usize],
        tree_seed: u64,
        new_sample: usize,
    ) -> (Self, DirtyRegion) {
        assert_eq!(x.len(), y.len(), "feature/target length mismatch");
        assert!(!indices.is_empty(), "cannot fit on zero samples");
        let presorted: Vec<Vec<usize>> = (0..x.n_features())
            .map(|f| {
                let mut o = indices.to_vec();
                o.sort_by(|&a, &b| x.get(a, f).total_cmp(&x.get(b, f)));
                o
            })
            .collect();
        let mut builder = Builder {
            config,
            x,
            y,
            tree_seed,
            nodes: Vec::new(),
            feature_pool: (0..x.n_features()).collect(),
            scratch: Vec::new(),
            region_conds: Vec::new(),
            dirty: Vec::new(),
            presorted,
        };
        builder.rebuild_path(&self.nodes, 0, indices, 0, 0, new_sample);
        (
            DecisionTree {
                nodes: builder.nodes,
            },
            DirtyRegion {
                regions: builder.dirty,
            },
        )
    }

    /// Predict the target for one feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut node = &self.nodes[0];
        while node.feature != LEAF {
            node = if row[node.feature] <= node.threshold {
                &self.nodes[node.left as usize]
            } else {
                &self.nodes[node.right as usize]
            };
        }
        node.value
    }

    /// Number of nodes (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node arena, for crate-internal consumers (the SoA
    /// [`crate::FlatForest`] flattener).
    pub(crate) fn raw_nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            let n = &nodes[i];
            if n.feature == LEAF {
                0
            } else {
                1 + depth_of(nodes, n.left as usize).max(depth_of(nodes, n.right as usize))
            }
        }
        depth_of(&self.nodes, 0)
    }
}

/// One axis constraint of a dirty region: `lo < x[feature] <= hi`.
type Cond = (usize, f64, f64);

/// The part of feature space where a refit tree's predictions may
/// differ from the pre-refit tree's.
///
/// A union of axis-aligned boxes (conjunctions of `(feature, lo, hi)`
/// conditions), collected
/// while [`DecisionTree::refit_appended`] walks the new sample's path:
/// the box delimiting each rebuilt subtree, plus — when a reused split
/// kept its partition but moved its threshold — the band between the old
/// and new thresholds (rows in the band route differently even though
/// both subtrees were preserved). Everywhere outside the region the two
/// trees predict bit-identically, which is what lets a per-tree
/// prediction cache skip rows a refit could not have touched.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DirtyRegion {
    regions: Vec<Vec<Cond>>,
}

impl DirtyRegion {
    /// Nothing dirty (predictions unchanged everywhere).
    pub fn none() -> Self {
        DirtyRegion::default()
    }

    /// Everything dirty (a full rebuild).
    pub fn whole() -> Self {
        DirtyRegion {
            regions: vec![Vec::new()],
        }
    }

    /// True when no row is dirty.
    pub fn is_none(&self) -> bool {
        self.regions.is_empty()
    }

    /// True when every row is dirty.
    pub fn is_whole(&self) -> bool {
        self.regions.iter().any(Vec::is_empty)
    }

    /// Whether `row`'s prediction may have changed.
    pub fn contains(&self, row: &[f64]) -> bool {
        self.regions.iter().any(|conds| {
            conds
                .iter()
                .all(|&(f, lo, hi)| row[f] > lo && row[f] <= hi)
        })
    }

    /// Union with another region (e.g. a later append to the same tree).
    pub fn merge(&mut self, other: DirtyRegion) {
        if self.is_whole() {
            return;
        }
        if other.is_whole() {
            *self = DirtyRegion::whole();
            return;
        }
        self.regions.extend(other.regions);
    }
}

/// Mix a node's position into a per-node RNG seed (splitmix64-style
/// finalizer). A node is identified by its depth and the left/right
/// path bits taken from the root, so the seed is independent of how the
/// rest of the tree is built.
fn node_seed(tree_seed: u64, depth: usize, path: u64) -> u64 {
    let mut h = tree_seed
        ^ (depth as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ path.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

struct Builder<'a> {
    config: &'a TreeConfig,
    x: &'a FeatureMatrix,
    y: &'a [f64],
    tree_seed: u64,
    nodes: Vec<Node>,
    feature_pool: Vec<usize>,
    scratch: Vec<usize>,
    /// Conjunction of split decisions taken so far on the refit path
    /// (maintained by `rebuild_path` only).
    region_conds: Vec<Cond>,
    /// Accumulated dirty boxes (see [`DirtyRegion`]).
    dirty: Vec<Vec<Cond>>,
    /// Per-feature presorted index orders for the refit-path node
    /// currently being split (`rebuild_path` only). Sorted once at the
    /// root and filtered linearly on each descent, these let path nodes
    /// skip `best_split`'s per-feature sort. Filtering a stable sort
    /// preserves relative order among equal values, so the filtered
    /// order is exactly the permutation a fresh stable sort of the
    /// child's canonical index order would produce — bit-exactness of
    /// the prefix-scan float sums is preserved.
    presorted: Vec<Vec<usize>>,
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    score: f64,
}

impl Builder<'_> {
    /// Build the subtree over `indices`; returns its node index.
    fn build(&mut self, indices: &mut [usize], depth: usize, path: u64) -> u32 {
        let node_id = self.push_leaf(indices);
        let Some(split) = self.try_split(indices, depth, path) else {
            return node_id;
        };
        let mid = partition(self.x, indices, &split, &mut self.scratch);
        let (left_idx, right_idx) = indices.split_at_mut(mid);
        let left = self.build(left_idx, depth + 1, path.wrapping_shl(1));
        let right = self.build(right_idx, depth + 1, path.wrapping_shl(1) | 1);
        self.finish_split(node_id, &split, left, right);
        node_id
    }

    /// Rebuild the subtree over `indices` (the old subtree's multiset
    /// plus appended copies of `new_sample`), reusing subtrees whose
    /// multiset did not change. `old_i` is the corresponding node in the
    /// pre-append tree. Produces bit-for-bit what `build` would, and
    /// records in `self.dirty` the boxes where predictions may differ
    /// from the old subtree's.
    fn rebuild_path(
        &mut self,
        old: &[Node],
        old_i: u32,
        indices: &mut [usize],
        depth: usize,
        path: u64,
        new_sample: usize,
    ) -> u32 {
        let node_id = self.push_leaf(indices);
        let Some(split) = self.try_split(indices, depth, path) else {
            // Rebuilt leaf: its mean absorbed the appended copies.
            self.dirty.push(self.region_conds.clone());
            return node_id;
        };
        let old_node = old[old_i as usize];
        // The old subtree is reusable when the new split sends every old
        // row to the side the old split sent it to. Equal thresholds
        // trivially agree; otherwise (the threshold midpoint moved, e.g.
        // because the appended value sits next to the old boundary) scan
        // the old rows for a disagreement.
        let reusable = old_node.feature == split.feature
            && (old_node.threshold == split.threshold
                || indices.iter().all(|&i| {
                    let v = self.x.get(i, split.feature);
                    i == new_sample || (v <= old_node.threshold) == (v <= split.threshold)
                }));
        let mid = partition(self.x, indices, &split, &mut self.scratch);
        let (left_idx, right_idx) = indices.split_at_mut(mid);
        let (left, right) = if reusable {
            // Every appended copy lands on one side, so the other side's
            // multiset — and therefore its entire subtree — is unchanged
            // and can be copied verbatim. If the threshold moved, rows
            // between the two thresholds route differently even though
            // both subtrees survive: mark that band dirty.
            if old_node.threshold != split.threshold {
                let (lo, hi) = if old_node.threshold < split.threshold {
                    (old_node.threshold, split.threshold)
                } else {
                    (split.threshold, old_node.threshold)
                };
                let mut band = self.region_conds.clone();
                band.push((split.feature, lo, hi));
                self.dirty.push(band);
            }
            if self.x.get(new_sample, split.feature) <= split.threshold {
                self.region_conds
                    .push((split.feature, f64::NEG_INFINITY, split.threshold));
                self.filter_presorted(split.feature, split.threshold, true);
                let left = self.rebuild_path(
                    old,
                    old_node.left,
                    left_idx,
                    depth + 1,
                    path.wrapping_shl(1),
                    new_sample,
                );
                self.region_conds.pop();
                let right = copy_subtree(old, old_node.right, &mut self.nodes);
                (left, right)
            } else {
                let left = copy_subtree(old, old_node.left, &mut self.nodes);
                self.region_conds
                    .push((split.feature, split.threshold, f64::INFINITY));
                self.filter_presorted(split.feature, split.threshold, false);
                let right = self.rebuild_path(
                    old,
                    old_node.right,
                    right_idx,
                    depth + 1,
                    path.wrapping_shl(1) | 1,
                    new_sample,
                );
                self.region_conds.pop();
                (left, right)
            }
        } else {
            // The partition moved (or the old node was a leaf): rebuild
            // this whole subtree from scratch — all of it is dirty. The
            // presorted orders describe this node, not the subtree's
            // descendants, so `build` must fall back to per-node sorts.
            self.dirty.push(self.region_conds.clone());
            self.presorted.clear();
            let left = self.build(left_idx, depth + 1, path.wrapping_shl(1));
            let right = self.build(right_idx, depth + 1, path.wrapping_shl(1) | 1);
            (left, right)
        };
        self.finish_split(node_id, &split, left, right);
        node_id
    }

    /// Push a leaf predicting the mean of `indices`.
    fn push_leaf(&mut self, indices: &[usize]) -> u32 {
        let node_id = self.nodes.len() as u32;
        let mean = indices.iter().map(|&i| self.y[i]).sum::<f64>() / indices.len() as f64;
        self.nodes.push(Node {
            feature: LEAF,
            threshold: 0.0,
            value: mean,
            left: 0,
            right: 0,
        });
        node_id
    }

    /// The split for this node, if stopping criteria allow one and one
    /// improves on the parent.
    fn try_split(&mut self, indices: &[usize], depth: usize, path: u64) -> Option<BestSplit> {
        if depth >= self.config.max_depth
            || indices.len() < self.config.min_samples_split
            || indices.len() < 2 * self.config.min_samples_leaf
        {
            return None;
        }
        self.best_split(indices, depth, path)
    }

    /// Turn the placeholder leaf `node_id` into a split node.
    fn finish_split(&mut self, node_id: u32, split: &BestSplit, left: u32, right: u32) {
        let node = &mut self.nodes[node_id as usize];
        node.feature = split.feature;
        node.threshold = split.threshold;
        node.left = left;
        node.right = right;
    }

    /// Restrict the refit-path presorted orders to the child on the
    /// `keep_left` side of a split. A linear filter of a stable sort
    /// yields exactly the stable sort of the (stably partitioned) child.
    fn filter_presorted(&mut self, feature: usize, threshold: f64, keep_left: bool) {
        let x = self.x;
        for ord in &mut self.presorted {
            ord.retain(|&i| (x.get(i, feature) <= threshold) == keep_left);
        }
    }

    /// Exhaustive best split over the node's feature subset: minimize
    /// left/right summed squared error via a sorted prefix scan. With
    /// `max_features = None` every feature is scanned in natural order;
    /// with subsampling, the subset comes from an RNG seeded by the
    /// node's position (deterministic per node). On the refit path the
    /// per-feature sort is skipped in favor of `self.presorted`.
    fn best_split(&mut self, indices: &[usize], depth: usize, path: u64) -> Option<BestSplit> {
        let n_features = self.x.n_features();
        let k = self
            .config
            .max_features
            .unwrap_or(n_features)
            .clamp(1, n_features);
        let candidates: Vec<usize> = if k >= n_features {
            (0..n_features).collect()
        } else {
            let mut rng = StdRng::seed_from_u64(node_seed(self.tree_seed, depth, path));
            self.feature_pool.shuffle(&mut rng);
            self.feature_pool[..k].to_vec()
        };

        let total_sum: f64 = indices.iter().map(|&i| self.y[i]).sum();
        let total_sq: f64 = indices.iter().map(|&i| self.y[i] * self.y[i]).sum();
        let n = indices.len() as f64;
        let parent_score = total_sq - total_sum * total_sum / n;

        let mut best: Option<BestSplit> = None;
        let mut order: Vec<usize> = Vec::with_capacity(indices.len());
        for f in candidates {
            order.clear();
            if self.presorted.is_empty() {
                order.extend_from_slice(indices);
                order.sort_by(|&a, &b| self.x.get(a, f).total_cmp(&self.x.get(b, f)));
            } else {
                debug_assert_eq!(self.presorted[f].len(), indices.len());
                order.extend_from_slice(&self.presorted[f]);
            }

            let min_leaf = self.config.min_samples_leaf;
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for (pos, &i) in order.iter().enumerate().take(order.len() - 1) {
                left_sum += self.y[i];
                left_sq += self.y[i] * self.y[i];
                let left_n = pos + 1;
                let right_n = order.len() - left_n;
                if left_n < min_leaf || right_n < min_leaf {
                    continue;
                }
                let this_v = self.x.get(i, f);
                let next_v = self.x.get(order[pos + 1], f);
                if this_v == next_v {
                    continue; // cannot split between equal values
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let score = (left_sq - left_sum * left_sum / left_n as f64)
                    + (right_sq - right_sum * right_sum / right_n as f64);
                if score + 1e-12 < best.as_ref().map_or(parent_score, |b| b.score) {
                    best = Some(BestSplit {
                        feature: f,
                        threshold: 0.5 * (this_v + next_v),
                        score,
                    });
                }
            }
        }
        best
    }
}

/// Partition `indices` in place so rows with `x[feature] <= threshold`
/// come first; returns the boundary. Stable on BOTH sides: each side
/// keeps its rows in their original relative order. Stability is what
/// keeps incremental refits bit-identical to scratch fits — an appended
/// sample lands at the end of one side and leaves the other side's
/// ordering (and hence its float summation order) untouched.
fn partition(
    x: &FeatureMatrix,
    indices: &mut [usize],
    split: &BestSplit,
    scratch: &mut Vec<usize>,
) -> usize {
    scratch.clear();
    let mut mid = 0;
    for i in 0..indices.len() {
        let row = indices[i];
        if x.get(row, split.feature) <= split.threshold {
            indices[mid] = row;
            mid += 1;
        } else {
            scratch.push(row);
        }
    }
    indices[mid..].copy_from_slice(scratch);
    debug_assert!(mid > 0 && mid < indices.len(), "degenerate split survived");
    mid
}

/// Copy the subtree rooted at `old_i` into `out` in build order
/// (pre-order, left before right), remapping child indices; returns the
/// new root index. Reproduces exactly the layout a fresh build emits.
fn copy_subtree(old: &[Node], old_i: u32, out: &mut Vec<Node>) -> u32 {
    let node_id = out.len() as u32;
    out.push(old[old_i as usize]);
    if old[old_i as usize].feature != LEAF {
        let left = copy_subtree(old, old[old_i as usize].left, out);
        let right = copy_subtree(old, old[old_i as usize].right, out);
        let node = &mut out[node_id as usize];
        node.left = left;
        node.right = right;
    }
    node_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn fit(x: &FeatureMatrix, y: &[f64], config: &TreeConfig) -> DecisionTree {
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(42);
        DecisionTree::fit(config, x, y, &idx, &mut rng)
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x = FeatureMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = vec![5.0; 3];
        let t = fit(&x, &y, &TreeConfig::default());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[9.0]), 5.0);
    }

    #[test]
    fn step_function_is_learned_exactly() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 2.0 }).collect();
        let t = fit(&x, &y, &TreeConfig::default());
        assert_eq!(t.predict(&[3.0]), 1.0);
        assert_eq!(t.predict(&[15.0]), 2.0);
        assert_eq!(t.predict(&[9.4]), 1.0);
        assert_eq!(t.predict(&[9.6]), 2.0);
    }

    #[test]
    fn two_feature_interaction() {
        // y = 10 when (a > 0.5 and b > 0.5), else 0: needs two levels.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                rows.push(vec![a as f64 / 3.0, b as f64 / 3.0]);
                y.push(if a >= 2 && b >= 2 { 10.0 } else { 0.0 });
            }
        }
        let x = FeatureMatrix::from_rows(&rows);
        let t = fit(&x, &y, &TreeConfig::default());
        assert_eq!(t.predict(&[1.0, 1.0]), 10.0);
        assert_eq!(t.predict(&[1.0, 0.0]), 0.0);
        assert_eq!(t.predict(&[0.0, 1.0]), 0.0);
    }

    #[test]
    fn max_depth_limits_growth() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let shallow = fit(
            &x,
            &y,
            &TreeConfig {
                max_depth: 2,
                ..TreeConfig::default()
            },
        );
        assert!(shallow.depth() <= 2);
        let deep = fit(&x, &y, &TreeConfig::default());
        assert!(deep.depth() > 2);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let x = FeatureMatrix::from_rows(&rows);
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let t = fit(
            &x,
            &y,
            &TreeConfig {
                min_samples_leaf: 5,
                ..TreeConfig::default()
            },
        );
        // Only one split can satisfy two leaves of >= 5 samples.
        assert!(t.node_count() <= 3, "got {} nodes", t.node_count());
    }

    #[test]
    fn duplicate_feature_values_never_split_apart() {
        let x = FeatureMatrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]);
        let y = vec![0.0, 10.0, 0.0, 10.0];
        let t = fit(&x, &y, &TreeConfig::default());
        assert_eq!(t.node_count(), 1, "identical rows cannot be separated");
        assert_eq!(t.predict(&[1.0]), 5.0);
    }

    proptest! {
        #[test]
        fn predictions_stay_within_target_range(
            ys in proptest::collection::vec(-1000.0f64..1000.0, 2..60),
        ) {
            let rows: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64, (i * 7 % 13) as f64]).collect();
            let x = FeatureMatrix::from_rows(&rows);
            let t = fit(&x, &ys, &TreeConfig::default());
            let (lo, hi) = ys.iter().fold((f64::MAX, f64::MIN), |(l, h), &v| (l.min(v), h.max(v)));
            for row in x.rows() {
                let p = t.predict(row);
                prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
            }
        }

        #[test]
        fn full_depth_tree_interpolates_training_data(
            ys in proptest::collection::vec(-100.0f64..100.0, 2..40),
        ) {
            // Distinct feature values + unlimited depth => zero training error.
            let rows: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
            let x = FeatureMatrix::from_rows(&rows);
            let t = fit(&x, &ys, &TreeConfig { max_depth: 64, ..TreeConfig::default() });
            for (i, row) in x.rows().enumerate() {
                prop_assert!((t.predict(row) - ys[i]).abs() < 1e-9);
            }
        }
    }
}
