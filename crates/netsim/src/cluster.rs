//! A job's view of the machine: topology + parameters + allocation.

use crate::params::NetworkParams;
use crate::topology::{Allocation, Layer, Topology};
use serde::{Deserialize, Serialize};

/// Everything a simulator needs to price a message between two ranks:
/// the machine shape, the network constants, the nodes this job holds,
/// and the job's placement-dependent latency factor (the paper measured
/// more than 2x latency variation across Theta allocations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Machine shape.
    pub topology: Topology,
    /// Network performance constants.
    pub params: NetworkParams,
    /// Nodes held by this job, in logical order.
    pub allocation: Allocation,
    /// Placement-dependent multiplier on inter-node latency (>= 1).
    pub job_latency_factor: f64,
    /// Fraction of the layer-3 (rack-pair) link bandwidth consumed by
    /// *other* jobs sharing the machine (0 = idle machine). The paper's
    /// Sec. IV-D expects third-layer congestion from co-running
    /// applications on a production system.
    #[serde(default)]
    pub background_global_utilization: f64,
}

impl Cluster {
    /// A cluster using every node of the topology contiguously, with a
    /// neutral placement factor.
    pub fn whole_machine(topology: Topology, params: NetworkParams) -> Self {
        let allocation = Allocation::contiguous(&topology, topology.total_nodes());
        Cluster {
            topology,
            params,
            allocation,
            job_latency_factor: 1.0,
            background_global_utilization: 0.0,
        }
    }

    /// The 64-node, 32-core machine used for the paper's simulated
    /// comparisons (Sec. II-A): 4 racks of 16 nodes.
    pub fn bebop_like() -> Self {
        Cluster::whole_machine(Topology::new(16, 4), NetworkParams::bebop_like())
    }

    /// A Theta-flavored slice: 128 nodes over 8 racks (Sec. VI-E uses up
    /// to 128 nodes, 16 PPN, 1 MB messages).
    pub fn theta_like() -> Self {
        Cluster::whole_machine(Topology::new(16, 8), NetworkParams::theta_like())
    }

    /// Number of nodes available to the job.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.allocation.len()
    }

    /// Global node hosting `rank` under block rank placement (MPICH
    /// default: ranks `0..ppn` on node 0, the next `ppn` on node 1, …).
    #[inline]
    pub fn node_of_rank(&self, rank: u32, ppn: u32) -> u32 {
        self.allocation.node(rank / ppn)
    }

    /// Network layer between two ranks.
    #[inline]
    pub fn layer_between_ranks(&self, a: u32, b: u32, ppn: u32) -> Layer {
        self.topology
            .layer_between(self.node_of_rank(a, ppn), self.node_of_rank(b, ppn))
    }

    /// Latency between two ranks including the job placement factor.
    #[inline]
    pub fn latency_between_ranks(&self, a: u32, b: u32, ppn: u32) -> f64 {
        self.params
            .latency(self.layer_between_ranks(a, b, ppn), self.job_latency_factor)
    }

    /// A cluster restricted to a logical node sub-range (used to run a
    /// benchmark on part of the allocation).
    pub fn sub_cluster(&self, start_node: u32, count: u32) -> Cluster {
        Cluster {
            topology: self.topology,
            params: self.params.clone(),
            allocation: self.allocation.slice(start_node, count),
            job_latency_factor: self.job_latency_factor,
            background_global_utilization: self.background_global_utilization,
        }
    }

    /// Same machine with a different placement-latency factor.
    pub fn with_job_latency_factor(mut self, factor: f64) -> Cluster {
        assert!(factor >= 1.0, "placement can only add latency");
        self.job_latency_factor = factor;
        self
    }

    /// Same machine with a different allocation.
    pub fn with_allocation(mut self, allocation: Allocation) -> Cluster {
        self.allocation = allocation;
        self
    }

    /// Same machine with co-running jobs consuming a fraction of the
    /// layer-3 links.
    pub fn with_background_utilization(mut self, utilization: f64) -> Cluster {
        assert!(
            (0.0..1.0).contains(&utilization),
            "utilization must be in [0, 1)"
        );
        self.background_global_utilization = utilization;
        self
    }

    /// Layer-3 link bandwidth left for this job (B/µs).
    #[inline]
    pub fn effective_global_bandwidth(&self) -> f64 {
        self.params.global_link_bandwidth * (1.0 - self.background_global_utilization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_rank_placement() {
        let c = Cluster::bebop_like();
        assert_eq!(c.node_of_rank(0, 4), 0);
        assert_eq!(c.node_of_rank(3, 4), 0);
        assert_eq!(c.node_of_rank(4, 4), 1);
        assert_eq!(c.node_of_rank(63, 4), 15);
    }

    #[test]
    fn layer_between_ranks_tracks_allocation() {
        let c = Cluster::bebop_like();
        assert_eq!(c.layer_between_ranks(0, 1, 2), Layer::IntraNode);
        assert_eq!(c.layer_between_ranks(0, 2, 2), Layer::IntraRack);
        // ppn=1: rank 16 lives on node 16 = rack 1 (same pair as rack 0).
        assert_eq!(c.layer_between_ranks(0, 16, 1), Layer::IntraPair);
        // node 32 = rack 2, other pair.
        assert_eq!(c.layer_between_ranks(0, 32, 1), Layer::Global);
    }

    #[test]
    fn job_latency_factor_scales_internode_only() {
        let base = Cluster::bebop_like();
        let slow = base.clone().with_job_latency_factor(2.0);
        assert_eq!(
            slow.latency_between_ranks(0, 1, 2),
            base.latency_between_ranks(0, 1, 2),
            "intra-node latency must not change"
        );
        assert_eq!(
            slow.latency_between_ranks(0, 2, 2),
            base.latency_between_ranks(0, 2, 2) * 2.0
        );
    }

    #[test]
    fn background_utilization_derates_layer3_only() {
        let c = Cluster::bebop_like().with_background_utilization(0.5);
        assert_eq!(
            c.effective_global_bandwidth(),
            c.params.global_link_bandwidth * 0.5
        );
        let idle = Cluster::bebop_like();
        assert_eq!(
            idle.effective_global_bandwidth(),
            idle.params.global_link_bandwidth
        );
    }

    #[test]
    #[should_panic(expected = "utilization must be in")]
    fn full_utilization_rejected() {
        let _ = Cluster::bebop_like().with_background_utilization(1.0);
    }

    #[test]
    fn sub_cluster_re_addresses_nodes() {
        let c = Cluster::bebop_like();
        let s = c.sub_cluster(16, 16); // rack 1
        assert_eq!(s.num_nodes(), 16);
        assert_eq!(s.node_of_rank(0, 1), 16);
    }

    #[test]
    #[should_panic(expected = "only add latency")]
    fn latency_factor_below_one_rejected() {
        let _ = Cluster::bebop_like().with_job_latency_factor(0.5);
    }
}
