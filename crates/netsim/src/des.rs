//! Flow-level discrete-event simulator with max-min fair sharing.
//!
//! Unlike [`crate::roundsim`], ranks here progress asynchronously: a rank
//! enters its next schedule round as soon as its *own* messages of the
//! current round complete, and concurrent transfers share link bandwidth
//! max-min fairly, recomputed on every flow arrival and departure. This
//! is the classic fluid-flow network simulation. It costs O(flows ·
//! resources) per event, so it is reserved for validating the round
//! simulator on small configurations and for unit/property tests.

use crate::cluster::Cluster;
use crate::equeue::CalendarQueue;
use crate::schedule::{MaterializedSchedule, Msg};
use acclaim_obs::{Counter, Histogram, Obs};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const EPS_BYTES: f64 = 1e-6;

/// Resource index space: `mem` per node, `nic_out`/`nic_in` per node,
/// `uplink` per rack, `global` per pair.
struct ResourceMap {
    nodes: u32,
    racks: u32,
    capacity: Vec<f64>,
}

impl ResourceMap {
    fn new(cluster: &Cluster) -> Self {
        let nodes = cluster.topology.total_nodes();
        let racks = cluster.topology.num_racks;
        let pairs = cluster.topology.num_pairs();
        let p = &cluster.params;
        let mut capacity = Vec::with_capacity((3 * nodes + racks + pairs) as usize);
        capacity.extend(std::iter::repeat_n(p.mem_bandwidth, nodes as usize));
        capacity.extend(std::iter::repeat_n(p.nic_bandwidth, 2 * nodes as usize));
        capacity.extend(std::iter::repeat_n(p.rack_uplink_bandwidth, racks as usize));
        capacity.extend(std::iter::repeat_n(
            cluster.effective_global_bandwidth(),
            pairs as usize,
        ));
        ResourceMap {
            nodes,
            racks,
            capacity,
        }
    }

    fn mem(&self, node: u32) -> u32 {
        node
    }
    fn nic_out(&self, node: u32) -> u32 {
        self.nodes + node
    }
    fn nic_in(&self, node: u32) -> u32 {
        2 * self.nodes + node
    }
    fn uplink(&self, rack: u32) -> u32 {
        3 * self.nodes + rack
    }
    fn global(&self, pair: u32) -> u32 {
        3 * self.nodes + self.racks + pair
    }

    /// Resources a message between two global nodes traverses.
    fn path(&self, cluster: &Cluster, src_node: u32, dst_node: u32) -> Vec<u32> {
        if src_node == dst_node {
            return vec![self.mem(src_node)];
        }
        let topo = &cluster.topology;
        let mut path = vec![self.nic_out(src_node), self.nic_in(dst_node)];
        let (sr, dr) = (topo.rack_of(src_node), topo.rack_of(dst_node));
        if sr != dr {
            path.push(self.uplink(sr));
            path.push(self.uplink(dr));
            let (sp, dp) = (topo.pair_of(sr), topo.pair_of(dr));
            if sp != dp {
                path.push(self.global(sp));
                path.push(self.global(dp));
            }
        }
        path
    }
}

#[derive(Debug, Clone)]
struct Flow {
    msg: Msg,
    round: u32,
    path: Vec<u32>,
    /// Remaining wire bytes; negative or ~0 means the transfer finished.
    remaining: f64,
    rate: f64,
    last_update: f64,
    latency: f64,
    align: f64,
    generation: u32,
    active: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// A rank posts one send (flow index) of its current round.
    FlowStart(u32),
    /// A flow's last byte left the wire (versioned; stale ones skipped).
    TransferEnd(u32, u32),
    /// The payload reached the receiving rank (post latency + reduce).
    Delivery(u32),
}

#[derive(Debug, Clone, Copy)]
struct QueuedEvent {
    time: f64,
    seq: u64,
    event: Event,
}

// PartialEq is written out (not derived) so equality stays consistent
// with `Ord`: a derived impl would compare `time` with f64 `==`, which
// disagrees with `total_cmp` on -0.0/0.0 and NaN — the exact class of
// float-ordering divergence the PR 6 audit is after.
impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Which priority-queue implementation orders the DES event loop. Both
/// pop the pending event minimal under `(time.total_cmp, seq)`, so the
/// simulated result is bit-identical either way (asserted by the
/// `engines` equivalence tests); they differ only in host cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueEngine {
    /// Calendar (bucket) queue — amortized O(1) push/pop
    /// ([`CalendarQueue`]). The default.
    #[default]
    Calendar,
    /// The reference `std::collections::BinaryHeap` (O(log n)): kept
    /// for equivalence testing and the `bench` engine comparison.
    BinaryHeap,
}

/// The event loop's priority queue, behind the engine switch. Owns the
/// `seq` tiebreaker so pushes are totally ordered no matter the engine.
enum EventQueue {
    Calendar { seq: u64, q: CalendarQueue<Event> },
    Heap { seq: u64, q: BinaryHeap<Reverse<QueuedEvent>> },
}

impl EventQueue {
    fn new(engine: QueueEngine) -> Self {
        match engine {
            QueueEngine::Calendar => EventQueue::Calendar {
                seq: 0,
                q: CalendarQueue::new(),
            },
            QueueEngine::BinaryHeap => EventQueue::Heap {
                seq: 0,
                q: BinaryHeap::new(),
            },
        }
    }

    fn push(&mut self, time: f64, event: Event) {
        match self {
            EventQueue::Calendar { seq, q } => {
                *seq += 1;
                q.push(time, *seq, event);
            }
            EventQueue::Heap { seq, q } => {
                *seq += 1;
                q.push(Reverse(QueuedEvent {
                    time,
                    seq: *seq,
                    event,
                }));
            }
        }
    }

    fn pop(&mut self) -> Option<(f64, Event)> {
        match self {
            EventQueue::Calendar { q, .. } => q.pop().map(|(time, _, event)| (time, event)),
            EventQueue::Heap { q, .. } => q.pop().map(|Reverse(e)| (e.time, e.event)),
        }
    }
}

/// Flow-level discrete-event simulator.
#[derive(Debug, Default)]
pub struct FlowSim {
    obs: FlowSimObs,
    engine: QueueEngine,
}

/// Pre-resolved metric handles ([`FlowSim::with_obs`]); default
/// (disabled) handles drop every record.
#[derive(Debug, Default)]
struct FlowSimObs {
    calls: Counter,
    events: Counter,
    stale_events: Counter,
    flows: Counter,
    sim_us: Histogram,
    host_us: Histogram,
}

impl FlowSim {
    /// A fresh simulator.
    pub fn new() -> Self {
        FlowSim::default()
    }

    /// A simulator recording `netsim.des.*` metrics into `obs`: calls,
    /// processed and stale events, flows, and paired histograms of
    /// *simulated* completion time vs. *host* time spent computing it —
    /// the DES's two timelines side by side.
    pub fn with_obs(obs: &Obs) -> Self {
        FlowSim {
            obs: FlowSimObs {
                calls: obs.counter("netsim.des.calls"),
                events: obs.counter("netsim.des.events"),
                stale_events: obs.counter("netsim.des.stale_events"),
                flows: obs.counter("netsim.des.flows"),
                sim_us: obs.histogram("netsim.des.sim_us"),
                host_us: obs.histogram("netsim.des.host_us"),
            },
            engine: QueueEngine::default(),
        }
    }

    /// Select the event-queue engine (builder style). Results are
    /// bit-identical across engines; see [`QueueEngine`].
    pub fn with_queue(mut self, engine: QueueEngine) -> Self {
        self.engine = engine;
        self
    }

    /// The engine the event loop runs on.
    pub fn queue_engine(&self) -> QueueEngine {
        self.engine
    }

    /// Simulate one execution; returns the completion time (µs) at which
    /// every rank has finished all of its rounds.
    pub fn simulate(
        &mut self,
        cluster: &Cluster,
        ppn: u32,
        sched: &MaterializedSchedule,
    ) -> f64 {
        assert!(ppn >= 1, "ppn must be positive");
        let ranks = sched.num_ranks;
        assert!(
            ranks <= cluster.num_nodes() * ppn,
            "schedule needs {ranks} ranks but allocation provides {}x{ppn}",
            cluster.num_nodes()
        );
        let host_start = std::time::Instant::now();
        self.obs.calls.incr();
        let n_rounds = sched.rounds.len() as u32;
        if n_rounds == 0 || ranks == 0 {
            self.obs.sim_us.record(0.0);
            self.obs
                .host_us
                .record(host_start.elapsed().as_secs_f64() * 1e6);
            return 0.0;
        }

        let resources = ResourceMap::new(cluster);
        let params = &cluster.params;

        // Flows, indexed flat across rounds, plus per-(rank, round)
        // bookkeeping: how many of the rank's messages remain, and which
        // sends it must post upon entering the round.
        let mut flows: Vec<Flow> = Vec::new();
        let mut pending = vec![vec![0u32; ranks as usize]; n_rounds as usize];
        let mut sends: Vec<Vec<Vec<u32>>> =
            vec![vec![Vec::new(); ranks as usize]; n_rounds as usize];
        for (k, round) in sched.rounds.iter().enumerate() {
            for m in round {
                let sn = cluster.node_of_rank(m.src, ppn);
                let dn = cluster.node_of_rank(m.dst, ppn);
                let layer = cluster.topology.layer_between(sn, dn);
                let wire = if sn == dn {
                    m.bytes
                } else {
                    params.wire_bytes(m.bytes)
                };
                let id = flows.len() as u32;
                flows.push(Flow {
                    msg: *m,
                    round: k as u32,
                    path: resources.path(cluster, sn, dn),
                    remaining: wire as f64,
                    rate: 0.0,
                    last_update: 0.0,
                    latency: params.latency(layer, cluster.job_latency_factor)
                        + params.alignment_latency(m.bytes),
                    align: params.bandwidth_derating(m.bytes),
                    generation: 0,
                    active: false,
                });
                pending[k][m.src as usize] += 1;
                pending[k][m.dst as usize] += 1;
                sends[k][m.src as usize].push(id);
            }
        }

        let mut queue = EventQueue::new(self.engine);

        // Rank state: the round each rank currently occupies (or n_rounds
        // when done). Entering a round posts its sends with serialized
        // CPU overhead.
        let mut rank_round = vec![0u32; ranks as usize];
        let mut active_flows: Vec<u32> = Vec::new();
        let mut finish = 0.0f64;

        // Enter a rank into its next round with pending work, posting
        // sends. Returns without scheduling anything once the rank is
        // done. Recv-only rounds whose deliveries already happened are
        // skipped over.
        #[allow(clippy::too_many_arguments)] // local helper over loop state
        fn enter_rounds(
            rank: u32,
            now: f64,
            n_rounds: u32,
            cpu_overhead: f64,
            rank_round: &mut [u32],
            pending: &[Vec<u32>],
            sends: &[Vec<Vec<u32>>],
            queue: &mut EventQueue,
        ) {
            loop {
                let k = rank_round[rank as usize];
                if k >= n_rounds {
                    return;
                }
                if pending[k as usize][rank as usize] == 0 {
                    rank_round[rank as usize] += 1;
                    continue;
                }
                // Post this round's sends; recvs complete via Delivery.
                for (i, &fid) in sends[k as usize][rank as usize].iter().enumerate() {
                    queue.push(now + (i + 1) as f64 * cpu_overhead, Event::FlowStart(fid));
                }
                return;
            }
        }

        for r in 0..ranks {
            enter_rounds(
                r,
                0.0,
                n_rounds,
                params.cpu_overhead_us,
                &mut rank_round,
                &pending,
                &sends,
                &mut queue,
            );
        }

        self.obs.flows.add(flows.len() as u64);
        while let Some((time, event)) = queue.pop() {
            self.obs.events.incr();
            finish = finish.max(time);
            match event {
                Event::FlowStart(fid) => {
                    {
                        let f = &mut flows[fid as usize];
                        f.active = true;
                        f.last_update = time;
                    }
                    active_flows.push(fid);
                    recompute_rates(time, &mut flows, &mut active_flows, &resources, |t, f, g| {
                        queue.push(t, Event::TransferEnd(f, g))
                    });
                }
                Event::TransferEnd(fid, generation) => {
                    let f = &flows[fid as usize];
                    if !f.active || f.generation != generation {
                        self.obs.stale_events.incr();
                        continue; // stale event from a superseded rate
                    }
                    let elapsed = time - f.last_update;
                    if f.remaining - f.rate * elapsed > EPS_BYTES {
                        self.obs.stale_events.incr();
                        continue; // stale: rate dropped since scheduling
                    }
                    let latency = f.latency;
                    let src = f.msg.src;
                    let round = f.round;
                    flows[fid as usize].active = false;
                    active_flows.retain(|&x| x != fid);
                    recompute_rates(time, &mut flows, &mut active_flows, &resources, |t, f, g| {
                        queue.push(t, Event::TransferEnd(f, g))
                    });
                    // Sender completes its message at wire drain.
                    complete_message(
                        src,
                        round,
                        time,
                        n_rounds,
                        params.cpu_overhead_us,
                        &mut rank_round,
                        &mut pending,
                        &sends,
                        &mut queue,
                    );
                    queue.push(time + latency, Event::Delivery(fid));
                }
                Event::Delivery(fid) => {
                    let f = &flows[fid as usize];
                    let done = time
                        + params.reduce_time(f.msg.reduce_bytes)
                        + params.cpu_overhead_us;
                    let dst = f.msg.dst;
                    let round = f.round;
                    finish = finish.max(done);
                    complete_message(
                        dst,
                        round,
                        done,
                        n_rounds,
                        params.cpu_overhead_us,
                        &mut rank_round,
                        &mut pending,
                        &sends,
                        &mut queue,
                    );
                }
            }
        }

        debug_assert!(
            pending.iter().all(|r| r.iter().all(|&p| p == 0)),
            "DES finished with undelivered messages"
        );
        finish += crate::roundsim::epilogue_time(cluster, ppn, sched.epilogue_local_bytes);

        #[allow(clippy::too_many_arguments)]
        fn complete_message(
            rank: u32,
            round: u32,
            now: f64,
            n_rounds: u32,
            cpu_overhead: f64,
            rank_round: &mut [u32],
            pending: &mut [Vec<u32>],
            sends: &[Vec<Vec<u32>>],
            queue: &mut EventQueue,
        ) {
            let p = &mut pending[round as usize][rank as usize];
            debug_assert!(*p > 0, "double completion for rank {rank} round {round}");
            *p -= 1;
            if *p == 0 && rank_round[rank as usize] == round {
                rank_round[rank as usize] = round + 1;
                enter_rounds(
                    rank, now, n_rounds, cpu_overhead, rank_round, pending, sends, queue,
                );
            }
        }

        self.obs.sim_us.record(finish);
        self.obs
            .host_us
            .record(host_start.elapsed().as_secs_f64() * 1e6);
        finish
    }
}

/// Max-min fair (progressive-filling) rate assignment over the active
/// flows, then reschedule each flow's transfer-end event.
fn recompute_rates(
    now: f64,
    flows: &mut [Flow],
    active: &mut [u32],
    resources: &ResourceMap,
    mut schedule_end: impl FnMut(f64, u32, u32),
) {
    // Age every active flow to `now`.
    for &fid in active.iter() {
        let f = &mut flows[fid as usize];
        f.remaining -= f.rate * (now - f.last_update);
        f.last_update = now;
    }

    // Progressive filling.
    let mut remaining_cap = resources.capacity.clone();
    let mut counts = vec![0u32; resources.capacity.len()];
    for &fid in active.iter() {
        for &r in &flows[fid as usize].path {
            counts[r as usize] += 1;
        }
    }
    let mut unassigned: Vec<u32> = active.to_vec();
    while !unassigned.is_empty() {
        // Bottleneck resource: minimal fair share among contended ones.
        let mut best: Option<(u32, f64)> = None;
        for (r, &c) in counts.iter().enumerate() {
            if c > 0 {
                let share = remaining_cap[r] / c as f64;
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((r as u32, share));
                }
            }
        }
        let (bottleneck, fair) = best.expect("unassigned flows imply a contended resource");
        let mut still = Vec::with_capacity(unassigned.len());
        for fid in unassigned {
            let on_bottleneck = flows[fid as usize].path.contains(&bottleneck);
            if on_bottleneck {
                flows[fid as usize].rate = fair * flows[fid as usize].align;
                for &r in &flows[fid as usize].path {
                    remaining_cap[r as usize] -= fair;
                    counts[r as usize] -= 1;
                }
            } else {
                still.push(fid);
            }
        }
        unassigned = still;
    }

    // Reschedule completions under the new rates.
    for &fid in active.iter() {
        let f = &mut flows[fid as usize];
        f.generation += 1;
        let dt = if f.remaining <= EPS_BYTES {
            0.0
        } else {
            f.remaining / f.rate
        };
        schedule_end(now + dt, fid, f.generation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roundsim::RoundSim;
    use crate::schedule::{MaterializedSchedule, Msg};

    fn sched(num_ranks: u32, rounds: Vec<Vec<Msg>>) -> MaterializedSchedule {
        let s = MaterializedSchedule::new(num_ranks, rounds);
        s.validate().expect("well-formed");
        s
    }

    #[test]
    fn empty_schedule_is_free() {
        let c = Cluster::bebop_like();
        assert_eq!(FlowSim::new().simulate(&c, 1, &sched(2, vec![])), 0.0);
    }

    #[test]
    fn single_message_matches_roundsim_closely() {
        let c = Cluster::bebop_like();
        let s = sched(2, vec![vec![Msg::data(0, 1, 65_536)]]);
        let des = FlowSim::new().simulate(&c, 1, &s);
        let rs = RoundSim::new().simulate(&c, 1, &s);
        // Identical physics for a lone flow, up to CPU accounting (the
        // DES charges both endpoints' overhead explicitly).
        assert!(
            (des - rs).abs() < 3.0 * c.params.cpu_overhead_us,
            "des={des} roundsim={rs}"
        );
    }

    #[test]
    fn contending_flows_share_bandwidth() {
        let c = Cluster::bebop_like();
        let lone = sched(4, vec![vec![Msg::data(0, 2, 1 << 20)]]);
        let shared = sched(
            4,
            vec![vec![Msg::data(0, 2, 1 << 20), Msg::data(1, 3, 1 << 20)]],
        );
        let mut sim = FlowSim::new();
        let t1 = sim.simulate(&c, 2, &lone);
        let t2 = sim.simulate(&c, 2, &shared);
        assert!(t2 > 1.7 * t1, "NIC sharing must slow both flows: {t1} vs {t2}");
    }

    #[test]
    fn disjoint_flows_run_concurrently() {
        let c = Cluster::bebop_like();
        let lone = sched(4, vec![vec![Msg::data(0, 1, 1 << 20)]]);
        let par = sched(
            4,
            vec![vec![Msg::data(0, 1, 1 << 20), Msg::data(2, 3, 1 << 20)]],
        );
        let mut sim = FlowSim::new();
        let t1 = sim.simulate(&c, 1, &lone);
        let t2 = sim.simulate(&c, 1, &par);
        assert!(
            (t2 - t1).abs() < 2.0 * c.params.cpu_overhead_us,
            "disjoint flows must not slow each other: {t1} vs {t2}"
        );
    }

    #[test]
    fn dependent_rounds_serialize_per_rank() {
        let c = Cluster::bebop_like();
        // Relay 0 -> 1 -> 2: round 2 cannot start before rank 1 receives.
        let relay = sched(
            3,
            vec![
                vec![Msg::data(0, 1, 1 << 20)],
                vec![Msg::data(1, 2, 1 << 20)],
            ],
        );
        let single = sched(3, vec![vec![Msg::data(0, 1, 1 << 20)]]);
        let mut sim = FlowSim::new();
        let t_relay = sim.simulate(&c, 1, &relay);
        let t_single = sim.simulate(&c, 1, &single);
        assert!(t_relay > 1.9 * t_single, "relay must serialize: {t_relay} vs {t_single}");
    }

    #[test]
    fn asynchronous_progress_beats_global_rounds() {
        let c = Cluster::bebop_like();
        // Round 1 has a huge and a tiny message; round 2's tiny message
        // (between the tiny pair) need not wait for the huge transfer.
        let s = sched(
            4,
            vec![
                vec![Msg::data(0, 1, 8 << 20), Msg::data(2, 3, 64)],
                vec![Msg::data(3, 2, 64)],
            ],
        );
        let des = FlowSim::new().simulate(&c, 1, &s);
        let rs = RoundSim::new().simulate(&c, 1, &s);
        assert!(des < rs, "DES ({des}) should finish before roundsim ({rs})");
    }

    #[test]
    fn reduction_delays_receiver() {
        let c = Cluster::bebop_like();
        let plain = sched(2, vec![vec![Msg::data(0, 1, 1 << 20)]]);
        let reducing = sched(2, vec![vec![Msg::reducing(0, 1, 1 << 20)]]);
        let mut sim = FlowSim::new();
        let tp = sim.simulate(&c, 1, &plain);
        let tr = sim.simulate(&c, 1, &reducing);
        let extra = c.params.reduce_time(1 << 20);
        assert!((tr - tp - extra).abs() < 1e-6, "tp={tp} tr={tr} extra={extra}");
    }

    #[test]
    fn queue_engines_are_bit_identical() {
        let c = Cluster::bebop_like();
        let scheds = [
            sched(2, vec![vec![Msg::data(0, 1, 65_536)]]),
            sched(
                4,
                vec![vec![Msg::data(0, 2, 1 << 20), Msg::data(1, 3, 1 << 20)]],
            ),
            sched(
                8,
                vec![
                    vec![Msg::data(0, 4, 1 << 16)],
                    vec![Msg::data(0, 2, 1 << 16), Msg::data(4, 6, 1 << 16)],
                    vec![
                        Msg::data(0, 1, 1 << 16),
                        Msg::data(2, 3, 1 << 16),
                        Msg::data(4, 5, 1 << 16),
                        Msg::data(6, 7, 1 << 16),
                    ],
                ],
            ),
        ];
        for (i, s) in scheds.iter().enumerate() {
            for ppn in [1, 2] {
                let cal = FlowSim::new()
                    .with_queue(QueueEngine::Calendar)
                    .simulate(&c, ppn, s);
                let heap = FlowSim::new()
                    .with_queue(QueueEngine::BinaryHeap)
                    .simulate(&c, ppn, s);
                assert_eq!(
                    cal.to_bits(),
                    heap.to_bits(),
                    "engines diverged on schedule {i} ppn {ppn}: {cal} vs {heap}"
                );
            }
        }
        assert_eq!(FlowSim::new().queue_engine(), QueueEngine::Calendar);
    }

    #[test]
    fn agrees_with_roundsim_on_binomial_like_pattern() {
        let c = Cluster::bebop_like();
        // A 8-rank binomial bcast pattern, ppn=1.
        let s = sched(
            8,
            vec![
                vec![Msg::data(0, 4, 1 << 16)],
                vec![Msg::data(0, 2, 1 << 16), Msg::data(4, 6, 1 << 16)],
                vec![
                    Msg::data(0, 1, 1 << 16),
                    Msg::data(2, 3, 1 << 16),
                    Msg::data(4, 5, 1 << 16),
                    Msg::data(6, 7, 1 << 16),
                ],
            ],
        );
        let des = FlowSim::new().simulate(&c, 1, &s);
        let rs = RoundSim::new().simulate(&c, 1, &s);
        let ratio = des / rs;
        assert!(
            (0.7..=1.3).contains(&ratio),
            "engines disagree: des={des} roundsim={rs}"
        );
    }
}
