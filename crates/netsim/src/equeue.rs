//! Calendar (bucket) event queue for the DES (the PR 6 tentpole's
//! netsim half).
//!
//! A discrete-event simulator's pending-event set is accessed in a very
//! particular pattern: pops are strictly time-ordered, and pushes only
//! ever land at or after the most recent pop (causality — an event can
//! schedule consequences, not history). Randal Brown's *calendar queue*
//! exploits that: hash events into time buckets of fixed `width` (days
//! of a circular calendar year) and drain buckets in order, so push and
//! pop are amortized O(1) instead of a binary heap's O(log n).
//!
//! Order contract: [`CalendarQueue::pop`] returns the pending entry
//! that is minimal under `(time.total_cmp, seq)` — *exactly* the total
//! order `des.rs`'s `BinaryHeap<Reverse<QueuedEvent>>` pops in, so
//! swapping engines never reorders ties (equal times pop in push
//! order via the strictly increasing `seq`). The `engines` and
//! workspace equivalence tests assert that simulated results are
//! bit-identical between the two.
//!
//! Implementation notes, for the invariants the DES relies on:
//!
//! * An entry with timestamp `t` lives in virtual bucket
//!   `vb = floor(t / width)`, stored at physical bucket `vb mod n`.
//! * `cur` tracks the virtual bucket being drained and is kept `<=`
//!   the minimum pending entry's virtual bucket (pushes lower it if
//!   needed), so a forward scan that finds a bucket whose minimum is
//!   in-year has found the global minimum's bucket.
//! * Each bucket ("day") is itself a small min-heap ordered by
//!   `(time, seq)` — see `Day` for why a linear-scan bucket is
//!   disastrous on this DES's burst-heavy timestamps.
//! * If a whole calendar year is empty (sparse far-future events), the
//!   queue jumps `cur` directly to the global minimum's bucket instead
//!   of spinning through empty years.
//! * The queue doubles its bucket count when buckets get crowded,
//!   re-estimating `width` from the observed event-time span so that a
//!   bucket holds a small constant number of entries.
//! * **Self-calibration.** A span-based width is wrong whenever event
//!   times are not uniform — the DES's never are (bursts of
//!   simultaneous deliveries, then µs-long gaps). A width that is too
//!   *narrow* makes every pop walk hundreds of empty buckets to reach
//!   the next event; too *wide* funnels everything into a handful of
//!   crowded days and the calendar degenerates to its day-heaps. Both
//!   pathologies are visible in the queue's own operation costs, so
//!   `pop` counts buckets probed and day sizes drained from, and
//!   periodically (every `CALIBRATE_POPS` pops, stretched for large
//!   queues so the O(len) rehash stays amortized) widens or narrows
//!   `width` when either average crosses its threshold. This is the
//!   operational-cost self-tuning of the SNOOPy calendar queue,
//!   without which the classic structure degrades far below a binary
//!   heap on bursty schedules (measured >50x slower before this fix
//!   at 128-rank recursive-doubling traces).
//!
//! Timestamps must be finite and non-negative (the DES only produces
//! such); `seq` values must be unique per queue.

use std::cmp::Reverse;

/// Initial physical bucket count (doubled as the queue grows).
const INITIAL_BUCKETS: usize = 16;
/// Cap on the bucket count (keeps the empty-year scan bounded).
const MAX_BUCKETS: usize = 1 << 16;
/// Pops between self-calibration checks (amortizes the O(len) rehash).
const CALIBRATE_POPS: u64 = 256;
/// Recalibrate when a pop probes more than this many buckets on
/// average (width too narrow: the calendar is mostly empty days).
const MAX_PROBES_PER_POP: f64 = 4.0;
/// Recalibrate when the day popped from holds more than this many
/// entries on average (width too wide: distinct times crowd one day).
const MAX_SCANNED_PER_POP: f64 = 12.0;

#[derive(Debug, Clone)]
struct Entry<T> {
    time: f64,
    seq: u64,
    item: T,
}

// `(time.total_cmp, seq)` is a total order (`seq` is unique), written
// out so `Eq`/`Ord` stay consistent — the same float-ordering shape as
// `des.rs`'s `QueuedEvent`.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// One calendar day: a min-heap (via [`Reverse`]) over its entries.
///
/// A plain `Vec` day degrades catastrophically on the DES's workload:
/// synchronized rounds give *many flows the identical end time* (one
/// `recompute_rates` pass reschedules every active flow under equal
/// shares), and no bucket width can separate equal timestamps — the
/// burst lands in one bucket whose linear min-scan makes draining it
/// quadratic. A heap per day keeps the calendar's O(1) bucket
/// selection and bounds within-day cost at O(log burst); the worst
/// case (everything in one day) degrades to exactly a binary heap,
/// never below it.
type Day<T> = std::collections::BinaryHeap<Reverse<Entry<T>>>;

/// An amortized-O(1) calendar priority queue over `(time, seq, item)`
/// entries, popping in ascending `(time.total_cmp, seq)` order.
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    buckets: Vec<Day<T>>,
    /// Time width of one bucket (µs); adapted when the queue grows and
    /// by the pop-cost self-calibration.
    width: f64,
    /// `1.0 / width`, cached for the hot `vb` computation.
    inv_width: f64,
    /// Virtual bucket currently being drained; `<=` every pending
    /// entry's virtual bucket.
    cur: u64,
    len: usize,
    /// Buckets probed by pops since the last calibration check.
    probes: u64,
    /// Sizes of the days popped from since the last calibration check
    /// (a crowding signal; day pops themselves cost O(log size)).
    scanned: u64,
    /// Pops since the last calibration check.
    pops: u64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// An empty queue with a 1 µs initial bucket width (the width
    /// re-calibrates automatically as the queue fills).
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Day::new()).collect(),
            width: 1.0,
            inv_width: 1.0,
            cur: 0,
            len: 0,
            probes: 0,
            scanned: 0,
            pops: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Virtual bucket of a timestamp. The cast saturates for times far
    /// beyond any simulation horizon. Computed by reciprocal multiply —
    /// `pop` probes call this in its hot loop, and the result only
    /// steers bucketing (pop *order* comes from `(time, seq)`), so the
    /// reciprocal's rounding is harmless as long as it is consistent
    /// between push and pop — it is: both go through this function and
    /// `inv_width` only changes on rehash, which re-buckets everything.
    fn vb(&self, time: f64) -> u64 {
        (time * self.inv_width) as u64
    }

    /// Insert an entry. `seq` must be unique; `time` finite and
    /// non-negative.
    pub fn push(&mut self, time: f64, seq: u64, item: T) {
        let vb = self.vb(time);
        if self.len == 0 || vb < self.cur {
            self.cur = vb;
        }
        let mask = self.buckets.len() - 1;
        self.buckets[vb as usize & mask].push(Reverse(Entry { time, seq, item }));
        self.len += 1;
        if self.len > 4 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.grow();
        }
    }

    /// Remove and return the minimum entry under `(time.total_cmp,
    /// seq)`, or `None` when empty.
    pub fn pop(&mut self) -> Option<(f64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        self.pops += 1;
        let n = self.buckets.len();
        let mask = n - 1;
        // Drain the calendar forward: the first bucket whose day-heap
        // minimum is in-year holds the global minimum (every pending
        // entry's virtual bucket is >= `cur`, and a day's later-year
        // entries all sort after its in-year ones).
        for _ in 0..n {
            self.probes += 1;
            let b = self.cur as usize & mask;
            let in_year = match self.buckets[b].peek() {
                Some(Reverse(e)) => self.vb(e.time) <= self.cur,
                None => false,
            };
            if in_year {
                self.scanned += self.buckets[b].len() as u64;
                let Reverse(e) = self.buckets[b].pop().expect("peeked entry");
                self.len -= 1;
                self.maybe_calibrate();
                return Some((e.time, e.seq, e.item));
            }
            self.cur += 1;
        }
        // A whole year was empty: jump straight to the global minimum.
        self.probes += n as u64;
        let b = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(b, day)| day.peek().map(|Reverse(e)| (b, e)))
            .min_by(|(_, x), (_, y)| x.cmp(y))
            .map(|(b, _)| b)
            .expect("non-empty queue must hold a minimum");
        let Reverse(e) = self.buckets[b].pop().expect("chosen day is non-empty");
        self.cur = self.vb(e.time);
        self.len -= 1;
        self.maybe_calibrate();
        Some((e.time, e.seq, e.item))
    }

    /// Every [`CALIBRATE_POPS`] pops, compare the average pop cost
    /// against the thresholds and rehash with a wider (mostly-empty
    /// calendar) or narrower (crowded-bucket) `width` as indicated.
    /// Pop *order* is unaffected — the `(time, seq)` comparison never
    /// changes — so this is invisible to the engine-equivalence tests
    /// except as host time.
    fn maybe_calibrate(&mut self) {
        // Space checks by queue size as well as pop count: a rehash is
        // O(len log), so a large queue must earn it over more pops.
        if self.pops < CALIBRATE_POPS.max(self.len as u64) {
            return;
        }
        let probes = self.probes as f64 / self.pops as f64;
        let scanned = self.scanned as f64 / self.pops as f64;
        self.probes = 0;
        self.scanned = 0;
        self.pops = 0;
        if self.len < 2 {
            return;
        }
        if probes > MAX_PROBES_PER_POP {
            // Days are mostly empty: widen so the typical forward scan
            // reaches the next event within a few buckets.
            let factor = (probes / 2.0).min(1024.0);
            self.rehash(self.buckets.len(), self.width * factor);
        } else if scanned > MAX_SCANNED_PER_POP {
            // Bursts pile into one day: narrow, but never below a femto-
            // second — truly simultaneous events cannot be separated by
            // any width, and the floor stops narrowing from chasing them.
            let factor = (scanned / 4.0).min(1024.0);
            let w = (self.width / factor).max(1e-9);
            if w < self.width {
                self.rehash(self.buckets.len(), w);
            }
        }
    }

    /// Double the bucket count, re-estimating `width` so a bucket holds
    /// a few entries, and rehash.
    fn grow(&mut self) {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for Reverse(e) in self.buckets.iter().flatten() {
            lo = lo.min(e.time);
            hi = hi.max(e.time);
        }
        let span = hi - lo;
        let mut width = self.width;
        if span.is_finite() && span > 0.0 {
            let w = 2.0 * span / self.len as f64;
            if w.is_finite() && w > 0.0 {
                width = w;
            }
        }
        self.rehash(self.buckets.len() * 2, width);
    }

    /// Redistribute every entry over `n` buckets of time width `width`.
    fn rehash(&mut self, n: usize, width: f64) {
        debug_assert!(n.is_power_of_two(), "bucket count must stay a power of two");
        let entries: Vec<Reverse<Entry<T>>> = self
            .buckets
            .iter_mut()
            .flat_map(std::mem::take)
            .collect();
        if self.buckets.len() != n {
            self.buckets = (0..n).map(|_| Day::new()).collect();
        }
        self.width = width;
        self.inv_width = 1.0 / width;
        self.len = 0;
        self.cur = 0;
        let mask = n - 1;
        for e in entries {
            let vb = self.vb(e.0.time);
            if self.len == 0 || vb < self.cur {
                self.cur = vb;
            }
            self.buckets[vb as usize & mask].push(e);
            self.len += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Mirror of the DES heap ordering for the oracle.
    #[derive(Debug, Clone, Copy)]
    struct Key(f64, u64);
    impl PartialEq for Key {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == std::cmp::Ordering::Equal
        }
    }
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(5.0, 1, "a");
        q.push(1.0, 2, "b");
        q.push(5.0, 3, "c");
        q.push(0.5, 4, "d");
        assert_eq!(q.len(), 4);
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, x)| x)).collect();
        assert_eq!(order, ["d", "b", "a", "c"]);
        assert!(q.is_empty() && q.pop().is_none());
    }

    #[test]
    fn equal_times_pop_in_push_order() {
        let mut q = CalendarQueue::new();
        for seq in 1..=100u64 {
            q.push(3.25, seq, seq);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, _, x)| x)).collect();
        assert_eq!(popped, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn sparse_far_future_events_jump_years() {
        let mut q = CalendarQueue::new();
        // Gaps of many calendar years at the initial width.
        q.push(1_000_000.0, 1, 1);
        q.push(0.0, 2, 2);
        q.push(50_000.0, 3, 3);
        assert_eq!(q.pop().map(|(_, _, x)| x), Some(2));
        assert_eq!(q.pop().map(|(_, _, x)| x), Some(3));
        assert_eq!(q.pop().map(|(_, _, x)| x), Some(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn grow_preserves_every_entry_and_order() {
        let mut q = CalendarQueue::new();
        // Enough entries to force several doublings.
        let mut seq = 0u64;
        for i in 0..2_000u64 {
            seq += 1;
            // A deterministic scatter of times with duplicates.
            let t = (i.wrapping_mul(0x9e37_79b9) % 977) as f64 * 0.37;
            q.push(t, seq, (t, seq));
        }
        let mut prev: Option<(f64, u64)> = None;
        let mut count = 0;
        while let Some((t, s, _)) = q.pop() {
            if let Some((pt, ps)) = prev {
                assert!(
                    pt.total_cmp(&t).then(ps.cmp(&s)).is_lt(),
                    "order violated: ({pt},{ps}) before ({t},{s})"
                );
            }
            prev = Some((t, s));
            count += 1;
        }
        assert_eq!(count, 2_000);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Against a `BinaryHeap` oracle under the DES access pattern:
        /// interleaved pushes (never in the popped past) and pops must
        /// yield the identical sequence.
        #[test]
        fn matches_binary_heap_oracle(
            ops in proptest::collection::vec((0.0f64..50.0, 1u32..6), 1..200),
        ) {
            let mut q = CalendarQueue::new();
            let mut oracle: BinaryHeap<Reverse<(Key, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0.0f64;
            for (dt, burst) in ops {
                for k in 0..burst {
                    seq += 1;
                    let t = now + dt * (k as f64 + 1.0) / burst as f64;
                    q.push(t, seq, seq);
                    oracle.push(Reverse((Key(t, seq), seq)));
                }
                // Drain a couple to advance simulated time.
                for _ in 0..2 {
                    let got = q.pop();
                    let want = oracle.pop();
                    match (got, want) {
                        (None, None) => {}
                        (Some((t, s, item)), Some(Reverse((Key(wt, ws), witem)))) => {
                            prop_assert_eq!(t.to_bits(), wt.to_bits());
                            prop_assert_eq!(s, ws);
                            prop_assert_eq!(item, witem);
                            now = t;
                        }
                        other => prop_assert!(false, "queues diverged: {other:?}"),
                    }
                }
            }
            // Final drain must agree entry for entry.
            loop {
                match (q.pop(), oracle.pop()) {
                    (None, None) => break,
                    (Some((t, s, _)), Some(Reverse((Key(wt, ws), _)))) => {
                        prop_assert_eq!(t.to_bits(), wt.to_bits());
                        prop_assert_eq!(s, ws);
                    }
                    other => prop_assert!(false, "drain diverged: {other:?}"),
                }
            }
        }
    }
}
