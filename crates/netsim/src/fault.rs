//! Deterministic, seeded fault model for data collection.
//!
//! The paper's production story (Sec. IV-D) accepts a noisy shared
//! machine: Theta microbenchmarks run next to other jobs and compensate
//! by repeating measurements. [`crate::NoiseModel`] covers the *benign*
//! end of that spectrum — jitter that perturbs a measurement but lets it
//! complete. This module covers the rest of it:
//!
//! * **benchmark failures** — a run crashes or is killed (job preemption,
//!   OOM, transient launch errors) and returns nothing;
//! * **stragglers** — a run completes but takes a heavy-tailed multiple
//!   of its expected time (severe congestion, a slow node), contaminating
//!   the measurement and possibly exceeding the collector's timeout;
//! * **node hard failures** — a node of the allocation dies at a given
//!   onset time and never comes back, shrinking the allocation for every
//!   subsequent wave.
//!
//! Like the noise model, every draw is driven by a caller-provided seeded
//! RNG, so identical seeds reproduce identical fault schedules.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A whole-node hard failure: global node id `node` dies at `onset_us`
/// of simulated collection time and is excluded from the allocation for
/// every wave scheduled after that instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeFailure {
    /// Global node id (as held by the job's `Allocation`).
    pub node: u32,
    /// Simulated collection time at which the node dies (µs).
    pub onset_us: f64,
}

/// The outcome the fault model assigns to one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BenchFault {
    /// The run behaves normally.
    None,
    /// The run completes, but both its wall time and its reported
    /// measurement are inflated by this factor (> 1).
    Straggle(f64),
    /// The run fails outright and returns no measurement.
    Fail,
}

/// Deterministic per-benchmark fault injection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Probability that a single benchmark run fails outright.
    pub failure_probability: f64,
    /// Probability that a run straggles (heavy-tail congestion).
    pub straggler_probability: f64,
    /// Upper bound of the straggler multiplier (≥ 1). A straggling run
    /// draws its factor log-uniformly from `[1, straggler_factor]`, so
    /// mild contamination is more common than a full-blown stall.
    pub straggler_factor: f64,
    /// Scheduled whole-node hard failures.
    #[serde(default)]
    pub node_failures: Vec<NodeFailure>,
}

impl FaultModel {
    /// No faults at all.
    pub fn none() -> Self {
        FaultModel {
            failure_probability: 0.0,
            straggler_probability: 0.0,
            straggler_factor: 1.0,
            node_failures: Vec::new(),
        }
    }

    /// Production-grade injection: 5% of runs fail, 15% straggle with a
    /// tail reaching 8x — roughly half of the stragglers blow through a
    /// 3x collection timeout, the rest contaminate their measurement.
    pub fn production() -> Self {
        FaultModel {
            failure_probability: 0.05,
            straggler_probability: 0.15,
            straggler_factor: 8.0,
            node_failures: Vec::new(),
        }
    }

    /// Add a scheduled node hard failure.
    pub fn with_node_failure(mut self, node: u32, onset_us: f64) -> Self {
        assert!(onset_us >= 0.0, "onset cannot precede the job");
        self.node_failures.push(NodeFailure { node, onset_us });
        self
    }

    /// True when this model can inject anything.
    pub fn is_enabled(&self) -> bool {
        self.failure_probability > 0.0
            || self.straggler_probability > 0.0
            || !self.node_failures.is_empty()
    }

    /// Draw the fault outcome of one benchmark run.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> BenchFault {
        if self.failure_probability > 0.0 && rng.random::<f64>() < self.failure_probability {
            return BenchFault::Fail;
        }
        if self.straggler_probability > 0.0 && rng.random::<f64>() < self.straggler_probability {
            let factor = self.straggler_factor.max(1.0).powf(rng.random::<f64>());
            return BenchFault::Straggle(factor);
        }
        BenchFault::None
    }

    /// Global node ids whose failure onset is at or before `now_us`.
    pub fn dead_nodes_at(&self, now_us: f64) -> Vec<u32> {
        self.node_failures
            .iter()
            .filter(|f| f.onset_us <= now_us)
            .map(|f| f.node)
            .collect()
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn disabled_model_never_faults() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = FaultModel::none();
        assert!(!f.is_enabled());
        for _ in 0..64 {
            assert_eq!(f.draw(&mut rng), BenchFault::None);
        }
    }

    #[test]
    fn fault_rates_match_configuration() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = FaultModel {
            failure_probability: 0.10,
            straggler_probability: 0.20,
            straggler_factor: 8.0,
            node_failures: Vec::new(),
        };
        let n = 50_000;
        let mut fails = 0usize;
        let mut straggles = 0usize;
        for _ in 0..n {
            match f.draw(&mut rng) {
                BenchFault::Fail => fails += 1,
                BenchFault::Straggle(m) => {
                    assert!((1.0..=8.0).contains(&m), "multiplier {m} out of range");
                    straggles += 1;
                }
                BenchFault::None => {}
            }
        }
        let fail_rate = fails as f64 / n as f64;
        // Straggle draws happen only on non-failing runs.
        let straggle_rate = straggles as f64 / (n - fails) as f64;
        assert!((fail_rate - 0.10).abs() < 0.01, "fail rate {fail_rate}");
        assert!((straggle_rate - 0.20).abs() < 0.01, "straggle rate {straggle_rate}");
    }

    #[test]
    fn straggler_tail_is_log_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = FaultModel {
            failure_probability: 0.0,
            straggler_probability: 1.0,
            straggler_factor: 8.0,
            node_failures: Vec::new(),
        };
        let mut above_3x = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if let BenchFault::Straggle(m) = f.draw(&mut rng) {
                if m > 3.0 {
                    above_3x += 1;
                }
            }
        }
        // P(8^u > 3) = 1 - ln3/ln8 ≈ 0.4717.
        let rate = above_3x as f64 / n as f64;
        assert!((rate - 0.4717).abs() < 0.02, "tail rate {rate}");
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let f = FaultModel::production();
        let draw_all = |seed: u64| -> Vec<BenchFault> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..128).map(|_| f.draw(&mut rng)).collect()
        };
        assert_eq!(draw_all(9), draw_all(9));
    }

    #[test]
    fn dead_nodes_respect_onset() {
        let f = FaultModel::none()
            .with_node_failure(3, 100.0)
            .with_node_failure(7, 500.0);
        assert!(f.is_enabled());
        assert!(f.dead_nodes_at(0.0).is_empty());
        assert_eq!(f.dead_nodes_at(100.0), vec![3]);
        assert_eq!(f.dead_nodes_at(1e9), vec![3, 7]);
    }
}
