//! Stable 64-bit fingerprints for cluster configuration.
//!
//! The persistent tuning store (`acclaim-store`) keys cached
//! measurements and models by a *cluster signature*; the components
//! contributed by this crate — network parameters, noise model, fault
//! preset — are hashed here. The hash must be stable across runs,
//! processes, and machines, so the implementation is a fixed FNV-1a
//! over the raw field bits rather than `std::hash` (whose `Hasher`
//! choice and seeding are unspecified) or a serialized text form
//! (whose formatting could drift).
//!
//! Floats are hashed by their IEEE-754 bit patterns: two parameter sets
//! compare equal under a fingerprint exactly when every field is
//! bit-identical, which is the store's invalidation criterion — any
//! parameter drift must read as a different machine.

use crate::cluster::Cluster;
use crate::fault::FaultModel;
use crate::noise::NoiseModel;
use crate::params::NetworkParams;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x1_0000_0000_01b3;

/// A streaming FNV-1a hasher producing stable 64-bit fingerprints.
///
/// ```
/// use acclaim_netsim::fingerprint::Fingerprint;
///
/// let mut f = Fingerprint::new();
/// f.write_u64(42);
/// f.write_f64(1.5);
/// let a = f.finish();
/// // Same inputs, same fingerprint — on any machine, any run.
/// let mut g = Fingerprint::new();
/// g.write_u64(42);
/// g.write_f64(1.5);
/// assert_eq!(a, g.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprint { state: FNV_OFFSET }
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `u32` (little-endian bytes).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb an `f64` by its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a string (length-prefixed so concatenations can't collide).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The fingerprint of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn stable_hash64(bytes: &[u8]) -> u64 {
    let mut f = Fingerprint::new();
    f.write_bytes(bytes);
    f.finish()
}

impl NetworkParams {
    /// Stable fingerprint over every network parameter. Any bit-level
    /// change to any field yields a different value — the tuning
    /// store's invalidation signal for cached measurements.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new();
        for &l in &self.latency_us {
            f.write_f64(l);
        }
        f.write_f64(self.mem_bandwidth);
        f.write_f64(self.nic_bandwidth);
        f.write_f64(self.rack_uplink_bandwidth);
        f.write_f64(self.global_link_bandwidth);
        f.write_f64(self.cpu_overhead_us);
        f.write_f64(self.reduce_bandwidth);
        f.write_u64(self.packet_bytes);
        f.write_f64(self.unaligned_penalty);
        f.write_f64(self.unaligned_latency_us);
        f.write_u64(self.alignment_bytes);
        f.write_f64(self.nonp2_size_penalty);
        f.finish()
    }
}

impl NoiseModel {
    /// Stable fingerprint over the noise parameters.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new();
        f.write_f64(self.sigma);
        f.write_f64(self.spike_probability);
        f.write_f64(self.spike_factor);
        f.finish()
    }
}

impl FaultModel {
    /// Stable fingerprint over the fault preset, including any
    /// scheduled node hard-failures.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new();
        f.write_f64(self.failure_probability);
        f.write_f64(self.straggler_probability);
        f.write_f64(self.straggler_factor);
        f.write_u64(self.node_failures.len() as u64);
        for nf in &self.node_failures {
            f.write_u32(nf.node);
            f.write_f64(nf.onset_us);
        }
        f.finish()
    }
}

impl Cluster {
    /// Stable fingerprint of the machine-wide performance environment:
    /// network parameters, placement latency factor, and background
    /// utilization. The topology shape and the job's allocation are
    /// deliberately *excluded* — they are separate axes of the tuning
    /// store's signature (topology shape matches exactly; allocation
    /// size participates in near-key matching).
    pub fn params_fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new();
        f.write_u64(self.params.fingerprint());
        f.write_f64(self.job_latency_factor);
        f.write_f64(self.background_global_utilization);
        f.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_constants() {
        // Golden values: these must never change across releases, or
        // every persisted store entry would silently invalidate.
        assert_eq!(stable_hash64(b""), FNV_OFFSET);
        // FNV-1a of "a": (offset ^ 0x61) * prime.
        assert_eq!(
            stable_hash64(b"a"),
            (FNV_OFFSET ^ 0x61).wrapping_mul(FNV_PRIME)
        );
        let mut f = Fingerprint::new();
        f.write_u64(1);
        let one = f.finish();
        let mut g = Fingerprint::new();
        g.write_u64(1);
        assert_eq!(one, g.finish());
    }

    #[test]
    fn params_fingerprint_detects_any_field_change() {
        let base = NetworkParams::bebop_like();
        let fp = base.fingerprint();
        assert_eq!(fp, NetworkParams::bebop_like().fingerprint());
        let mut p = base.clone();
        p.nic_bandwidth += 1e-9;
        assert_ne!(fp, p.fingerprint());
        let mut p = base.clone();
        p.latency_us[3] *= 1.0 + 1e-12;
        assert_ne!(fp, p.fingerprint());
        assert_ne!(
            NetworkParams::bebop_like().fingerprint(),
            NetworkParams::theta_like().fingerprint()
        );
    }

    #[test]
    fn cluster_fingerprint_ignores_allocation_but_not_placement() {
        let a = Cluster::bebop_like();
        let mut b = a.clone();
        b.allocation = crate::topology::Allocation::contiguous(&a.topology, 8);
        assert_eq!(a.params_fingerprint(), b.params_fingerprint());
        let mut c = a.clone();
        c.job_latency_factor = 2.0;
        assert_ne!(a.params_fingerprint(), c.params_fingerprint());
    }

    #[test]
    fn fault_fingerprint_distinguishes_presets() {
        assert_ne!(
            FaultModel::none().fingerprint(),
            FaultModel::production().fingerprint()
        );
        assert_ne!(
            FaultModel::none().fingerprint(),
            FaultModel::none().with_node_failure(3, 1e6).fingerprint()
        );
    }
}
