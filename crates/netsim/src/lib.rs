//! Cluster and network simulator substrate for the ACCLAiM reproduction.
//!
//! The ACCLAiM paper ([Wilkins et al., CLUSTER 2022]) evaluates its
//! autotuner on real machines: a 64-node Xeon cluster for the simulated
//! comparisons and *Theta* (a 4,392-node KNL system with an Aries Dragonfly
//! interconnect) for the production experiments. This crate substitutes a
//! synthetic but behaviour-preserving equivalent: a hierarchical Dragonfly
//! topology model ([`topology`]), a parameterized latency/bandwidth/
//! contention network model ([`params`]), and two simulation engines that
//! execute *message-level communication schedules* of collective
//! algorithms:
//!
//! * [`roundsim`] — a fast round-synchronous simulator with per-resource
//!   contention counting. Used for exhaustive benchmark-database
//!   generation where millions of messages must be evaluated quickly.
//! * [`des`] — a flow-level discrete-event simulator with max-min fair
//!   bandwidth sharing. Slower, but it models asynchronous per-rank
//!   progress; it is used to validate `roundsim` on small configurations.
//!
//! Time is measured in microseconds (`f64`), sizes in bytes (`u64`), and
//! bandwidths in bytes per microsecond (1 GB/s = 1000 B/µs).
//!
//! [Wilkins et al., CLUSTER 2022]: https://doi.org/10.1109/CLUSTER51413.2022.00035

pub mod cluster;
pub mod des;
pub mod equeue;
pub mod fault;
pub mod fingerprint;
pub mod noise;
pub mod params;
pub mod roundsim;
pub mod schedule;
pub mod topology;

pub use cluster::Cluster;
pub use des::{FlowSim, QueueEngine};
pub use equeue::CalendarQueue;
pub use fault::{BenchFault, FaultModel, NodeFailure};
pub use fingerprint::{stable_hash64, Fingerprint};
pub use noise::NoiseModel;
pub use params::NetworkParams;
pub use roundsim::RoundSim;
pub use schedule::{MaterializedSchedule, Msg, Schedule};
pub use topology::{Allocation, Layer, Topology};
