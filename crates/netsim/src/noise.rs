//! Deterministic measurement-noise model.
//!
//! Real microbenchmark measurements fluctuate run to run (OS jitter,
//! third-layer congestion from co-running jobs — Sec. IV-D of the paper
//! explicitly accepts such congestion and compensates by measuring each
//! point multiple times). We model a measurement as the simulator's
//! deterministic time multiplied by a lognormal factor, with an optional
//! rare congestion spike, all driven by a seeded RNG.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Multiplicative lognormal measurement noise with rare congestion spikes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Standard deviation of the underlying normal (0 disables noise).
    pub sigma: f64,
    /// Probability that a single measurement hits a congestion spike.
    pub spike_probability: f64,
    /// Multiplier applied on a spike (e.g. 2.0 doubles the time).
    pub spike_factor: f64,
}

impl NoiseModel {
    /// Typical production noise: ~5% jitter, 1% chance of a 2.5x spike.
    pub fn production() -> Self {
        NoiseModel {
            sigma: 0.05,
            spike_probability: 0.01,
            spike_factor: 2.5,
        }
    }

    /// Mild noise for simulated-comparison experiments.
    pub fn mild() -> Self {
        NoiseModel {
            sigma: 0.03,
            spike_probability: 0.0,
            spike_factor: 1.0,
        }
    }

    /// No noise at all; measurements equal the simulator's output.
    pub fn none() -> Self {
        NoiseModel {
            sigma: 0.0,
            spike_probability: 0.0,
            spike_factor: 1.0,
        }
    }

    /// Draw one multiplicative noise factor.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut factor = if self.sigma > 0.0 {
            // Box-Muller transform; mean-one lognormal.
            let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.random();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (self.sigma * z - 0.5 * self.sigma * self.sigma).exp()
        } else {
            1.0
        };
        if self.spike_probability > 0.0 && rng.random::<f64>() < self.spike_probability {
            factor *= self.spike_factor;
        }
        factor
    }

    /// Apply noise to a deterministic time.
    #[inline]
    pub fn perturb<R: Rng + ?Sized>(&self, time_us: f64, rng: &mut R) -> f64 {
        time_us * self.sample(rng)
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::mild()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = NoiseModel::none();
        for _ in 0..16 {
            assert_eq!(n.perturb(42.0, &mut rng), 42.0);
        }
    }

    #[test]
    fn noise_is_mean_one_ish() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = NoiseModel::mild();
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn noise_is_always_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = NoiseModel::production();
        assert!((0..10_000).all(|_| n.sample(&mut rng) > 0.0));
    }

    #[test]
    fn spikes_occur_at_roughly_configured_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = NoiseModel {
            sigma: 0.0,
            spike_probability: 0.1,
            spike_factor: 3.0,
        };
        let spikes = (0..50_000).filter(|_| n.sample(&mut rng) > 2.0).count();
        let rate = spikes as f64 / 50_000.0;
        assert!((rate - 0.1).abs() < 0.01, "spike rate was {rate}");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let n = NoiseModel::production();
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..32).map(|_| n.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..32).map(|_| n.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
