//! Network and machine performance parameters.
//!
//! The constants are flavored after the two machines in the paper's
//! Sec. II-A — a 64-node Broadwell cluster (Bebop-like) for the simulated
//! comparisons and Theta (KNL + Aries Dragonfly) for production — but the
//! reproduction only relies on their *relative* structure: per-layer
//! latencies grow with distance, NIC and uplink bandwidths are shared
//! resources, message posting costs CPU time, and transfers are
//! packetized with an alignment penalty for ragged sizes. The latter two
//! are what make non-power-of-two message sizes behave differently from
//! power-of-two ones (Sec. III-B of the paper).

use crate::topology::Layer;
use serde::{Deserialize, Serialize};

/// All tunable performance constants of the network model.
///
/// Times are microseconds, sizes bytes, bandwidths bytes/µs
/// (1 GB/s = 1000 B/µs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkParams {
    /// One-way latency per [`Layer`] (µs), before the job latency factor.
    pub latency_us: [f64; 4],
    /// Shared-memory copy bandwidth of one node (B/µs), contended by all
    /// ranks on the node.
    pub mem_bandwidth: f64,
    /// NIC injection/ejection bandwidth per node (B/µs).
    pub nic_bandwidth: f64,
    /// Layer-2 uplink bandwidth per rack (B/µs).
    pub rack_uplink_bandwidth: f64,
    /// Layer-3 link bandwidth per rack pair (B/µs).
    pub global_link_bandwidth: f64,
    /// CPU cost of posting one send or receive (µs).
    pub cpu_overhead_us: f64,
    /// Throughput of local reduction arithmetic (B/µs).
    pub reduce_bandwidth: f64,
    /// Wire packet size (bytes): transfers occupy whole packets, so a
    /// 4097-byte message costs two 4096-byte packets.
    pub packet_bytes: u64,
    /// Bandwidth multiplier (< 1) applied to messages whose size is not a
    /// multiple of [`NetworkParams::alignment_bytes`], modelling SIMD /
    /// DMA tail handling.
    pub unaligned_penalty: f64,
    /// Extra per-message CPU latency (µs) for unaligned sizes, modelling
    /// datatype packing and segmentation fix-up. Chunking algorithms pay
    /// it on every ragged chunk, whole-buffer algorithms once.
    pub unaligned_latency_us: f64,
    /// Alignment granularity for [`NetworkParams::unaligned_penalty`].
    pub alignment_bytes: u64,
    /// Bandwidth multiplier (< 1) for transfers whose size is not a
    /// power of two. Transfer engines and staging buffers are tiled in
    /// powers of two; the paper observes empirically (Fig. 5) that
    /// non-P2 sizes follow different performance trends on its machines,
    /// and this is the substitute mechanism that preserves the
    /// behaviour. Power-of-two-padded block exchanges escape it at the
    /// price of shipping padding.
    pub nonp2_size_penalty: f64,
}

impl NetworkParams {
    /// Parameters flavored after the 64-node Broadwell (Bebop-like)
    /// cluster used for the paper's simulated comparisons.
    pub fn bebop_like() -> Self {
        NetworkParams {
            latency_us: [0.3, 1.1, 1.6, 2.1],
            mem_bandwidth: 8_000.0,          // 8 GB/s
            nic_bandwidth: 1_600.0,          // 1.6 GB/s (Omni-Path-ish)
            rack_uplink_bandwidth: 6_400.0,  // 4 NIC-equivalents per rack
            global_link_bandwidth: 12_800.0, // fat layer 3
            cpu_overhead_us: 0.25,
            reduce_bandwidth: 4_000.0, // 4 GB/s local arithmetic
            packet_bytes: 4_096,
            unaligned_penalty: 0.82,
            unaligned_latency_us: 0.4,
            alignment_bytes: 64,
            nonp2_size_penalty: 0.60,
        }
    }

    /// Parameters flavored after Theta (KNL nodes, Aries Dragonfly).
    /// KNL cores are slow (higher CPU overhead, lower reduce throughput)
    /// while the Aries network is fast and low-latency.
    pub fn theta_like() -> Self {
        NetworkParams {
            latency_us: [0.4, 0.9, 1.3, 1.8],
            mem_bandwidth: 9_000.0,
            nic_bandwidth: 2_800.0, // Aries ~ 2.8 GB/s injection
            rack_uplink_bandwidth: 11_200.0,
            global_link_bandwidth: 22_400.0,
            cpu_overhead_us: 0.6, // KNL serial speed
            reduce_bandwidth: 2_500.0,
            packet_bytes: 4_096,
            unaligned_penalty: 0.82,
            unaligned_latency_us: 0.9, // KNL pays dearly for packing
            alignment_bytes: 64,
            nonp2_size_penalty: 0.60,
        }
    }

    /// Latency of one message across `layer`, scaled by the job's
    /// placement factor for inter-node layers.
    #[inline]
    pub fn latency(&self, layer: Layer, job_latency_factor: f64) -> f64 {
        let base = self.latency_us[layer.index()];
        if layer == Layer::IntraNode {
            base
        } else {
            base * job_latency_factor
        }
    }

    /// Bytes a message actually occupies on the wire after packetization.
    #[inline]
    pub fn wire_bytes(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        bytes.div_ceil(self.packet_bytes) * self.packet_bytes
    }

    /// Bandwidth de-rating factor for a message of `bytes` (1.0 when the
    /// size is aligned, [`NetworkParams::unaligned_penalty`] otherwise).
    #[inline]
    pub fn alignment_factor(&self, bytes: u64) -> f64 {
        if bytes == 0 || bytes.is_multiple_of(self.alignment_bytes) {
            1.0
        } else {
            self.unaligned_penalty
        }
    }

    /// Combined bandwidth de-rating: alignment penalty plus the non-P2
    /// size slow path.
    #[inline]
    pub fn bandwidth_derating(&self, bytes: u64) -> f64 {
        let mut f = self.alignment_factor(bytes);
        if bytes > 0 && !bytes.is_power_of_two() {
            f *= self.nonp2_size_penalty;
        }
        f
    }

    /// Extra latency of a message of `bytes` (0 when aligned and a
    /// power of two): the slow-path setup cost of ragged or non-P2
    /// transfers.
    #[inline]
    pub fn alignment_latency(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let ragged = !bytes.is_multiple_of(self.alignment_bytes);
        if ragged || !bytes.is_power_of_two() {
            self.unaligned_latency_us
        } else {
            0.0
        }
    }

    /// Time to reduce `bytes` of data locally (µs).
    #[inline]
    pub fn reduce_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.reduce_bandwidth
    }
}

impl Default for NetworkParams {
    fn default() -> Self {
        NetworkParams::bebop_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_grow_with_distance() {
        for p in [NetworkParams::bebop_like(), NetworkParams::theta_like()] {
            for w in p.latency_us.windows(2) {
                assert!(w[0] < w[1], "latency must grow with layer distance");
            }
        }
    }

    #[test]
    fn job_factor_applies_only_between_nodes() {
        let p = NetworkParams::bebop_like();
        assert_eq!(p.latency(Layer::IntraNode, 2.0), p.latency_us[0]);
        assert_eq!(p.latency(Layer::IntraRack, 2.0), p.latency_us[1] * 2.0);
        assert_eq!(p.latency(Layer::Global, 2.5), p.latency_us[3] * 2.5);
    }

    #[test]
    fn wire_bytes_rounds_to_whole_packets() {
        let p = NetworkParams::bebop_like();
        assert_eq!(p.wire_bytes(0), 0);
        assert_eq!(p.wire_bytes(1), 4096);
        assert_eq!(p.wire_bytes(4096), 4096);
        assert_eq!(p.wire_bytes(4097), 8192);
    }

    #[test]
    fn alignment_factor_penalizes_ragged_sizes() {
        let p = NetworkParams::bebop_like();
        assert_eq!(p.alignment_factor(4096), 1.0);
        assert_eq!(p.alignment_factor(128), 1.0);
        assert!(p.alignment_factor(100) < 1.0);
        assert_eq!(p.alignment_factor(0), 1.0);
    }

    #[test]
    fn reduce_time_is_linear() {
        let p = NetworkParams::bebop_like();
        let t1 = p.reduce_time(1_000);
        let t2 = p.reduce_time(2_000);
        assert!((t2 - 2.0 * t1).abs() < 1e-12);
    }
}
