//! Fast round-synchronous contention simulator.
//!
//! Each schedule round is priced independently: every message pays the
//! layer latency of its path plus its packetized payload divided by its
//! contended bandwidth, where contention divides each shared resource
//! (node memory, node NIC in/out, rack uplink, pair global link) evenly
//! among the round's flows crossing it. The round costs the maximum over
//! its messages, plus CPU posting overhead for the busiest rank and the
//! largest per-rank reduction. Rounds execute back to back.
//!
//! This slightly over-synchronizes compared to real executions (ranks
//! wait for the global round, not just their own messages) but it prices
//! millions of messages in milliseconds, which exhaustive benchmark-
//! database generation requires. The flow-level DES in [`crate::des`]
//! relaxes the synchronization and is used to validate this engine.

use crate::cluster::Cluster;
use crate::schedule::{Msg, Schedule};
use crate::topology::Layer;
use acclaim_obs::{Counter, Histogram, Obs};

/// Scratch-reusing round simulator.
///
/// Create once and call [`RoundSim::simulate`] repeatedly; internal
/// per-resource counters are recycled between rounds and calls.
#[derive(Debug, Default)]
pub struct RoundSim {
    mem: CountMap,
    nic_out: CountMap,
    nic_in: CountMap,
    uplink: CountMap,
    global: CountMap,
    rank_msgs: CountMap,
    rank_reduce: Vec<u64>,
    reduce_touched: Vec<u32>,
    obs: RoundSimObs,
}

/// Pre-resolved metric handles ([`RoundSim::with_obs`]); default
/// (disabled) handles drop every record.
#[derive(Debug, Default)]
struct RoundSimObs {
    calls: Counter,
    rounds: Counter,
    messages: Counter,
    sim_us: Histogram,
}

/// A dense counter array with a touched-list for O(touched) clearing.
#[derive(Debug, Default)]
struct CountMap {
    counts: Vec<u32>,
    touched: Vec<u32>,
}

impl CountMap {
    fn ensure(&mut self, len: usize) {
        if self.counts.len() < len {
            self.counts.resize(len, 0);
        }
    }

    #[inline]
    fn bump(&mut self, idx: u32) {
        let c = &mut self.counts[idx as usize];
        if *c == 0 {
            self.touched.push(idx);
        }
        *c += 1;
    }

    #[inline]
    fn get(&self, idx: u32) -> u32 {
        self.counts[idx as usize]
    }

    fn clear(&mut self) {
        for &t in &self.touched {
            self.counts[t as usize] = 0;
        }
        self.touched.clear();
    }

    fn max(&self) -> u32 {
        self.touched
            .iter()
            .map(|&t| self.counts[t as usize])
            .max()
            .unwrap_or(0)
    }
}

impl RoundSim {
    /// A fresh simulator with empty scratch space.
    pub fn new() -> Self {
        RoundSim::default()
    }

    /// A simulator recording `netsim.roundsim.*` metrics (call, round,
    /// and message counts plus a completion-time histogram) into `obs`.
    /// Handles resolve once here; recording never takes a lock.
    pub fn with_obs(obs: &Obs) -> Self {
        RoundSim {
            obs: RoundSimObs {
                calls: obs.counter("netsim.roundsim.calls"),
                rounds: obs.counter("netsim.roundsim.rounds"),
                messages: obs.counter("netsim.roundsim.messages"),
                sim_us: obs.histogram("netsim.roundsim.sim_us"),
            },
            ..RoundSim::default()
        }
    }

    /// Simulate one execution of `sched` on `cluster` with `ppn` ranks
    /// per node; returns the completion time in microseconds.
    ///
    /// Panics if the schedule needs more ranks than the allocation holds.
    pub fn simulate(&mut self, cluster: &Cluster, ppn: u32, sched: &dyn Schedule) -> f64 {
        assert!(ppn >= 1, "ppn must be positive");
        let ranks = sched.num_ranks();
        assert!(
            ranks <= cluster.num_nodes() * ppn,
            "schedule needs {ranks} ranks but allocation provides {}x{ppn}",
            cluster.num_nodes()
        );
        let topo = &cluster.topology;
        self.mem.ensure(topo.total_nodes() as usize);
        self.nic_out.ensure(topo.total_nodes() as usize);
        self.nic_in.ensure(topo.total_nodes() as usize);
        self.uplink.ensure(topo.num_racks as usize);
        self.global.ensure(topo.num_pairs() as usize);
        self.rank_msgs.ensure(ranks as usize);
        if self.rank_reduce.len() < ranks as usize {
            self.rank_reduce.resize(ranks as usize, 0);
        }

        let mut total = 0.0;
        sched.visit_rounds(&mut |round| {
            total += self.round_time(cluster, ppn, round);
        });
        total += epilogue_time(cluster, ppn, sched.epilogue_local_bytes());
        self.obs.calls.incr();
        self.obs.sim_us.record(total);
        total
    }

    /// Price a single round.
    fn round_time(&mut self, cluster: &Cluster, ppn: u32, round: &[Msg]) -> f64 {
        let params = &cluster.params;
        let topo = &cluster.topology;
        self.obs.rounds.incr();
        self.obs.messages.add(round.len() as u64);

        // Pass 1: contention counts per shared resource.
        for m in round {
            let sn = cluster.node_of_rank(m.src, ppn);
            let dn = cluster.node_of_rank(m.dst, ppn);
            self.rank_msgs.bump(m.src);
            self.rank_msgs.bump(m.dst);
            if m.reduce_bytes > 0 {
                let slot = &mut self.rank_reduce[m.dst as usize];
                if *slot == 0 {
                    self.reduce_touched.push(m.dst);
                }
                *slot += m.reduce_bytes;
            }
            if sn == dn {
                self.mem.bump(sn);
                continue;
            }
            self.nic_out.bump(sn);
            self.nic_in.bump(dn);
            let (sr, dr) = (topo.rack_of(sn), topo.rack_of(dn));
            if sr != dr {
                self.uplink.bump(sr);
                self.uplink.bump(dr);
                let (sp, dp) = (topo.pair_of(sr), topo.pair_of(dr));
                if sp != dp {
                    self.global.bump(sp);
                    self.global.bump(dp);
                }
            }
        }

        // Pass 2: slowest message in the round.
        let mut slowest = 0.0f64;
        for m in round {
            let sn = cluster.node_of_rank(m.src, ppn);
            let dn = cluster.node_of_rank(m.dst, ppn);
            let layer = topo.layer_between(sn, dn);
            let latency =
                params.latency(layer, cluster.job_latency_factor) + params.alignment_latency(m.bytes);
            let t = if m.bytes == 0 {
                latency
            } else if layer == Layer::IntraNode {
                let bw = params.mem_bandwidth / self.mem.get(sn) as f64
                    * params.bandwidth_derating(m.bytes);
                latency + m.bytes as f64 / bw
            } else {
                let mut share = (params.nic_bandwidth / self.nic_out.get(sn) as f64)
                    .min(params.nic_bandwidth / self.nic_in.get(dn) as f64);
                let (sr, dr) = (topo.rack_of(sn), topo.rack_of(dn));
                if sr != dr {
                    share = share
                        .min(params.rack_uplink_bandwidth / self.uplink.get(sr) as f64)
                        .min(params.rack_uplink_bandwidth / self.uplink.get(dr) as f64);
                    let (sp, dp) = (topo.pair_of(sr), topo.pair_of(dr));
                    if sp != dp {
                        let global_bw = cluster.effective_global_bandwidth();
                        share = share
                            .min(global_bw / self.global.get(sp) as f64)
                            .min(global_bw / self.global.get(dp) as f64);
                    }
                }
                let bw = share * params.bandwidth_derating(m.bytes);
                latency + params.wire_bytes(m.bytes) as f64 / bw
            };
            slowest = slowest.max(t);
        }

        // Per-rank CPU posting cost and the heaviest local reduction.
        let cpu = params.cpu_overhead_us * self.rank_msgs.max() as f64;
        let mut reduce = 0.0f64;
        for &r in &self.reduce_touched {
            reduce = reduce.max(params.reduce_time(self.rank_reduce[r as usize]));
            self.rank_reduce[r as usize] = 0;
        }
        self.reduce_touched.clear();
        self.mem.clear();
        self.nic_out.clear();
        self.nic_in.clear();
        self.uplink.clear();
        self.global.clear();
        self.rank_msgs.clear();

        slowest + cpu + reduce
    }
}

/// Time for every rank of a fully packed node to copy `bytes` locally
/// (the schedule epilogue, e.g. the Bruck rotation): `ppn` concurrent
/// copies contend for the node's memory bandwidth.
pub(crate) fn epilogue_time(cluster: &Cluster, ppn: u32, bytes: u64) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    let p = &cluster.params;
    let bw = p.mem_bandwidth / ppn as f64 * p.alignment_factor(bytes);
    bytes as f64 / bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::MaterializedSchedule;

    fn sched(num_ranks: u32, rounds: Vec<Vec<Msg>>) -> MaterializedSchedule {
        let s = MaterializedSchedule::new(num_ranks, rounds);
        s.validate().expect("test schedule must be well-formed");
        s
    }

    #[test]
    fn empty_schedule_costs_nothing() {
        let c = Cluster::bebop_like();
        let s = sched(2, vec![]);
        assert_eq!(RoundSim::new().simulate(&c, 1, &s), 0.0);
    }

    #[test]
    fn single_message_pays_latency_bandwidth_and_cpu() {
        let c = Cluster::bebop_like();
        let bytes = 4096u64;
        let s = sched(2, vec![vec![Msg::data(0, 1, bytes)]]);
        let t = RoundSim::new().simulate(&c, 1, &s);
        let p = &c.params;
        let expect = p.latency_us[Layer::IntraRack.index()]
            + bytes as f64 / p.nic_bandwidth
            + p.cpu_overhead_us;
        assert!((t - expect).abs() < 1e-9, "got {t}, expected {expect}");
    }

    #[test]
    fn intra_node_uses_memory_bandwidth() {
        let c = Cluster::bebop_like();
        let s = sched(2, vec![vec![Msg::data(0, 1, 8192)]]);
        let t = RoundSim::new().simulate(&c, 2, &s); // both ranks on node 0
        let p = &c.params;
        let expect =
            p.latency_us[Layer::IntraNode.index()] + 8192.0 / p.mem_bandwidth + p.cpu_overhead_us;
        assert!((t - expect).abs() < 1e-9);
    }

    #[test]
    fn nic_contention_halves_bandwidth() {
        let c = Cluster::bebop_like();
        let one = sched(4, vec![vec![Msg::data(0, 2, 1 << 20)]]);
        // Two ranks on node 0 send to two ranks on node 1: shared NICs.
        let two = sched(
            4,
            vec![vec![Msg::data(0, 2, 1 << 20), Msg::data(1, 3, 1 << 20)]],
        );
        let mut sim = RoundSim::new();
        let t1 = sim.simulate(&c, 2, &one);
        let t2 = sim.simulate(&c, 2, &two);
        // Large messages: transfer dominates, so t2 ≈ 2*t1.
        assert!(t2 > 1.8 * t1, "t1={t1} t2={t2}");
        assert!(t2 < 2.2 * t1, "t1={t1} t2={t2}");
    }

    #[test]
    fn disjoint_node_pairs_do_not_contend() {
        let c = Cluster::bebop_like();
        let one = sched(4, vec![vec![Msg::data(0, 1, 1 << 20)]]);
        let par = sched(
            4,
            vec![vec![Msg::data(0, 1, 1 << 20), Msg::data(2, 3, 1 << 20)]],
        );
        let mut sim = RoundSim::new();
        let t1 = sim.simulate(&c, 1, &one);
        let t2 = sim.simulate(&c, 1, &par);
        assert!((t2 - t1).abs() < 1e-9, "disjoint flows must run at full rate");
    }

    #[test]
    fn farther_layers_cost_more_latency() {
        let c = Cluster::bebop_like();
        let mut sim = RoundSim::new();
        // 1-byte messages: latency dominated. ppn=1.
        let intra_rack = sim.simulate(&c, 1, &sched(64, vec![vec![Msg::data(0, 1, 1)]]));
        let intra_pair = sim.simulate(&c, 1, &sched(64, vec![vec![Msg::data(0, 16, 1)]]));
        let global = sim.simulate(&c, 1, &sched(64, vec![vec![Msg::data(0, 32, 1)]]));
        assert!(intra_rack < intra_pair);
        assert!(intra_pair < global);
    }

    #[test]
    fn job_latency_factor_slows_internode_rounds() {
        let fast = Cluster::bebop_like();
        let slow = Cluster::bebop_like().with_job_latency_factor(2.5);
        let s = sched(2, vec![vec![Msg::data(0, 1, 64)]]);
        let mut sim = RoundSim::new();
        assert!(sim.simulate(&slow, 1, &s) > sim.simulate(&fast, 1, &s));
    }

    #[test]
    fn reduction_adds_compute_time() {
        let c = Cluster::bebop_like();
        let plain = sched(2, vec![vec![Msg::data(0, 1, 1 << 20)]]);
        let reducing = sched(2, vec![vec![Msg::reducing(0, 1, 1 << 20)]]);
        let mut sim = RoundSim::new();
        let tp = sim.simulate(&c, 1, &plain);
        let tr = sim.simulate(&c, 1, &reducing);
        let expect_extra = c.params.reduce_time(1 << 20);
        assert!((tr - tp - expect_extra).abs() < 1e-9);
    }

    #[test]
    fn rounds_accumulate() {
        let c = Cluster::bebop_like();
        let one = sched(2, vec![vec![Msg::data(0, 1, 4096)]]);
        let two = sched(
            2,
            vec![vec![Msg::data(0, 1, 4096)], vec![Msg::data(1, 0, 4096)]],
        );
        let mut sim = RoundSim::new();
        let t1 = sim.simulate(&c, 1, &one);
        let t2 = sim.simulate(&c, 1, &two);
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
    }

    #[test]
    fn scratch_state_does_not_leak_between_calls() {
        let c = Cluster::bebop_like();
        let s = sched(2, vec![vec![Msg::data(0, 1, 4096)]]);
        let mut sim = RoundSim::new();
        let a = sim.simulate(&c, 1, &s);
        let b = sim.simulate(&c, 1, &s);
        assert_eq!(a, b);
    }

    #[test]
    fn unaligned_sizes_are_slower_than_the_next_aligned_size() {
        let c = Cluster::bebop_like();
        let mut sim = RoundSim::new();
        // 100_000 is not 64-aligned; 102_400 is. Packetization also
        // rounds both to the same wire size, so the unaligned penalty is
        // the only difference maker here.
        let ragged = sim.simulate(&c, 1, &sched(2, vec![vec![Msg::data(0, 1, 100_000)]]));
        let aligned = sim.simulate(&c, 1, &sched(2, vec![vec![Msg::data(0, 1, 102_400)]]));
        assert!(
            ragged > aligned,
            "ragged {ragged} should exceed aligned {aligned}"
        );
    }

    #[test]
    fn background_congestion_slows_only_cross_pair_messages() {
        // 95% of layer-3 consumed by other jobs: the effective global
        // bandwidth (640 B/µs) drops below the NIC and becomes the
        // bottleneck — but only for cross-pair traffic.
        let idle = Cluster::bebop_like();
        let busy = Cluster::bebop_like().with_background_utilization(0.95);
        let mut sim = RoundSim::new();
        let global = sched(64, vec![vec![Msg::data(0, 32, 1 << 20)]]);
        let local = sched(64, vec![vec![Msg::data(0, 16, 1 << 20)]]);
        assert!(
            sim.simulate(&busy, 1, &global) > 1.5 * sim.simulate(&idle, 1, &global),
            "cross-pair traffic must feel the congestion"
        );
        assert_eq!(
            sim.simulate(&busy, 1, &local),
            sim.simulate(&idle, 1, &local),
            "intra-pair traffic must not"
        );
    }

    #[test]
    #[should_panic(expected = "allocation provides")]
    fn too_many_ranks_rejected() {
        let c = Cluster::bebop_like(); // 64 nodes
        let s = sched(200, vec![]);
        RoundSim::new().simulate(&c, 1, &s);
    }
}
