//! Communication-schedule representation shared by the simulators.
//!
//! A collective algorithm is described as a sequence of *rounds*; each
//! round is a set of point-to-point messages between ranks, optionally
//! with a local reduction at the receiver. Ranks synchronize per round
//! in [`crate::roundsim`]; the flow-level DES in [`crate::des`] relaxes
//! that to per-rank dataflow (a rank enters its next round as soon as its
//! own round messages complete).
//!
//! Schedules can be *streamed*: generators produce each round into a
//! reusable buffer so that large schedules (a 2048-rank ring allgather
//! has ~4M messages) never materialize in memory at once.

/// One point-to-point message between two ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msg {
    /// Sending rank.
    pub src: u32,
    /// Receiving rank.
    pub dst: u32,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Bytes the receiver must combine with a reduction operator after
    /// the payload arrives (0 for pure data movement).
    pub reduce_bytes: u64,
}

impl Msg {
    /// A pure data-movement message.
    #[inline]
    pub fn data(src: u32, dst: u32, bytes: u64) -> Msg {
        Msg {
            src,
            dst,
            bytes,
            reduce_bytes: 0,
        }
    }

    /// A message whose payload is reduced into the receiver's buffer.
    #[inline]
    pub fn reducing(src: u32, dst: u32, bytes: u64) -> Msg {
        Msg {
            src,
            dst,
            bytes,
            reduce_bytes: bytes,
        }
    }
}

/// A streaming communication schedule.
pub trait Schedule {
    /// Number of ranks participating (ranks are `0..num_ranks`).
    fn num_ranks(&self) -> u32;

    /// Visit every round in order. The slice passed to `visit` is only
    /// valid for the duration of the call (generators reuse buffers).
    fn visit_rounds(&self, visit: &mut dyn FnMut(&[Msg]));

    /// Bytes each rank copies locally after the last round (e.g. the
    /// final buffer rotation of the Bruck allgather). Zero by default.
    fn epilogue_local_bytes(&self) -> u64 {
        0
    }

    /// Total number of messages across all rounds.
    fn message_count(&self) -> u64 {
        let mut n = 0u64;
        self.visit_rounds(&mut |round| n += round.len() as u64);
        n
    }

    /// Total payload bytes moved across all rounds.
    fn total_bytes(&self) -> u64 {
        let mut n = 0u64;
        self.visit_rounds(&mut |round| n += round.iter().map(|m| m.bytes).sum::<u64>());
        n
    }

    /// Materialize the schedule (for the DES or for inspection in tests).
    fn materialize(&self) -> MaterializedSchedule {
        let mut rounds = Vec::new();
        self.visit_rounds(&mut |round| rounds.push(round.to_vec()));
        MaterializedSchedule {
            num_ranks: self.num_ranks(),
            rounds,
            epilogue_local_bytes: self.epilogue_local_bytes(),
        }
    }
}

/// A fully materialized schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterializedSchedule {
    /// Number of participating ranks.
    pub num_ranks: u32,
    /// Message sets, one per round.
    pub rounds: Vec<Vec<Msg>>,
    /// Per-rank local copy after the final round (bytes).
    pub epilogue_local_bytes: u64,
}

impl MaterializedSchedule {
    /// A schedule with no epilogue copy.
    pub fn new(num_ranks: u32, rounds: Vec<Vec<Msg>>) -> Self {
        MaterializedSchedule {
            num_ranks,
            rounds,
            epilogue_local_bytes: 0,
        }
    }

    /// Validate structural invariants every well-formed collective
    /// schedule must satisfy; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        for (r, round) in self.rounds.iter().enumerate() {
            for m in round {
                if m.src >= self.num_ranks || m.dst >= self.num_ranks {
                    return Err(format!(
                        "round {r}: message {}->{} outside 0..{}",
                        m.src, m.dst, self.num_ranks
                    ));
                }
                if m.src == m.dst {
                    return Err(format!("round {r}: self-message on rank {}", m.src));
                }
                if m.reduce_bytes > m.bytes {
                    return Err(format!(
                        "round {r}: reduce_bytes {} exceeds payload {}",
                        m.reduce_bytes, m.bytes
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Schedule for MaterializedSchedule {
    fn num_ranks(&self) -> u32 {
        self.num_ranks
    }

    fn visit_rounds(&self, visit: &mut dyn FnMut(&[Msg])) {
        for round in &self.rounds {
            visit(round);
        }
    }

    fn epilogue_local_bytes(&self) -> u64 {
        self.epilogue_local_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_round_schedule() -> MaterializedSchedule {
        MaterializedSchedule {
            num_ranks: 4,
            rounds: vec![
                vec![Msg::data(0, 1, 100), Msg::data(2, 3, 100)],
                vec![Msg::reducing(1, 0, 50)],
            ],
            epilogue_local_bytes: 0,
        }
    }

    #[test]
    fn counts_and_bytes() {
        let s = two_round_schedule();
        assert_eq!(s.message_count(), 3);
        assert_eq!(s.total_bytes(), 250);
    }

    #[test]
    fn materialize_round_trips() {
        let s = two_round_schedule();
        assert_eq!(s.materialize(), s);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(two_round_schedule().validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_rank() {
        let s = MaterializedSchedule::new(2, vec![vec![Msg::data(0, 5, 1)]]);
        assert!(s.validate().unwrap_err().contains("outside"));
    }

    #[test]
    fn validate_rejects_self_message() {
        let s = MaterializedSchedule::new(2, vec![vec![Msg::data(1, 1, 1)]]);
        assert!(s.validate().unwrap_err().contains("self-message"));
    }

    #[test]
    fn validate_rejects_reduce_larger_than_payload() {
        let s = MaterializedSchedule::new(
            2,
            vec![vec![Msg {
                src: 0,
                dst: 1,
                bytes: 10,
                reduce_bytes: 20,
            }]],
        );
        assert!(s.validate().unwrap_err().contains("exceeds payload"));
    }
}
