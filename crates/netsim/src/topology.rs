//! Dragonfly-style hierarchical topology and job allocations.
//!
//! The model follows Figure 8 of the paper: a three-layer network where
//! layer 1 connects the nodes within a rack, layer 2 pairs every two
//! racks, and layer 3 connects the rack pairs with direct high-bandwidth
//! links. Nodes are numbered sequentially within a rack and across racks,
//! which is the property ACCLAiM's greedy parallel-collection scheduler
//! relies on.

use serde::{Deserialize, Serialize};

/// The network layer a message between two ranks must traverse.
///
/// Ordered by "distance": `IntraNode < IntraRack < IntraPair < Global`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// Both ranks live on the same node (shared memory).
    IntraNode = 0,
    /// Different nodes within one rack (layer 1).
    IntraRack = 1,
    /// Different racks within one rack pair (layer 2).
    IntraPair = 2,
    /// Different rack pairs (layer 3).
    Global = 3,
}

impl Layer {
    /// All layers, ordered from nearest to farthest.
    pub const ALL: [Layer; 4] = [
        Layer::IntraNode,
        Layer::IntraRack,
        Layer::IntraPair,
        Layer::Global,
    ];

    /// Index usable for per-layer parameter arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A machine's physical shape: racks of nodes, racks grouped into pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of nodes in each rack (layer-1 domain size).
    pub nodes_per_rack: u32,
    /// Total number of racks. Racks `2k` and `2k+1` form pair `k`.
    pub num_racks: u32,
}

impl Topology {
    /// Create a topology; panics if either dimension is zero.
    pub fn new(nodes_per_rack: u32, num_racks: u32) -> Self {
        assert!(nodes_per_rack > 0, "racks must contain at least one node");
        assert!(num_racks > 0, "topology must contain at least one rack");
        Topology {
            nodes_per_rack,
            num_racks,
        }
    }

    /// Total number of nodes in the machine.
    #[inline]
    pub fn total_nodes(&self) -> u32 {
        self.nodes_per_rack * self.num_racks
    }

    /// Rack containing a global node id.
    #[inline]
    pub fn rack_of(&self, node: u32) -> u32 {
        debug_assert!(node < self.total_nodes());
        node / self.nodes_per_rack
    }

    /// Rack pair containing a rack.
    #[inline]
    pub fn pair_of(&self, rack: u32) -> u32 {
        rack / 2
    }

    /// Number of rack pairs (last pair may hold a single rack).
    #[inline]
    pub fn num_pairs(&self) -> u32 {
        self.num_racks.div_ceil(2)
    }

    /// The network layer a message between two global node ids traverses.
    pub fn layer_between(&self, a: u32, b: u32) -> Layer {
        if a == b {
            return Layer::IntraNode;
        }
        let (ra, rb) = (self.rack_of(a), self.rack_of(b));
        if ra == rb {
            Layer::IntraRack
        } else if self.pair_of(ra) == self.pair_of(rb) {
            Layer::IntraPair
        } else {
            Layer::Global
        }
    }
}

/// The set of physical nodes assigned to a job, in logical order.
///
/// The autotuner and the collective schedules address *logical* nodes
/// `0..n`; the allocation maps them to global node ids in the topology.
/// Different allocation shapes are how the paper's placement effects
/// (Sec. III-D, Fig. 13) enter the simulation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    nodes: Vec<u32>,
}

impl Allocation {
    /// Build an allocation from explicit global node ids.
    ///
    /// Panics if ids repeat or fall outside the topology.
    pub fn new(topology: &Topology, nodes: Vec<u32>) -> Self {
        assert!(!nodes.is_empty(), "allocation must contain at least one node");
        let total = topology.total_nodes();
        let mut seen = vec![false; total as usize];
        for &n in &nodes {
            assert!(n < total, "node id {n} outside topology ({total} nodes)");
            assert!(!seen[n as usize], "node id {n} allocated twice");
            seen[n as usize] = true;
        }
        Allocation { nodes }
    }

    /// `count` sequential nodes starting at global node 0.
    pub fn contiguous(topology: &Topology, count: u32) -> Self {
        Self::new(topology, (0..count).collect())
    }

    /// All nodes of a single rack (Fig. 13 "Single Rack").
    ///
    /// Panics if the rack holds fewer than `count` nodes.
    pub fn single_rack(topology: &Topology, count: u32) -> Self {
        assert!(
            count <= topology.nodes_per_rack,
            "rack holds {} nodes, requested {count}",
            topology.nodes_per_rack
        );
        Self::contiguous(topology, count)
    }

    /// `count` nodes split evenly across the two racks of pair 0
    /// (Fig. 13 "Single Rack Pair").
    pub fn rack_pair(topology: &Topology, count: u32) -> Self {
        assert!(topology.num_racks >= 2, "topology has no rack pair");
        let half = count / 2;
        assert!(
            half <= topology.nodes_per_rack && count - half <= topology.nodes_per_rack,
            "rack pair cannot hold {count} nodes"
        );
        let mut nodes: Vec<u32> = (0..half).collect();
        nodes.extend((0..count - half).map(|i| topology.nodes_per_rack + i));
        Self::new(topology, nodes)
    }

    /// `count` nodes split evenly across four racks in two pairs
    /// (Fig. 13 "Two Rack Pairs").
    pub fn two_pairs(topology: &Topology, count: u32) -> Self {
        assert!(topology.num_racks >= 4, "topology has fewer than 4 racks");
        let per_rack = count.div_ceil(4);
        assert!(per_rack <= topology.nodes_per_rack, "racks too small");
        let mut nodes = Vec::with_capacity(count as usize);
        'outer: for rack in 0..4 {
            for i in 0..per_rack {
                if nodes.len() as u32 == count {
                    break 'outer;
                }
                nodes.push(rack * topology.nodes_per_rack + i);
            }
        }
        Self::new(topology, nodes)
    }

    /// One node from each of `count` racks, all racks in distinct pairs
    /// (Fig. 13 "Max Parallel", the 1-0-1-0… placement).
    pub fn max_parallel(topology: &Topology, count: u32) -> Self {
        assert!(
            topology.num_pairs() >= count,
            "need {count} rack pairs, topology has {}",
            topology.num_pairs()
        );
        let nodes = (0..count).map(|i| 2 * i * topology.nodes_per_rack).collect();
        Self::new(topology, nodes)
    }

    /// A uniformly random allocation of `count` distinct nodes, modelling
    /// Theta's best-effort scheduler.
    pub fn random<R: rand::Rng>(topology: &Topology, count: u32, rng: &mut R) -> Self {
        use rand::seq::SliceRandom;
        let total = topology.total_nodes();
        assert!(count <= total, "machine holds only {total} nodes");
        let mut all: Vec<u32> = (0..total).collect();
        all.shuffle(rng);
        all.truncate(count as usize);
        Self::new(topology, all)
    }

    /// Number of nodes in the allocation.
    #[inline]
    pub fn len(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// True when the allocation is empty (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Global node id of logical node `i`.
    #[inline]
    pub fn node(&self, i: u32) -> u32 {
        self.nodes[i as usize]
    }

    /// The global node ids in logical order.
    #[inline]
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// The allocation with the given global node ids removed (surviving
    /// nodes keep their relative logical order). Used when a node
    /// hard-fails mid-collection: subsequent waves schedule over the
    /// degraded allocation, and rack burn-sets are recomputed from it.
    ///
    /// Panics if removal would empty the allocation — a job with no
    /// surviving nodes cannot continue.
    pub fn excluding(&self, dead: &[u32]) -> Allocation {
        let nodes: Vec<u32> = self
            .nodes
            .iter()
            .copied()
            .filter(|n| !dead.contains(n))
            .collect();
        assert!(!nodes.is_empty(), "every node of the allocation died");
        Allocation { nodes }
    }

    /// Restrict to a logical sub-range (used by the parallel-collection
    /// scheduler to hand disjoint node sets to concurrent benchmarks).
    pub fn slice(&self, start: u32, count: u32) -> Allocation {
        let s = start as usize;
        let e = s + count as usize;
        assert!(e <= self.nodes.len(), "slice out of range");
        Allocation {
            nodes: self.nodes[s..e].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn topo() -> Topology {
        Topology::new(4, 6)
    }

    #[test]
    fn layer_ordering_reflects_distance() {
        assert!(Layer::IntraNode < Layer::IntraRack);
        assert!(Layer::IntraRack < Layer::IntraPair);
        assert!(Layer::IntraPair < Layer::Global);
    }

    #[test]
    fn rack_and_pair_mapping() {
        let t = topo();
        assert_eq!(t.total_nodes(), 24);
        assert_eq!(t.rack_of(0), 0);
        assert_eq!(t.rack_of(3), 0);
        assert_eq!(t.rack_of(4), 1);
        assert_eq!(t.pair_of(0), 0);
        assert_eq!(t.pair_of(1), 0);
        assert_eq!(t.pair_of(2), 1);
        assert_eq!(t.num_pairs(), 3);
    }

    #[test]
    fn odd_rack_count_rounds_pairs_up() {
        let t = Topology::new(2, 5);
        assert_eq!(t.num_pairs(), 3);
        assert_eq!(t.pair_of(4), 2);
    }

    #[test]
    fn layer_between_covers_all_cases() {
        let t = topo();
        assert_eq!(t.layer_between(1, 1), Layer::IntraNode);
        assert_eq!(t.layer_between(0, 3), Layer::IntraRack);
        assert_eq!(t.layer_between(0, 4), Layer::IntraPair);
        assert_eq!(t.layer_between(0, 8), Layer::Global);
        assert_eq!(t.layer_between(8, 0), Layer::Global);
    }

    #[test]
    fn contiguous_allocation_is_sequential() {
        let t = topo();
        let a = Allocation::contiguous(&t, 6);
        assert_eq!(a.nodes(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn rack_pair_spans_exactly_two_racks() {
        let t = topo();
        let a = Allocation::rack_pair(&t, 8);
        let racks: std::collections::BTreeSet<u32> =
            a.nodes().iter().map(|&n| t.rack_of(n)).collect();
        assert_eq!(racks.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn two_pairs_spans_four_racks() {
        let t = topo();
        let a = Allocation::two_pairs(&t, 16);
        let racks: std::collections::BTreeSet<u32> =
            a.nodes().iter().map(|&n| t.rack_of(n)).collect();
        assert_eq!(racks.len(), 4);
    }

    #[test]
    fn max_parallel_puts_every_node_in_its_own_pair() {
        let t = Topology::new(4, 8);
        let a = Allocation::max_parallel(&t, 4);
        let pairs: std::collections::BTreeSet<u32> = a
            .nodes()
            .iter()
            .map(|&n| t.pair_of(t.rack_of(n)))
            .collect();
        assert_eq!(pairs.len(), 4, "each node must land in a distinct pair");
    }

    #[test]
    fn random_allocation_is_distinct_and_in_range() {
        let t = topo();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = Allocation::random(&t, 10, &mut rng);
        let set: std::collections::BTreeSet<u32> = a.nodes().iter().copied().collect();
        assert_eq!(set.len(), 10);
        assert!(set.iter().all(|&n| n < t.total_nodes()));
    }

    #[test]
    fn slice_preserves_order() {
        let t = topo();
        let a = Allocation::contiguous(&t, 8);
        let s = a.slice(2, 3);
        assert_eq!(s.nodes(), &[2, 3, 4]);
    }

    #[test]
    fn excluding_removes_dead_nodes_preserving_order() {
        let t = topo();
        let a = Allocation::contiguous(&t, 8);
        let d = a.excluding(&[2, 5]);
        assert_eq!(d.nodes(), &[0, 1, 3, 4, 6, 7]);
        // Ids absent from the allocation are ignored.
        assert_eq!(a.excluding(&[99]).nodes(), a.nodes());
    }

    #[test]
    #[should_panic(expected = "every node")]
    fn excluding_all_nodes_rejected() {
        let t = topo();
        let a = Allocation::contiguous(&t, 2);
        let _ = a.excluding(&[0, 1]);
    }

    #[test]
    #[should_panic(expected = "allocated twice")]
    fn duplicate_nodes_rejected() {
        let t = topo();
        let _ = Allocation::new(&t, vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn out_of_range_nodes_rejected() {
        let t = topo();
        let _ = Allocation::new(&t, vec![99]);
    }
}
