//! Cross-engine validation: the fast round-synchronous simulator and
//! the flow-level DES must agree on physics even though they model
//! synchronization differently. Random schedules exercise corners no
//! hand-written case would.

use acclaim_netsim::{
    Allocation, Cluster, FaultModel, FlowSim, MaterializedSchedule, Msg, QueueEngine, RoundSim,
};
use proptest::prelude::*;

fn cluster(nodes: u32) -> Cluster {
    let base = Cluster::bebop_like();
    let alloc = Allocation::contiguous(&base.topology, nodes);
    base.with_allocation(alloc)
}

/// Strategy: a well-formed random schedule on `ranks` ranks.
fn schedules(ranks: u32) -> impl Strategy<Value = MaterializedSchedule> {
    let msg = (0..ranks, 0..ranks, 1u64..500_000).prop_filter_map(
        "no self-messages",
        move |(src, dst, bytes)| {
            (src != dst).then(|| Msg::data(src, dst, bytes))
        },
    );
    let round = proptest::collection::vec(msg, 1..8);
    proptest::collection::vec(round, 1..6)
        .prop_map(move |rounds| MaterializedSchedule::new(ranks, rounds))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_agree_within_a_band(sched in schedules(8)) {
        let c = cluster(4); // 2 ranks per node at ppn=2
        let rs = RoundSim::new().simulate(&c, 2, &sched);
        let des = FlowSim::new().simulate(&c, 2, &sched);
        prop_assert!(rs.is_finite() && des.is_finite());
        prop_assert!(rs > 0.0 && des > 0.0);
        // The DES relaxes round synchronization (can only help) but
        // charges endpoint CPU more precisely (can hurt); the two must
        // stay within a modest band of each other.
        let ratio = des / rs;
        prop_assert!(
            (0.3..=2.0).contains(&ratio),
            "engines diverged: roundsim={rs} des={des} ratio={ratio}"
        );
    }

    #[test]
    fn des_never_beats_the_critical_path(sched in schedules(6)) {
        // Lower bound: the largest single message's latency + transfer
        // at full bandwidth can never be undercut by either engine.
        let c = cluster(6);
        let p = &c.params;
        let bound = sched
            .rounds
            .iter()
            .flatten()
            .map(|m| {
                let wire = p.wire_bytes(m.bytes) as f64;
                wire / p.nic_bandwidth.max(p.mem_bandwidth)
            })
            .fold(0.0f64, f64::max);
        let rs = RoundSim::new().simulate(&c, 1, &sched);
        let des = FlowSim::new().simulate(&c, 1, &sched);
        prop_assert!(rs >= bound, "roundsim {rs} under bound {bound}");
        prop_assert!(des >= bound, "des {des} under bound {bound}");
    }

    #[test]
    fn scaling_bytes_up_never_speeds_either_engine(sched in schedules(6)) {
        let c = cluster(6);
        let bigger = MaterializedSchedule::new(
            sched.num_ranks,
            sched
                .rounds
                .iter()
                .map(|r| {
                    r.iter()
                        .map(|m| Msg::data(m.src, m.dst, m.bytes * 4))
                        .collect()
                })
                .collect(),
        );
        let mut rs = RoundSim::new();
        prop_assert!(rs.simulate(&c, 1, &bigger) >= rs.simulate(&c, 1, &sched) - 1e-9);
        let mut des = FlowSim::new();
        prop_assert!(des.simulate(&c, 1, &bigger) >= des.simulate(&c, 1, &sched) * 0.999);
    }

    #[test]
    fn higher_placement_latency_never_helps(sched in schedules(8)) {
        let near = cluster(8);
        let far = cluster(8).with_job_latency_factor(2.5);
        let mut rs = RoundSim::new();
        prop_assert!(rs.simulate(&far, 1, &sched) >= rs.simulate(&near, 1, &sched) - 1e-9);
    }

    #[test]
    fn appending_a_round_strictly_adds_time(sched in schedules(6)) {
        let c = cluster(6);
        let mut extended = sched.clone();
        extended.rounds.push(vec![Msg::data(0, 1, 4_096)]);
        let mut rs = RoundSim::new();
        prop_assert!(rs.simulate(&c, 1, &extended) > rs.simulate(&c, 1, &sched));
    }

    #[test]
    fn des_queue_engines_bit_identical_on_fault_preset_traces(
        sched in schedules(8),
        latency_factor in 1.0f64..3.0,
        failed_nodes in 0u32..3,
    ) {
        // The fault path degrades runs two ways: evicted nodes shrink
        // the allocation, and unlucky placements raise the job latency
        // factor. Both engines must simulate the degraded trace to the
        // same bits — the calendar queue pops the identical
        // (time, seq) order the reference heap does.
        let faults = FaultModel::production();
        prop_assert!(faults.is_enabled());
        let base = Cluster::bebop_like();
        // Allocation shrunk as if `failed_nodes` nodes were evicted,
        // but still wide enough for 8 ranks at ppn=2.
        let alloc = Allocation::contiguous(&base.topology, 8 - failed_nodes);
        let c = base
            .with_allocation(alloc)
            .with_job_latency_factor(latency_factor);
        let cal = FlowSim::new()
            .with_queue(QueueEngine::Calendar)
            .simulate(&c, 2, &sched);
        let heap = FlowSim::new()
            .with_queue(QueueEngine::BinaryHeap)
            .simulate(&c, 2, &sched);
        prop_assert_eq!(
            cal.to_bits(),
            heap.to_bits(),
            "engines diverged on degraded trace: {} vs {}",
            cal,
            heap
        );
    }

    #[test]
    fn round_order_is_irrelevant_to_roundsim(sched in schedules(6)) {
        // Rounds are priced independently and summed, so permuting them
        // must not change the total (a regression guard on scratch
        // clearing between rounds).
        let c = cluster(6);
        let mut reversed = sched.clone();
        reversed.rounds.reverse();
        let mut rs = RoundSim::new();
        let a = rs.simulate(&c, 1, &sched);
        let b = rs.simulate(&c, 1, &reversed);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}
