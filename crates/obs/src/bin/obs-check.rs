//! `obs-check` — validate a JSONL trace against the acclaim-obs schema.
//!
//! Usage: `obs-check <trace.jsonl> [more.jsonl ...]`
//!
//! Exits 0 when every file validates (printing a per-file line count),
//! 1 with a line-numbered error otherwise. CI runs this over the traces
//! emitted by the quickstart example.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: obs-check <trace.jsonl> [more.jsonl ...]");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(text) => match acclaim_obs::schema::validate_trace(&text) {
                Ok(n) => println!("{path}: {n} lines ok"),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    ok = false;
                }
            },
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
