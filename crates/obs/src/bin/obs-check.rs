//! `obs-check` — validate emitted telemetry against the acclaim-obs
//! schemas.
//!
//! Usage:
//!
//! * `obs-check <trace.jsonl> [more.jsonl ...]` — JSONL trace documents
//!   (the default).
//! * `obs-check --metrics-json <metrics.json> [...]` — single-object
//!   metrics expositions (`client metrics --json`).
//! * `obs-check --flight <flight.jsonl> [...]` — flight-recorder dumps
//!   (`client trace --json`).
//!
//! Exits 0 when every file validates (printing a per-file summary),
//! 1 with a line-numbered error otherwise. CI runs this over the
//! traces, metrics scrapes, and flight dumps its smoke jobs emit.

use std::process::ExitCode;

enum Mode {
    Trace,
    MetricsJson,
    Flight,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mode = match args.peek().map(String::as_str) {
        Some("--metrics-json") => {
            args.next();
            Mode::MetricsJson
        }
        Some("--flight") => {
            args.next();
            Mode::Flight
        }
        _ => Mode::Trace,
    };
    let paths: Vec<String> = args.collect();
    if paths.is_empty() {
        eprintln!("usage: obs-check [--metrics-json | --flight] <file> [more ...]");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                ok = false;
                continue;
            }
        };
        let outcome = match mode {
            Mode::Trace => acclaim_obs::schema::validate_trace(&text)
                .map(|n| format!("{n} lines ok")),
            Mode::MetricsJson => acclaim_obs::schema::validate_metrics_json(&text)
                .map(|()| "metrics exposition ok".to_string()),
            Mode::Flight => acclaim_obs::schema::validate_flight_records(&text)
                .map(|n| format!("{n} flight records ok")),
        };
        match outcome {
            Ok(msg) => println!("{path}: {msg}"),
            Err(e) => {
                eprintln!("{path}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
