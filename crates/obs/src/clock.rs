//! Explicit, injectable time sources.
//!
//! The pipeline accounts for two kinds of time: *host* time (real CPU
//! seconds spent fitting models) and *simulated* time (microseconds of
//! cluster wall clock inside netsim). A recorder therefore takes its
//! clock as a trait object so both work: [`WallClock`] for live runs,
//! [`ManualClock`] when the caller advances time itself (a discrete-
//! event simulation, or a test that wants deterministic timestamps).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic time source reporting microseconds since its origin.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Current time (µs since the clock's origin).
    fn now_us(&self) -> f64;

    /// Short identifier recorded in trace metadata (`"wall"`,
    /// `"manual"`).
    fn name(&self) -> &'static str;
}

/// Real wall time from a [`Instant`] origin captured at construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose zero is *now*.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> f64 {
        self.origin.elapsed().as_secs_f64() * 1e6
    }

    fn name(&self) -> &'static str {
        "wall"
    }
}

/// A clock the owner advances explicitly (simulated time).
///
/// Cloning shares the underlying time cell, so a simulation can hold
/// one handle and the recorder another. `set_us`/`advance_us` are
/// atomic stores; with a single writer (the usual DES main loop) reads
/// are exact, with multiple writers the clock is last-write-wins.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now_bits: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at 0 µs.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Jump to an absolute time (µs). Callers are responsible for
    /// monotonicity — exporters sort by start time but never reorder
    /// a span's own interval.
    pub fn set_us(&self, t_us: f64) {
        self.now_bits.store(t_us.to_bits(), Ordering::Relaxed);
    }

    /// Advance by `dt_us` microseconds.
    pub fn advance_us(&self, dt_us: f64) {
        self.set_us(self.now_us() + dt_us);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> f64 {
        f64::from_bits(self.now_bits.load(Ordering::Relaxed))
    }

    fn name(&self) -> &'static str {
        "manual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
        assert!(a >= 0.0);
        assert_eq!(c.name(), "wall");
    }

    #[test]
    fn manual_clock_is_shared_and_settable() {
        let c = ManualClock::new();
        assert_eq!(c.now_us(), 0.0);
        let shared = c.clone();
        c.set_us(125.5);
        assert_eq!(shared.now_us(), 125.5);
        shared.advance_us(0.5);
        assert_eq!(c.now_us(), 126.0);
        assert_eq!(c.name(), "manual");
    }
}
