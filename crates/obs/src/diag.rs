//! Leveled stderr diagnostics for the CLI.
//!
//! One funnel for everything a command says on stderr, so `--quiet`
//! has a single switch to honor: errors always print, warnings always
//! print (they change what the user should do next), progress notes
//! are suppressed when quiet.

/// Stderr diagnostic sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct Diag {
    quiet: bool,
}

impl Diag {
    /// A sink honoring `quiet` for progress output.
    pub fn new(quiet: bool) -> Self {
        Diag { quiet }
    }

    /// Whether progress output is suppressed.
    pub fn is_quiet(&self) -> bool {
        self.quiet
    }

    /// An error: printed verbatim, never suppressed. Kept free of any
    /// prefix so callers control the exact message (usage text, parse
    /// errors) shown to scripts that match on stderr.
    pub fn error(&self, msg: &str) {
        eprintln!("{msg}");
    }

    /// A warning: prefixed, never suppressed.
    pub fn warn(&self, msg: &str) {
        eprintln!("{}", Self::format_warn(msg));
    }

    /// A progress note: prefixed, dropped under `--quiet`.
    pub fn progress(&self, msg: &str) {
        if !self.quiet {
            eprintln!("{}", Self::format_progress(msg));
        }
    }

    /// Warning line format (exposed for tests).
    pub fn format_warn(msg: &str) -> String {
        format!("warning: {msg}")
    }

    /// Progress line format (exposed for tests).
    pub fn format_progress(msg: &str) -> String {
        format!("-- {msg}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_flag_is_tracked() {
        assert!(!Diag::new(false).is_quiet());
        assert!(Diag::new(true).is_quiet());
        assert!(!Diag::default().is_quiet());
    }

    #[test]
    fn formats_are_stable() {
        assert_eq!(Diag::format_warn("x"), "warning: x");
        assert_eq!(Diag::format_progress("y"), "-- y");
    }
}
