//! Trace exporters: JSONL structured events, Chrome `trace_event`
//! JSON, and a human terminal summary.
//!
//! * [`to_jsonl`] writes one self-describing JSON object per line —
//!   the machine-readable archive format validated by
//!   [`crate::schema`] and the `obs-check` binary.
//! * [`to_chrome`] writes the Chrome trace-event array format: open
//!   `chrome://tracing` (or <https://ui.perfetto.dev>) and load the
//!   file to see host spans and simulated collection lanes side by
//!   side.
//! * [`summary`] renders per-span aggregates and metrics as a terminal
//!   table for quick inspection without leaving the shell.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde_json::{json, Map, Number, Value};

use crate::recorder::TraceSnapshot;
use crate::span::{AttrValue, SpanRecord, Timeline};

/// Schema version stamped into the JSONL meta line.
pub const JSONL_VERSION: u64 = 1;

fn attr_to_value(attr: &AttrValue) -> Value {
    match attr {
        AttrValue::U64(v) => Value::Number(Number::from_u64(*v)),
        AttrValue::I64(v) => Value::Number(Number::from_i64(*v)),
        AttrValue::F64(v) => Value::Number(Number::from_f64(*v)),
        AttrValue::Bool(v) => Value::Bool(*v),
        AttrValue::Str(v) => Value::String(v.clone()),
    }
}

fn attrs_to_object(attrs: &[(String, AttrValue)]) -> Value {
    let mut m = Map::new();
    for (k, v) in attrs {
        m.insert(k.clone(), attr_to_value(v));
    }
    Value::Object(m)
}

fn span_to_value(span: &SpanRecord) -> Value {
    json!({
        "type": "span",
        "id": span.id,
        "parent": span.parent.map_or(Value::Null, |p| json!(p)),
        "name": span.name.as_str(),
        "cat": span.cat.as_str(),
        "track": span.track.as_str(),
        "timeline": span.timeline.as_str(),
        "start_us": span.start_us,
        "end_us": span.end_us,
        "attrs": attrs_to_object(&span.attrs),
    })
}

/// Serialize a snapshot as JSON Lines: a `meta` line, then one line per
/// span, counter, gauge, and histogram. Every line is a complete JSON
/// object with a `type` field (see [`crate::schema`]).
pub fn to_jsonl(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    let mut push = |v: &Value| {
        out.push_str(&serde_json::to_string(v).expect("serialize trace line"));
        out.push('\n');
    };
    push(&json!({
        "type": "meta",
        "version": JSONL_VERSION,
        "clock": snapshot.clock,
    }));
    for span in &snapshot.spans {
        push(&span_to_value(span));
    }
    for (name, value) in &snapshot.metrics.counters {
        push(&json!({
            "type": "counter",
            "name": name.as_str(),
            "value": *value,
        }));
    }
    for (name, value) in &snapshot.metrics.gauges {
        push(&json!({
            "type": "gauge",
            "name": name.as_str(),
            "value": *value,
        }));
    }
    for (name, hist) in &snapshot.metrics.histograms {
        let buckets: Vec<Value> = hist
            .buckets
            .iter()
            .map(|b| {
                json!({
                    "lo": b.lo,
                    "hi": if b.hi.is_finite() { json!(b.hi) } else { Value::Null },
                    "count": b.count,
                })
            })
            .collect();
        push(&json!({
            "type": "histogram",
            "name": name.as_str(),
            "count": hist.count,
            "sum": hist.sum,
            "min": hist.min,
            "max": hist.max,
            "buckets": buckets,
        }));
    }
    out
}

/// Chrome trace-event pid for host-timeline spans.
const PID_HOST: u64 = 1;
/// Chrome trace-event pid for sim-timeline spans.
const PID_SIM: u64 = 2;

/// Serialize a snapshot in the Chrome `trace_event` array format.
///
/// Host and sim timelines become separate processes (their microsecond
/// axes are unrelated); each distinct track becomes a named thread, so
/// parallel collection slots render as concurrent lanes.
pub fn to_chrome(snapshot: &TraceSnapshot) -> String {
    let mut events: Vec<Value> = Vec::new();
    // Stable tid per (pid, track), in first-appearance order.
    let mut tids: BTreeMap<(u64, String), u64> = BTreeMap::new();
    for span in &snapshot.spans {
        let pid = match span.timeline {
            Timeline::Host => PID_HOST,
            Timeline::Sim => PID_SIM,
        };
        let next = tids.len() as u64 + 1;
        let tid = *tids.entry((pid, span.track.clone())).or_insert(next);
        events.push(json!({
            "name": span.name.as_str(),
            "cat": span.cat.as_str(),
            "ph": "X",
            "ts": span.start_us,
            "dur": span.duration_us(),
            "pid": pid,
            "tid": tid,
            "args": attrs_to_object(&span.attrs),
        }));
    }
    let mut meta: Vec<Value> = Vec::new();
    for pid in [PID_HOST, PID_SIM] {
        if tids.keys().any(|(p, _)| *p == pid) {
            let label = if pid == PID_HOST {
                format!("host ({} clock)", snapshot.clock)
            } else {
                "simulated cluster time".to_string()
            };
            meta.push(json!({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0u64,
                "args": json!({ "name": label.as_str() }),
            }));
        }
    }
    for ((pid, track), tid) in &tids {
        meta.push(json!({
            "name": "thread_name",
            "ph": "M",
            "pid": *pid,
            "tid": *tid,
            "args": json!({ "name": track.as_str() }),
        }));
    }
    meta.extend(events);
    serde_json::to_string(&Value::Array(meta)).expect("serialize chrome trace")
}

fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{us:.1}us")
    }
}

/// Render a snapshot as a terminal summary: span aggregates grouped by
/// `(cat, name)`, then counters, gauges, and histogram statistics.
pub fn summary(snapshot: &TraceSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "trace summary (clock: {})", snapshot.clock);

    #[derive(Default)]
    struct Agg {
        count: u64,
        total_us: f64,
        max_us: f64,
    }
    let mut aggs: BTreeMap<(String, String), Agg> = BTreeMap::new();
    for span in &snapshot.spans {
        let agg = aggs
            .entry((span.cat.clone(), span.name.clone()))
            .or_default();
        agg.count += 1;
        agg.total_us += span.duration_us();
        agg.max_us = agg.max_us.max(span.duration_us());
    }
    if !aggs.is_empty() {
        let _ = writeln!(
            out,
            "  {:<34} {:>7} {:>11} {:>11} {:>11}",
            "span (cat/name)", "count", "total", "mean", "max"
        );
        for ((cat, name), agg) in &aggs {
            let _ = writeln!(
                out,
                "  {:<34} {:>7} {:>11} {:>11} {:>11}",
                format!("{cat}/{name}"),
                agg.count,
                fmt_us(agg.total_us),
                fmt_us(agg.total_us / agg.count as f64),
                fmt_us(agg.max_us),
            );
        }
    }
    if !snapshot.metrics.counters.is_empty() {
        let _ = writeln!(out, "  counters:");
        for (name, value) in &snapshot.metrics.counters {
            let _ = writeln!(out, "    {name:<40} {value}");
        }
    }
    if !snapshot.metrics.gauges.is_empty() {
        let _ = writeln!(out, "  gauges:");
        for (name, value) in &snapshot.metrics.gauges {
            let _ = writeln!(out, "    {name:<40} {value:.3}");
        }
    }
    if !snapshot.metrics.histograms.is_empty() {
        let _ = writeln!(out, "  histograms:");
        for (name, hist) in &snapshot.metrics.histograms {
            let _ = writeln!(
                out,
                "    {:<40} n={} mean={} min={} max={}",
                name,
                hist.count,
                fmt_us(hist.mean()),
                fmt_us(hist.min),
                fmt_us(hist.max),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::recorder::Obs;

    fn sample_snapshot() -> TraceSnapshot {
        let clock = ManualClock::new();
        let obs = Obs::with_clock(Box::new(clock.clone()));
        {
            let _outer = obs.span("learner", "iteration").attr("iter", 0u64);
            clock.set_us(40.0);
            {
                let _fit = obs.span("learner", "fit");
                clock.set_us(90.0);
            }
            clock.set_us(100.0);
        }
        obs.span_at(
            "collect",
            "slot",
            "nodes 0-3",
            0.0,
            55.0,
            vec![("bytes".to_string(), AttrValue::U64(4096))],
        );
        obs.incr_counter("learner.non_p2_injections", 2);
        obs.set_gauge("learner.cumulative_variance", 0.25);
        obs.record_hist("netsim.round_us", 12.5);
        obs.snapshot()
    }

    #[test]
    fn jsonl_lines_all_parse_with_types() {
        let text = to_jsonl(&sample_snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 3 + 1 + 1 + 1);
        let meta: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(meta.get("type").unwrap().as_str(), Some("meta"));
        assert_eq!(meta.get("clock").unwrap().as_str(), Some("manual"));
        for line in &lines {
            let v: Value = serde_json::from_str(line).unwrap();
            assert!(v.get("type").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn jsonl_span_lines_carry_hierarchy() {
        let text = to_jsonl(&sample_snapshot());
        let spans: Vec<Value> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .filter(|v: &Value| v.get("type").unwrap().as_str() == Some("span"))
            .collect();
        let outer = spans
            .iter()
            .find(|s| s.get("name").unwrap().as_str() == Some("iteration"))
            .unwrap();
        let fit = spans
            .iter()
            .find(|s| s.get("name").unwrap().as_str() == Some("fit"))
            .unwrap();
        assert!(outer.get("parent").unwrap().is_null());
        assert_eq!(
            fit.get("parent").unwrap().as_u64(),
            outer.get("id").unwrap().as_u64()
        );
        let slot = spans
            .iter()
            .find(|s| s.get("timeline").unwrap().as_str() == Some("sim"))
            .unwrap();
        assert_eq!(slot.get("track").unwrap().as_str(), Some("nodes 0-3"));
        assert_eq!(
            slot.get("attrs").unwrap().get("bytes").unwrap().as_u64(),
            Some(4096)
        );
    }

    #[test]
    fn chrome_export_is_valid_trace_event_json() {
        let text = to_chrome(&sample_snapshot());
        let v: Value = serde_json::from_str(&text).unwrap();
        let events = v.as_array().unwrap();
        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(complete.len(), 3);
        for e in &complete {
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
        }
        // Host and sim land in different pids.
        let pids: std::collections::BTreeSet<u64> = complete
            .iter()
            .map(|e| e.get("pid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
        // Metadata names both processes and every thread lane.
        let metas: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert!(metas
            .iter()
            .any(|e| e.get("name").unwrap().as_str() == Some("process_name")));
        assert!(metas.iter().any(|e| {
            e.get("name").unwrap().as_str() == Some("thread_name")
                && e.get("args").unwrap().get("name").unwrap().as_str() == Some("nodes 0-3")
        }));
    }

    #[test]
    fn summary_mentions_spans_and_metrics() {
        let text = summary(&sample_snapshot());
        assert!(text.contains("learner/iteration"));
        assert!(text.contains("collect/slot"));
        assert!(text.contains("learner.non_p2_injections"));
        assert!(text.contains("learner.cumulative_variance"));
        assert!(text.contains("netsim.round_us"));
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snap = Obs::disabled().snapshot();
        let jsonl = to_jsonl(&snap);
        assert_eq!(jsonl.lines().count(), 1); // just the meta line
        let chrome = to_chrome(&snap);
        let v: Value = serde_json::from_str(&chrome).unwrap();
        assert!(v.as_array().unwrap().is_empty());
    }
}
