//! Metrics exposition: render a [`MetricsSnapshot`] for scraping.
//!
//! Two formats, both derived from the same frozen snapshot so a single
//! scrape is internally consistent:
//!
//! * [`to_prometheus`] — Prometheus text exposition. Metric names are
//!   sanitized (`serve.queue_depth` → `serve_queue_depth`), counters
//!   and gauges become single samples, histograms become the standard
//!   cumulative `_bucket{le="..."}` / `_sum` / `_count` triple using
//!   the log₂ bucket upper bounds as `le` edges.
//! * [`to_metrics_json`] — a single JSON object (`type: "metrics"`)
//!   keeping the original dotted names, with p50/p95/p99 precomputed
//!   per histogram via [`HistogramSnapshot::quantile`]. Validated by
//!   [`crate::schema::validate_metrics_json`] and `obs-check
//!   --metrics-json`.

use std::fmt::Write as _;

use serde_json::{json, Map, Number, Value};

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// Schema version stamped into the JSON exposition.
pub const METRICS_JSON_VERSION: u64 = 1;

/// Map a dotted metric name onto the Prometheus name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`,
/// and a leading digit gains a `_` prefix.
pub fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Prometheus sample-value formatting: shortest-roundtrip floats with
/// the spec's spellings for the non-finite values.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn prom_histogram(out: &mut String, name: &str, hist: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    let mut wrote_inf = false;
    for b in &hist.buckets {
        cumulative += b.count;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            prom_f64(b.hi)
        );
        wrote_inf |= b.hi == f64::INFINITY;
    }
    if !wrote_inf {
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_sum {}", prom_f64(hist.sum));
    let _ = writeln!(out, "{name}_count {}", hist.count);
}

/// Render a snapshot as Prometheus text exposition.
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = prometheus_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", prom_f64(*value));
    }
    for (name, hist) in &snapshot.histograms {
        prom_histogram(&mut out, &prometheus_name(name), hist);
    }
    out
}

fn histogram_to_value(hist: &HistogramSnapshot) -> Value {
    let buckets: Vec<Value> = hist
        .buckets
        .iter()
        .map(|b| {
            json!({
                "lo": b.lo,
                "hi": if b.hi.is_finite() { json!(b.hi) } else { Value::Null },
                "count": b.count,
            })
        })
        .collect();
    json!({
        "count": hist.count,
        "sum": hist.sum,
        "min": hist.min,
        "max": hist.max,
        "mean": hist.mean(),
        "p50": hist.quantile(0.50),
        "p95": hist.quantile(0.95),
        "p99": hist.quantile(0.99),
        "buckets": buckets,
    })
}

/// Render a snapshot as the single-object JSON exposition (original
/// dotted names, quantiles precomputed).
pub fn to_metrics_json(snapshot: &MetricsSnapshot) -> String {
    let mut counters = Map::new();
    for (name, value) in &snapshot.counters {
        counters.insert(name.clone(), Value::Number(Number::from_u64(*value)));
    }
    let mut gauges = Map::new();
    for (name, value) in &snapshot.gauges {
        gauges.insert(name.clone(), Value::Number(Number::from_f64(*value)));
    }
    let mut histograms = Map::new();
    for (name, hist) in &snapshot.histograms {
        histograms.insert(name.clone(), histogram_to_value(hist));
    }
    let doc = json!({
        "type": "metrics",
        "version": METRICS_JSON_VERSION,
        "counters": Value::Object(counters),
        "gauges": Value::Object(gauges),
        "histograms": Value::Object(histograms),
    });
    serde_json::to_string(&doc).expect("serialize metrics exposition")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Obs;

    fn sample() -> MetricsSnapshot {
        let obs = Obs::enabled();
        obs.counter("serve.tune_requests").add(12);
        obs.gauge("serve.queue_depth").set(3.0);
        let h = obs.histogram("serve.phase.queue_wait_us");
        for v in [1.5, 1.5, 9.0, 600.0] {
            h.record(v);
        }
        obs.snapshot().metrics
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prometheus_name("serve.queue_depth"), "serve_queue_depth");
        assert_eq!(prometheus_name("drift.ratio/sig-1"), "drift_ratio_sig_1");
        assert_eq!(prometheus_name("7seas"), "_7seas");
        assert_eq!(prometheus_name(""), "_");
    }

    #[test]
    fn prometheus_text_has_types_and_cumulative_buckets() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE serve_tune_requests counter"));
        assert!(text.contains("serve_tune_requests 12"));
        assert!(text.contains("# TYPE serve_queue_depth gauge"));
        assert!(text.contains("serve_queue_depth 3"));
        assert!(text.contains("# TYPE serve_phase_queue_wait_us histogram"));
        // Buckets are cumulative and always end with an +Inf edge.
        assert!(text.contains("serve_phase_queue_wait_us_bucket{le=\"2\"} 2"));
        assert!(text.contains("serve_phase_queue_wait_us_bucket{le=\"16\"} 3"));
        assert!(text.contains("serve_phase_queue_wait_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("serve_phase_queue_wait_us_count 4"));
        // Every non-comment line is `name{...} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok() || value == "+Inf");
        }
    }

    #[test]
    fn json_exposition_precomputes_quantiles() {
        let text = to_metrics_json(&sample());
        let v: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("metrics"));
        let hist = v
            .get("histograms")
            .unwrap()
            .get("serve.phase.queue_wait_us")
            .unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(4));
        assert_eq!(hist.get("p50").unwrap().as_f64(), Some(2.0));
        assert_eq!(hist.get("p99").unwrap().as_f64(), Some(600.0));
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("serve.tune_requests")
                .unwrap()
                .as_u64(),
            Some(12)
        );
        crate::schema::validate_metrics_json(&text).unwrap();
    }

    #[test]
    fn empty_snapshot_exposes_cleanly() {
        let snap = MetricsSnapshot::default();
        assert_eq!(to_prometheus(&snap), "");
        crate::schema::validate_metrics_json(&to_metrics_json(&snap)).unwrap();
    }
}
