//! Flight recorder: a fixed-capacity ring of recent request records.
//!
//! A serving daemon wants "what did the last N requests do?" answered
//! without unbounded memory and without a contended global lock. The
//! [`FlightRecorder`] keeps one slot per recent record behind a
//! per-slot mutex; writers claim a slot with a single atomic
//! `fetch_add` and lock only that slot, so concurrent recorders touch
//! disjoint locks except when the ring wraps onto an in-flight slot.
//! [`FlightRecorder::recent`] is a best-effort read: records landed
//! before the call are visible, records racing with it may or may not
//! be.
//!
//! Records serialize as JSON Lines (one [`FlightRecord`] per line) for
//! the protocol dump and are validated by
//! [`crate::schema::validate_flight_records`] / `obs-check --flight`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// Wall-clock phase decomposition of one served tune request (µs).
///
/// `total_us` spans submit→finish, so it includes the queue wait; the
/// remaining fields partition the in-worker time (probe → collect →
/// refit → write-back). Phases a request never reached stay 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Submit → worker pop.
    pub queue_wait_us: f64,
    /// Warm-start store probe.
    pub probe_us: f64,
    /// Benchmark collection (training minus model refits).
    pub collect_us: f64,
    /// Model updates (sum of per-iteration refit walls).
    pub refit_us: f64,
    /// Store write-back of trained entries.
    pub write_back_us: f64,
    /// Submit → terminal status.
    pub total_us: f64,
}

/// One completed request as seen by the flight recorder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Stable request id assigned at admission.
    pub id: u64,
    /// Work fingerprint (the coalescing key) of the request.
    pub fingerprint: u64,
    /// Priority class the request was queued under.
    pub class: String,
    /// Terminal outcome: `trained`, `cached`, `cancelled`, or `failed`.
    pub outcome: String,
    /// Coalesced riders resolved by this execution.
    pub riders: u64,
    /// Whether the slow-request threshold flagged it.
    pub slow: bool,
    /// Per-phase wall times.
    pub phases: PhaseTimings,
}

/// Fixed-capacity lock-light ring buffer of [`FlightRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightRecord>>>,
    head: AtomicU64,
}

impl FlightRecorder {
    /// A recorder remembering the last `capacity` records (minimum 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (not capped by capacity).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Push a record, evicting the oldest once the ring is full.
    pub fn record(&self, record: FlightRecord) {
        let cap = self.slots.len() as u64;
        let slot = (self.head.fetch_add(1, Ordering::AcqRel) % cap) as usize;
        *self.slots[slot].lock().expect("flight slot lock") = Some(record);
    }

    /// Up to `n` most recent records, oldest first.
    pub fn recent(&self, n: usize) -> Vec<FlightRecord> {
        let cap = self.slots.len() as u64;
        let head = self.head.load(Ordering::Acquire);
        let avail = head.min(cap).min(n as u64);
        let mut out = Vec::with_capacity(avail as usize);
        for off in (1..=avail).rev() {
            let slot = ((head - off) % cap) as usize;
            if let Some(r) = self.slots[slot].lock().expect("flight slot lock").clone() {
                out.push(r);
            }
        }
        out
    }

    /// Serialize records as JSON Lines (the dump format `obs-check
    /// --flight` validates).
    pub fn to_jsonl(records: &[FlightRecord]) -> String {
        let mut out = String::new();
        for r in records {
            out.push_str(&serde_json::to_string(r).expect("serialize flight record"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> FlightRecord {
        FlightRecord {
            id,
            fingerprint: 0xACC1 ^ id,
            class: "normal".to_string(),
            outcome: "trained".to_string(),
            riders: 0,
            slow: false,
            phases: PhaseTimings {
                queue_wait_us: 1.0,
                probe_us: 2.0,
                collect_us: 30.0,
                refit_us: 4.0,
                write_back_us: 5.0,
                total_us: 42.0,
            },
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_records_in_order() {
        let fr = FlightRecorder::new(4);
        assert_eq!(fr.capacity(), 4);
        assert!(fr.recent(10).is_empty());
        for id in 0..10 {
            fr.record(rec(id));
        }
        assert_eq!(fr.recorded(), 10);
        let ids: Vec<u64> = fr.recent(10).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
        let ids: Vec<u64> = fr.recent(2).iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![8, 9]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let fr = FlightRecorder::new(0);
        fr.record(rec(1));
        fr.record(rec(2));
        assert_eq!(fr.recent(5).iter().map(|r| r.id).collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let records = vec![rec(1), rec(2)];
        let text = FlightRecorder::to_jsonl(&records);
        assert_eq!(text.lines().count(), 2);
        let back: Vec<FlightRecord> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(back, records);
        crate::schema::validate_flight_records(&text).unwrap();
    }

    #[test]
    fn concurrent_recorders_never_lose_the_ring_shape() {
        let fr = std::sync::Arc::new(FlightRecorder::new(16));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let fr = fr.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        fr.record(rec(t * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(fr.recorded(), 800);
        let recent = fr.recent(16);
        assert_eq!(recent.len(), 16);
        // Every surviving record is one that was actually pushed.
        for r in &recent {
            assert!(r.id % 1000 < 100);
        }
    }
}
