//! `acclaim-obs` — structured tracing and metrics for the ACCLAiM
//! pipeline.
//!
//! ACCLAiM's value claim is a wall-clock budget argument (training time
//! vs. job time, paper Figs. 7/13/14), which makes *attributable* time
//! the repo's most important telemetry. This crate is the single
//! instrumentation layer every other crate records into:
//!
//! * [`recorder::Obs`] — a cheap-to-clone recorder handle. Disabled
//!   handles (the default) reduce every operation to a branch on
//!   `None`, so instrumented code paths cost nothing measurable when
//!   tracing is off.
//! * **Spans** ([`span`]) — hierarchical, thread-aware intervals with
//!   attributes. Two timelines coexist: `host` spans are stamped by the
//!   recorder's injectable [`clock::Clock`] (real wall time by default,
//!   a [`clock::ManualClock`] under simulation), while `sim` spans
//!   carry explicit simulated timestamps (e.g. one lane per allocation
//!   node range during parallel collection).
//! * **Metrics** ([`metrics`]) — counters, gauges, and log₂-bucketed
//!   fixed-size histograms. Handles are resolved once; recording is
//!   lock-free atomics, allocation-free on the hot path.
//! * **Exporters** ([`export`]) — JSONL structured events (one
//!   schema-validated object per line), Chrome `trace_event` JSON
//!   (load it in `chrome://tracing` to *see* the parallel-collection
//!   concurrency), and a human terminal summary table.
//! * **Exposition** ([`expose`]) — render a [`metrics::MetricsSnapshot`]
//!   as Prometheus-style text or a JSON object, so a live daemon can be
//!   scraped instead of waiting for its exit report.
//! * **Flight recorder** ([`flight`]) — a fixed-capacity lock-light
//!   ring of recent per-request records (phase timings, outcome, slow
//!   flag) for dump-on-demand diagnostics.
//! * **Schema** ([`schema`]) — the JSONL event contract plus a
//!   validator, also compiled into the `obs-check` binary CI runs over
//!   emitted traces; the metrics JSON exposition and flight dumps have
//!   validators (and `obs-check` modes) of their own.
//! * **Diagnostics** ([`diag`]) — the CLI's leveled stderr helper
//!   (error / warning / progress) honoring `--quiet`.
//!
//! Instrumentation is behaviorally inert by contract: recorders never
//! feed values back into the code they observe, and the workspace's
//! golden tests assert bit-identical training outcomes with tracing on
//! and off.

pub mod clock;
pub mod diag;
pub mod export;
pub mod expose;
pub mod flight;
pub mod metrics;
pub mod recorder;
pub mod schema;
pub mod span;

pub use clock::{Clock, ManualClock, WallClock};
pub use diag::Diag;
pub use expose::{to_metrics_json, to_prometheus};
pub use flight::{FlightRecord, FlightRecorder, PhaseTimings};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot};
pub use recorder::{Obs, TraceSnapshot};
pub use span::{AttrValue, SpanGuard, SpanRecord, Timeline};
